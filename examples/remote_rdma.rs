//! Remote vRead reads: RDMA/RoCE daemons vs the user-space TCP fallback
//! (the comparison behind the paper's Figures 7 and 8).
//!
//! ```text
//! cargo run --release --example remote_rdma
//! ```

use vread::apps::driver::run_jobs_settled;
use vread::apps::java_reader::{JavaReader, ReaderMode};
use vread::bench::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};
use vread::core::VreadRegistry;
use vread::sim::prelude::*;

const FILE: u64 = 128 << 20;

fn main() {
    println!("remote read of 128 MB through the vRead daemons (2.0 GHz):");
    println!(
        "{:12} {:>10} {:>16} {:>18}",
        "transport", "MB/s", "daemon cyc/B", "daemon categories"
    );
    for path in [ReadPath::VreadRdma, ReadPath::VreadTcp] {
        let mut tb = Testbed::build(TestbedOpts::new().path(path));
        tb.populate("/remote", FILE, Locality::Remote);
        let client = tb.make_client();
        let job = tb.w.register_job("reader");
        let reader = JavaReader::new(
            tb.client_vm,
            ReaderMode::Dfs {
                client,
                path: "/remote".into(),
            },
            1 << 20,
            FILE,
        )
        .with_job(job);
        let a = tb.w.add_actor("reader", reader);
        tb.w.send_now(a, Start);
        assert!(run_jobs_settled(
            &mut tb.w,
            SimDuration::from_secs(600),
            SimDuration::from_millis(50),
        ));
        let secs = tb.w.metrics.mean("reader_done_at_s") - tb.w.metrics.mean("reader_start_at_s");

        let (d1, d2) = {
            let reg = tb.w.ext.get::<VreadRegistry>().unwrap();
            (reg.daemons[&0].1, reg.daemons[&1].1)
        };
        let daemon_cycles = tb.w.acct.total_cycles(d1.index()) + tb.w.acct.total_cycles(d2.index());
        let rdma = tb.w.acct.cycles(d2.index(), CpuCategory::Rdma);
        let vnet = tb.w.acct.cycles(d2.index(), CpuCategory::VreadNet);
        println!(
            "{:12} {:>10.1} {:>16.3} {:>10.0} rdma / {:.0} vread-net",
            path.label(),
            FILE as f64 / 1e6 / secs,
            daemon_cycles / FILE as f64,
            rdma,
            vnet
        );
    }
    println!("(RDMA moves the payload with near-zero daemon CPU; the TCP fallback pays per byte)");
}

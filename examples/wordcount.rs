//! WordCount over virtualized HDFS: the intro's motivating MapReduce
//! workload, run over vanilla and vRead read paths under background load.
//!
//! ```text
//! cargo run --release --example wordcount
//! ```

use vread::apps::driver::run_jobs_settled;
use vread::apps::wordcount::{WordCount, WordCountConfig};
use vread::bench::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};
use vread::sim::prelude::*;

const INPUT: u64 = 256 << 20;

fn main() {
    println!("WordCount over 256 MB of HDFS input (hybrid layout, 2.0 GHz, 4 VMs/host):");
    println!(
        "{:10} {:>12} {:>12} {:>12}",
        "path", "job secs", "map secs", "MB/s in"
    );
    for path in [ReadPath::Vanilla, ReadPath::VreadRdma] {
        let mut tb = Testbed::build(TestbedOpts::new().four_vms(true).path(path));
        tb.populate("/corpus", INPUT, Locality::Hybrid);
        let client = tb.make_client();
        let job = tb.w.register_job("wordcount");
        let wc = WordCount::new(
            client,
            tb.client_vm,
            "/corpus".into(),
            INPUT,
            WordCountConfig::default(),
        )
        .with_job(job);
        let a = tb.w.add_actor("wc", wc);
        tb.w.send_now(a, Start);
        assert!(run_jobs_settled(
            &mut tb.w,
            SimDuration::from_secs(600),
            SimDuration::from_millis(100),
        ));
        let start = tb.w.metrics.mean("wc_start_at_s");
        let map_done = tb.w.metrics.mean("wc_map_done_at_s");
        let done = tb.w.metrics.mean("wc_done_at_s");
        println!(
            "{:10} {:>12.2} {:>12.2} {:>12.1}",
            path.label(),
            done - start,
            map_done - start,
            INPUT as f64 / 1e6 / (done - start)
        );
    }
    println!("(the job is map-CPU heavy, so the read-path gain is diluted but still visible)");
}

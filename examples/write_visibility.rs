//! The `vRead_update` consistency protocol in action: write a file
//! through HDFS, watch the namenode's new-block notifications refresh the
//! daemon's mounted view, then vRead-read the fresh data — and contrast
//! with a file smuggled in behind the daemon's back, which transparently
//! falls back to the vanilla path.
//!
//! ```text
//! cargo run --release --example write_visibility
//! ```

use vread::bench::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};
use vread::hdfs::client::{DfsRead, DfsReadDone, DfsWrite, DfsWriteDone};
use vread::hdfs::populate::populate_file;
use vread::sim::prelude::*;

struct Script {
    client: ActorId,
    step: usize,
}

impl Actor for Script {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        let msg = match downcast::<DfsReadDone>(msg) {
            Ok(d) => {
                println!("  step {}: read returned {} bytes", self.step, d.bytes);
                None
            }
            Err(m) => Some(m),
        };
        if let Some(msg) = msg {
            if msg.is::<DfsWriteDone>() {
                println!(
                    "  step {}: write finished (blocks finalized, daemons notified)",
                    self.step
                );
            } else if !msg.is::<Start>() {
                return;
            }
        }
        self.step += 1;
        let me = ctx.me();
        match self.step {
            // 1: the smuggled file is invisible through the stale mount —
            //    vRead_open fails, the client falls back to vanilla HDFS.
            1 => ctx.send(
                self.client,
                DfsRead {
                    req: 1,
                    reply_to: me,
                    path: "/smuggled".into(),
                    offset: 0,
                    len: 4 << 20,
                    pread: false,
                },
            ),
            // 2: a real HDFS write; finalized blocks notify the namenode,
            //    which triggers the daemons' mount refresh (vRead_update).
            2 => ctx.send(
                self.client,
                DfsWrite {
                    req: 2,
                    reply_to: me,
                    path: "/fresh".into(),
                    bytes: 8 << 20,
                },
            ),
            // 3: the freshly written blocks are visible — served by vRead.
            3 => ctx.send(
                self.client,
                DfsRead {
                    req: 3,
                    reply_to: me,
                    path: "/fresh".into(),
                    offset: 0,
                    len: 8 << 20,
                    pread: false,
                },
            ),
            _ => {}
        }
    }
}

fn main() {
    let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::VreadRdma));
    let client = tb.make_client();
    // Lay a file out *after* the daemons mounted the images, without
    // namenode notifications: invisible through the stale mounts.
    let placement = tb.placement(Locality::CoLocated);
    populate_file(&mut tb.w, "/smuggled", 4 << 20, &placement);

    let app = tb.w.add_actor("script", Script { client, step: 0 });
    tb.w.send_now(app, Start);
    tb.w.run();

    let opens = tb.w.metrics.counter("vread_opens");
    let fallbacks = tb.w.metrics.counter("vread_fallbacks");
    println!("  vRead opens: {opens}, fallbacks to vanilla: {fallbacks}");
    println!("  (the smuggled file fell back to the original HDFS path, Algorithm 1 line 22;");
    println!("   the written file was served by vRead thanks to the mount refresh)");
}

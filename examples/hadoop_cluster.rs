//! The paper's full testbed (Figure 10): two hosts, client + two
//! datanodes, optional lookbusy background VMs — driving a TestDFSIO
//! read + re-read job over the hybrid data layout and printing
//! throughput and client CPU time for vanilla vs vRead.
//!
//! ```text
//! cargo run --release --example hadoop_cluster
//! ```

use vread::apps::dfsio::{DfsioConfig, DfsioMode, TestDfsio};
use vread::apps::driver::run_jobs_settled;
use vread::bench::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};
use vread::sim::prelude::*;

const FILES: usize = 4;
const FILE_BYTES: u64 = 64 << 20;

fn dfsio(tb: &mut Testbed, client: ActorId, files: &[String]) -> (f64, f64) {
    tb.w.metrics.reset();
    let vcpu = {
        let cl = tb.w.ext.get::<vread::host::Cluster>().unwrap();
        cl.vm(tb.client_vm).vcpu
    };
    let busy0 = tb.w.acct.busy_ns(vcpu.index());
    let job = tb.w.register_job("dfsio");
    let app = TestDfsio::new(
        client,
        tb.client_vm,
        DfsioMode::Read,
        files.to_vec(),
        FILE_BYTES,
        DfsioConfig::default(),
    )
    .with_job(job);
    let a = tb.w.add_actor("dfsio", app);
    tb.w.send_now(a, Start);
    assert!(run_jobs_settled(
        &mut tb.w,
        SimDuration::from_secs(600),
        SimDuration::from_millis(100),
    ));
    let secs = tb.w.metrics.mean("dfsio_done_at_s") - tb.w.metrics.mean("dfsio_start_at_s");
    let mbps = tb.w.metrics.counter("dfsio_bytes") / 1e6 / secs;
    let cpu_ms = (tb.w.acct.busy_ns(vcpu.index()) - busy0) as f64 / 1e6;
    (mbps, cpu_ms)
}

fn main() {
    println!("TestDFSIO on the Figure-10 testbed (hybrid layout, 2.0 GHz, 4 VMs/host):");
    println!(
        "{:10} {:>12} {:>14} {:>12} {:>14}",
        "path", "read MB/s", "read CPU ms", "reread MB/s", "reread CPU ms"
    );
    for path in [ReadPath::Vanilla, ReadPath::VreadRdma] {
        let mut tb = Testbed::build(TestbedOpts::new().four_vms(true).path(path));
        let files: Vec<String> = (0..FILES).map(|i| format!("/io/{i}")).collect();
        for f in &files {
            tb.populate(f, FILE_BYTES, Locality::Hybrid);
        }
        let client = tb.make_client();
        let (read_mbps, read_cpu) = dfsio(&mut tb, client, &files);
        let (reread_mbps, reread_cpu) = dfsio(&mut tb, client, &files);
        println!(
            "{:10} {:>12.1} {:>14.0} {:>12.1} {:>14.0}",
            path.label(),
            read_mbps,
            read_cpu,
            reread_mbps,
            reread_cpu
        );
    }
}

//! Quickstart: build a one-host virtualized testbed, deploy HDFS and
//! vRead, read a file both ways, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vread::core::{deploy_vread, RemoteTransport, VreadPath};
use vread::hdfs::client::{add_client, DfsRead, DfsReadDone, VanillaPath};
use vread::hdfs::populate::{populate_file, Placement};
use vread::hdfs::{deploy_hdfs, HdfsMeta};
use vread::host::cluster::Cluster;
use vread::host::costs::Costs;
use vread::sim::prelude::*;

/// Tiny driver: a cold read then a re-read, each timed.
struct TwoReads {
    client: ActorId,
    path: &'static str,
    bytes: u64,
    issued: SimTime,
    pass: u64,
}

impl Actor for TwoReads {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if let Ok(done) = downcast::<DfsReadDone>(msg) {
            let secs = ctx.now().since(self.issued).as_secs_f64();
            let mbps = done.bytes as f64 / 1e6 / secs;
            let label = if self.pass == 1 {
                "cold read"
            } else {
                "re-read "
            };
            println!(
                "  {label}: {} bytes in {:6.1} ms  ->  {:5.0} MB/s",
                done.bytes,
                secs * 1e3,
                mbps
            );
            if self.pass >= 2 {
                return;
            }
        }
        self.pass += 1;
        self.issued = ctx.now();
        let me = ctx.me();
        ctx.send(
            self.client,
            DfsRead {
                req: self.pass,
                reply_to: me,
                path: self.path.to_owned(),
                offset: 0,
                len: self.bytes,
                pread: false,
            },
        );
    }
}

fn run(use_vread: bool) {
    // One quad-core 2.0 GHz host with a client VM and a datanode VM.
    let mut w = World::new(7);
    let mut cl = Cluster::new(Costs::default());
    let h = cl.add_host(&mut w, "host", 4, 2.0);
    let client_vm = cl.add_vm(&mut w, h, "client");
    let dn_vm = cl.add_vm(&mut w, h, "datanode");
    w.ext.insert(cl);

    // HDFS with the namenode in the client VM, plus 64 MB of data.
    let (_nn, dns) = deploy_hdfs(&mut w, client_vm, &[dn_vm]);
    populate_file(&mut w, "/demo", 64 << 20, &Placement::One(dns[0]));

    // The only difference between the two configurations is the read path.
    let client = if use_vread {
        deploy_vread(&mut w, RemoteTransport::Rdma);
        add_client(&mut w, client_vm, Box::new(VreadPath::new()))
    } else {
        add_client(&mut w, client_vm, Box::new(VanillaPath::new()))
    };

    let app = w.add_actor(
        "app",
        TwoReads {
            client,
            path: "/demo",
            bytes: 64 << 20,
            issued: SimTime::ZERO,
            pass: 0,
        },
    );
    w.send_now(app, Start);
    w.run();

    let meta = w.ext.get::<HdfsMeta>().unwrap();
    println!(
        "  ({} datanode(s), {} events simulated)",
        meta.datanodes.len(),
        w.events_processed()
    );
}

fn main() {
    println!("vanilla HDFS read (Figure 1 path):");
    run(false);
    println!("vRead (hypervisor shortcut):");
    run(true);
}

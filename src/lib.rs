//! Facade crate re-exporting the whole vread-rs workspace.
#![forbid(unsafe_code)]

pub use vread_apps as apps;
pub use vread_bench as bench;
pub use vread_core as core;
pub use vread_hdfs as hdfs;
pub use vread_host as host;
pub use vread_net as net;
pub use vread_sim as sim;

//! Cross-crate integration tests: full scenarios through the public API
//! of the facade crate.

use vread::apps::dfsio::{DfsioConfig, DfsioMode, TestDfsio};
use vread::apps::driver::run_jobs_settled;
use vread::apps::java_reader::{JavaReader, ReaderMode};
use vread::bench::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};
use vread::hdfs::client::{DfsRead, DfsReadDone};
use vread::host::Cluster;
use vread::sim::prelude::*;

const CAP: SimDuration = SimDuration::from_secs(600);

fn reader_done(tb: &mut Testbed, client: ActorId, path: &str, req: u64, total: u64) -> f64 {
    tb.w.metrics.reset();
    let job = tb.w.register_job("reader");
    let r = JavaReader::new(
        tb.client_vm,
        ReaderMode::Dfs {
            client,
            path: path.to_owned(),
        },
        req,
        total,
    )
    .with_job(job);
    let a = tb.w.add_actor("rdr", r);
    tb.w.send_now(a, Start);
    assert!(run_jobs_settled(
        &mut tb.w,
        CAP,
        SimDuration::from_millis(50)
    ));
    assert_eq!(tb.w.metrics.counter("reader_bytes"), total as f64);
    tb.w.metrics.mean("reader_done_at_s") - tb.w.metrics.mean("reader_start_at_s")
}

/// The headline claim, end-to-end through every layer: vRead beats
/// vanilla on a co-located read, much more on re-read, in both 2-VM and
/// 4-VM configurations.
#[test]
fn headline_speedups_hold_in_all_vm_configs() {
    for four_vms in [false, true] {
        let mut res = Vec::new();
        for path in [ReadPath::Vanilla, ReadPath::VreadRdma] {
            let mut tb = Testbed::build(TestbedOpts::new().four_vms(four_vms).path(path));
            tb.populate("/f", 128 << 20, Locality::CoLocated);
            let client = tb.make_client();
            let cold = reader_done(&mut tb, client, "/f", 1 << 20, 128 << 20);
            let warm = reader_done(&mut tb, client, "/f", 1 << 20, 128 << 20);
            res.push((cold, warm));
        }
        let (va, vr) = (res[0], res[1]);
        assert!(
            vr.0 < va.0,
            "cold: vread {} vs vanilla {} (four_vms={four_vms})",
            vr.0,
            va.0
        );
        let cold_speedup = va.0 / vr.0;
        let warm_speedup = va.1 / vr.1;
        assert!(
            warm_speedup > cold_speedup,
            "re-read gains exceed cold gains"
        );
        assert!(
            warm_speedup > 1.8,
            "re-read speedup {warm_speedup} too small"
        );
    }
}

/// Byte-exactness across paths and localities: both read paths deliver
/// exactly the same byte counts for a set of awkward read plans.
#[test]
fn read_plans_agree_across_paths() {
    let plans: &[(u64, u64)] = &[
        (0, 1),
        (0, 96 << 20),
        ((64 << 20) - 1, 2),     // block boundary straddle
        (5 << 20, 60 << 20),     // cross-block middle read
        ((96 << 20) - 10, 1000), // truncated at EOF
        (96 << 20, 5),           // fully past EOF
    ];
    for locality in [Locality::CoLocated, Locality::Remote, Locality::Hybrid] {
        let mut results: Vec<Vec<u64>> = Vec::new();
        for path in [ReadPath::Vanilla, ReadPath::VreadRdma] {
            let mut tb = Testbed::build(TestbedOpts::new().ghz(3.2).path(path));
            tb.w.ext
                .get_mut::<vread::hdfs::HdfsMeta>()
                .unwrap()
                .block_bytes = 64 << 20;
            tb.populate("/f", 96 << 20, locality);
            let client = tb.make_client();

            struct Plan {
                client: ActorId,
                plans: Vec<(u64, u64)>,
                next: usize,
                got: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
            }
            impl Actor for Plan {
                fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
                    match downcast::<DfsReadDone>(msg) {
                        Ok(d) => self.got.borrow_mut().push(d.bytes),
                        Err(m) => {
                            if !m.is::<Start>() {
                                return;
                            }
                        }
                    }
                    if self.next < self.plans.len() {
                        let (offset, len) = self.plans[self.next];
                        self.next += 1;
                        let me = ctx.me();
                        ctx.send(
                            self.client,
                            DfsRead {
                                req: self.next as u64,
                                reply_to: me,
                                path: "/f".into(),
                                offset,
                                len,
                                pread: self.next.is_multiple_of(2),
                            },
                        );
                    }
                }
            }
            let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
            let a = tb.w.add_actor(
                "plan",
                Plan {
                    client,
                    plans: plans.to_vec(),
                    next: 0,
                    got: got.clone(),
                },
            );
            tb.w.send_now(a, Start);
            tb.w.run();
            results.push(got.borrow().clone());
        }
        assert_eq!(
            results[0], results[1],
            "paths disagree for locality {locality:?}"
        );
        // and both match the analytically expected byte counts
        let expected: Vec<u64> = plans
            .iter()
            .map(|&(off, len)| (96u64 << 20).saturating_sub(off).min(len))
            .collect();
        assert_eq!(results[0], expected);
    }
}

/// CPU conservation across a full DFSIO scenario: total busy time never
/// exceeds cores × wall time on any host, and the vRead run burns fewer
/// total cycles than vanilla.
#[test]
fn accounting_is_conserved_and_vread_cheaper() {
    let mut totals = Vec::new();
    for path in [ReadPath::Vanilla, ReadPath::VreadRdma] {
        let mut tb = Testbed::build(TestbedOpts::new().path(path));
        let files = vec!["/a".to_string(), "/b".to_string()];
        for f in &files {
            tb.populate(f, 64 << 20, Locality::Hybrid);
        }
        let client = tb.make_client();
        let job = tb.w.register_job("dfsio");
        let app = TestDfsio::new(
            client,
            tb.client_vm,
            DfsioMode::Read,
            files,
            64 << 20,
            DfsioConfig::default(),
        )
        .with_job(job);
        let a = tb.w.add_actor("dfsio", app);
        tb.w.send_now(a, Start);
        assert!(run_jobs_settled(
            &mut tb.w,
            CAP,
            SimDuration::from_millis(100)
        ));

        // conservation per host
        let hosts: Vec<_> = {
            let cl = tb.w.ext.get::<Cluster>().unwrap();
            cl.hosts.iter().map(|h| h.host).collect()
        };
        let elapsed = tb.w.now().as_nanos();
        for h in hosts {
            let mut busy = 0u64;
            for t in 0..tb.w.acct.len() {
                if tb.w.thread_host(ThreadId::from_raw(t as u32)) == h {
                    busy += tb.w.acct.busy_ns(t);
                }
            }
            assert!(
                busy <= elapsed * tb.w.host_cores(h) as u64,
                "host {h:?} over-committed"
            );
        }
        let cycles: f64 = (0..tb.w.acct.len())
            .map(|t| tb.w.acct.total_cycles(t))
            .sum();
        totals.push(cycles);
    }
    assert!(
        totals[1] < totals[0] * 0.8,
        "vread total cycles {} should be well below vanilla {}",
        totals[1],
        totals[0]
    );
}

/// Determinism of an entire testbed scenario.
#[test]
fn scenarios_are_deterministic() {
    let run = || {
        let mut tb = Testbed::build(TestbedOpts::new().four_vms(true).path(ReadPath::VreadRdma));
        tb.populate("/f", 32 << 20, Locality::Hybrid);
        let client = tb.make_client();
        let secs = reader_done(&mut tb, client, "/f", 1 << 20, 32 << 20);
        (secs.to_bits(), tb.w.events_processed())
    };
    assert_eq!(run(), run());
}

/// Frequency scaling behaves like the paper's cpufreq experiments: lower
/// clocks hurt vanilla more than vRead.
#[test]
fn frequency_scaling_widens_the_gap() {
    let tput = |ghz: f64, path: ReadPath| {
        let mut tb = Testbed::build(TestbedOpts::new().ghz(ghz).path(path));
        tb.populate("/f", 96 << 20, Locality::CoLocated);
        let client = tb.make_client();
        // measure re-read (CPU-bound regime)
        let _ = reader_done(&mut tb, client, "/f", 1 << 20, 96 << 20);
        let secs = reader_done(&mut tb, client, "/f", 1 << 20, 96 << 20);
        (96 << 20) as f64 / secs
    };
    let slow_gain = tput(1.6, ReadPath::VreadRdma) / tput(1.6, ReadPath::Vanilla);
    let fast_gain = tput(3.2, ReadPath::VreadRdma) / tput(3.2, ReadPath::Vanilla);
    assert!(slow_gain > 1.2 && fast_gain > 1.2);
}

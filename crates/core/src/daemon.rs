//! The vRead hypervisor daemon.
//!
//! One daemon runs per host (§3.2/§4 of the paper). It:
//!
//! * keeps the hash table mapping datanode ids to their VMs' disk images
//!   and the **read-only mounts** of those images ([`FsSnapshot`]s built
//!   with `losetup`/`kpartx` in the real system);
//! * serves `vRead_open`/`vRead_read`/`vRead_close` requests arriving
//!   from guests over the shared-memory ring, reading block files through
//!   the mounted image — and therefore through the **host page cache** —
//!   and pushing payload into the guest's ring slots (the only two copies
//!   on the local path);
//! * refreshes the mount point's dentry/inode information when the
//!   namenode reports a new block (`vRead_update`, the paper's
//!   write-once consistency protocol);
//! * for blocks on other hosts, contacts the remote host's daemon over
//!   **RDMA (RoCE)** — or the user-space **TCP fallback** the paper
//!   measures in Figure 8 — and forwards the returned data into the ring.

use std::collections::{BTreeMap, BTreeSet};

use vread_hdfs::meta::{BlockId, DatanodeIx, HdfsMeta};
use vread_hdfs::namenode::BlockAdded;
use vread_host::cluster::{with_cluster, Cluster, HostIx, VmId};
use vread_host::fs::{FileId, FsSnapshot};
use vread_net::conn::{add_conn, ConnRecv, ConnSend, ConnSent, ConnSpec, Endpoint, Flavor, Side};
use vread_sim::prelude::*;

use crate::api::Vfd;
use crate::ring::RingSpec;

/// Chunks a daemon keeps in flight per read stream.
const DAEMON_WINDOW: usize = 4;

/// What the host block store said about one image-read range: how many
/// bytes had to come from disk and how many were served from chunks
/// another VM's image admitted (content-addressed dedup hits).
#[derive(Debug, Default, Clone, Copy)]
struct ImageReadOutcome {
    miss_bytes: u64,
    dedup_bytes: u64,
}

// ---------------------------------------------------------------------------
// Client ↔ daemon protocol (carried over the shared-memory ring)
// ---------------------------------------------------------------------------

/// `vRead_open`: open the file backing `block` on datanode `dn`.
#[derive(Debug, Clone, Copy)]
pub struct VreadOpenReq {
    /// Where to deliver [`VreadOpenResp`].
    pub reply_to: ActorId,
    /// Caller token.
    pub token: u64,
    /// Target datanode.
    pub dn: DatanodeIx,
    /// Target block.
    pub block: BlockId,
    /// The client's `vread_open` span (daemon-side open work is charged
    /// to it).
    pub span: SpanId,
}

/// Reply to [`VreadOpenReq`]. `vfd: None` means the block is not visible
/// through the daemon's mounted view (the client falls back to the
/// original HDFS read path, Algorithm 1 line 22).
#[derive(Debug, Clone, Copy)]
pub struct VreadOpenResp {
    /// Caller token.
    pub token: u64,
    /// The opened descriptor, if any.
    pub vfd: Option<Vfd>,
}

/// `vRead_read`: read `len` bytes at `offset` through descriptor `vfd`.
#[derive(Debug, Clone, Copy)]
pub struct VreadReadReq {
    /// Where to stream [`VreadChunk`]s / the final [`VreadReadDone`].
    pub reply_to: ActorId,
    /// Caller token.
    pub token: u64,
    /// Open descriptor id.
    pub vfd: u64,
    /// The reading guest (ring owner).
    pub client_vm: VmId,
    /// Offset within the block file.
    pub offset: u64,
    /// Bytes to read.
    pub len: u64,
    /// The client's `vfd_read` span; all daemon/ring/transport work for
    /// this read is charged to it.
    pub span: SpanId,
}

/// A chunk of payload landed in the client's buffer.
#[derive(Debug, Clone, Copy)]
pub struct VreadChunk {
    /// Caller token.
    pub token: u64,
    /// Chunk size.
    pub bytes: u64,
}

/// All bytes of a [`VreadReadReq`] were delivered.
#[derive(Debug, Clone, Copy)]
pub struct VreadReadDone {
    /// Caller token.
    pub token: u64,
}

/// A [`VreadReadReq`] could not be served (stale descriptor — e.g. the
/// datanode VM migrated away). The client reopens or falls back.
#[derive(Debug, Clone, Copy)]
pub struct VreadReadFailed {
    /// Caller token.
    pub token: u64,
}

/// Notification that a (datanode) VM migrated between hosts: daemons
/// update their datanode→image hash tables and mounts (paper §6).
#[derive(Debug, Clone, Copy)]
pub struct VmMigrated {
    /// The VM that moved.
    pub vm: VmId,
}

/// `vRead_close`: release a descriptor.
#[derive(Debug, Clone, Copy)]
pub struct VreadClose {
    /// Descriptor id.
    pub vfd: u64,
}

/// Rebuild this daemon's full mount table from the current topology:
/// discover every datanode VM on the host and re-snapshot its image.
/// Used as a test/maintenance hook (a scenario mutated filesystems
/// behind the daemon's back) and as the recovery step after a daemon
/// restart, which comes back with an empty table (paper §3.5).
#[derive(Debug, Clone, Copy)]
pub struct RemountAll;

/// Test/diagnostic probe: ask a daemon how many descriptors and mounts
/// it currently holds. It replies with a [`VfdAuditReport`] — the guard
/// tests use this to assert descriptor tables drain back to empty after
/// closes and migrations.
#[derive(Debug, Clone, Copy)]
pub struct VfdAudit {
    /// Where to send the report.
    pub reply_to: ActorId,
}

/// Reply to [`VfdAudit`].
#[derive(Debug, Clone, Copy)]
pub struct VfdAuditReport {
    /// Host index of the audited daemon.
    pub host: usize,
    /// Open descriptors in the daemon's table.
    pub vfds: usize,
    /// Mounted datanode images.
    pub mounts: usize,
}

/// Notification that the daemon on `host` was restarted under a new
/// actor id: peers drop their cached connections to the old incarnation
/// (a fresh one is dialled on the next remote request).
#[derive(Debug, Clone, Copy)]
pub struct PeerDaemonRestarted {
    /// Host index of the restarted daemon.
    pub host: usize,
}

/// Toggles the §6 "direct read bypassing the host file system" variant
/// (raw device reads with manual address translation, no host page
/// cache). Used by the ablation harness.
#[derive(Debug, Clone, Copy)]
pub struct SetBypassHostFs(pub bool);

// ---------------------------------------------------------------------------
// Daemon ↔ daemon remote protocol
// ---------------------------------------------------------------------------

/// Remote open request (control path; direct message + small CPU).
#[derive(Debug, Clone, Copy)]
pub struct ROpen {
    /// Requesting daemon.
    pub from: ActorId,
    /// Requester token.
    pub tag: u64,
    /// Target datanode.
    pub dn: DatanodeIx,
    /// Target block.
    pub block: BlockId,
}

/// Remote open response.
#[derive(Debug, Clone, Copy)]
pub struct ROpenResp {
    /// Requester token.
    pub tag: u64,
    /// `(peer descriptor, size)` when visible.
    pub vfd: Option<(u64, u64)>,
}

/// Remote read request: stream `len` bytes of peer descriptor `vfd` back
/// over `conn` with `tag`.
#[derive(Debug, Clone, Copy)]
pub struct RRead {
    /// The requesting daemon (for failure replies).
    pub from: ActorId,
    /// The data connection (created by the requesting daemon).
    pub conn: ActorId,
    /// Stream tag.
    pub tag: u64,
    /// Peer descriptor id.
    pub vfd: u64,
    /// Offset within the block file.
    pub offset: u64,
    /// Bytes to stream.
    pub len: u64,
    /// The requesting read's `vfd_read` span (serve-side work is charged
    /// to it).
    pub span: SpanId,
}

/// Remote close (forwarded `vRead_close`).
#[derive(Debug, Clone, Copy)]
pub struct RClose {
    /// Peer descriptor id.
    pub vfd: u64,
}

/// Remote read failure (stale peer descriptor).
#[derive(Debug, Clone, Copy)]
pub struct RReadFailed {
    /// The requester's stream tag (its read id).
    pub tag: u64,
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// How daemons move data between hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemoteTransport {
    /// RDMA verbs over RoCE (the paper's preferred configuration).
    #[default]
    Rdma,
    /// The user-space TCP fallback ("vRead-net", Figure 8).
    Tcp,
}

/// World-extension registry of deployed daemons.
#[derive(Debug, Default)]
pub struct VreadRegistry {
    /// `host index → (daemon actor, daemon thread)`. Entries persist
    /// across a crash (the thread is reused on restart); liveness is
    /// tracked separately in `down`.
    pub daemons: BTreeMap<usize, (ActorId, ThreadId)>,
    /// Inter-host transport.
    pub transport: RemoteTransport,
    /// Hosts whose daemon is currently crashed. Clients consult this to
    /// fall back to the vanilla path instead of sending into the void.
    pub down: BTreeSet<usize>,
}

impl VreadRegistry {
    /// Whether the daemon on `host_ix` is deployed and alive.
    pub fn is_up(&self, host_ix: usize) -> bool {
        self.daemons.contains_key(&host_ix) && !self.down.contains(&host_ix)
    }
}

// ---------------------------------------------------------------------------
// Daemon state
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum VfdState {
    Local { dn_vm: VmId, file: FileId },
    Remote { peer_host: usize, peer_vfd: u64 },
}

struct LocalRead {
    reply_to: ActorId,
    token: u64,
    client_vm: VmId,
    dn_vm: VmId,
    file: FileId,
    next_offset: u64,
    remaining: u64,
    inflight: usize,
    span: SpanId,
}

struct RemoteRead {
    reply_to: ActorId,
    token: u64,
    client_vm: VmId,
    expected: u64,
    forwarded: u64,
    ring_inflight: usize,
    transport_done: bool,
    span: SpanId,
}

struct Serve {
    conn: ActorId,
    tag: u64,
    dn_vm: VmId,
    file: FileId,
    next_offset: u64,
    remaining: u64,
    inflight: usize,
    span: SpanId,
}

struct LocalChunkDone {
    read: u64,
    bytes: u64,
}

struct RingForwarded {
    read: u64,
    bytes: u64,
}

struct ServeChunkReady {
    key: (u32, u64),
    bytes: u64,
}

struct MountRefreshed {
    vm_ix: usize,
}

/// The per-host vRead daemon actor. Deploy with [`crate::deploy_vread`].
pub struct VreadDaemon {
    host: HostIx,
    thread: ThreadId,
    /// Read-only mounted views of local datanode VM images, by VM index.
    mounts: BTreeMap<usize, FsSnapshot>,
    vfds: BTreeMap<u64, VfdState>,
    next_id: u64,
    local_reads: BTreeMap<u64, LocalRead>,
    remote_reads: BTreeMap<u64, RemoteRead>,
    /// Remote reads waiting for data on `(conn, tag)`.
    data_waits: BTreeMap<(u32, u64), u64>,
    /// Streams this daemon serves for peers.
    serves: BTreeMap<(u32, u64), Serve>,
    /// Pending remote opens (by requester tag).
    open_waits: BTreeMap<u64, (ActorId, u64, DatanodeIx)>,
    peer_conns: BTreeMap<usize, ActorId>,
    /// §6 ablation: bypass the host filesystem (and its page cache),
    /// reading the raw device with manual address translation.
    pub bypass_host_fs: bool,
    /// Gauge tracking bytes currently in this host's shared ring
    /// (chunks between daemon push and guest pop completion); the
    /// timeline sampler turns it into an occupancy series.
    ring_gauge: GaugeId,
}

impl VreadDaemon {
    fn alloc(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn costs(ctx: &Ctx<'_>) -> vread_host::Costs {
        ctx.world
            .ext
            .get::<Cluster>()
            .expect("Cluster missing")
            .costs
            .clone()
    }

    /// Opens `block` on a *local* datanode VM through the mounted view.
    fn open_local(
        &mut self,
        ctx: &Ctx<'_>,
        dn: DatanodeIx,
        block: BlockId,
    ) -> Option<(u64, u64, VmId)> {
        let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
        let dn_vm = meta.datanodes[dn.0].vm;
        let snap = self.mounts.get(&dn_vm.0)?;
        let (file, size) = snap.lookup(&block.path())?;
        let id = self.alloc();
        self.vfds.insert(id, VfdState::Local { dn_vm, file });
        Some((id, size, dn_vm))
    }

    fn ensure_peer_conn(&mut self, ctx: &mut Ctx<'_>, peer_host: usize) -> ActorId {
        if let Some(&c) = self.peer_conns.get(&peer_host) {
            return c;
        }
        let me = ctx.me();
        let my_thread = self.thread;
        let (peer_actor, peer_thread, transport) = {
            let reg = ctx
                .world
                .ext
                .get::<VreadRegistry>()
                .expect("VreadRegistry missing");
            let (a, t) = reg.daemons[&peer_host];
            (a, t, reg.transport)
        };
        let mk = |thread: ThreadId| match transport {
            RemoteTransport::Rdma => Flavor::Rdma { thread },
            RemoteTransport::Tcp => Flavor::HostUser {
                thread,
                cat: CpuCategory::VreadNet,
            },
        };
        let conn = with_cluster(ctx.world, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: me,
                    flavor: mk(my_thread),
                },
                Endpoint {
                    actor: peer_actor,
                    flavor: mk(peer_thread),
                },
                ConnSpec::default(),
            )
        });
        self.peer_conns.insert(peer_host, conn);
        conn
    }

    /// Stage list for the daemon reading `len` bytes at `offset` of a
    /// mounted image file (loop device + host block store + SSD), plus
    /// what the host store said about the range — `pump_local` uses the
    /// outcome to pick the map-serve fast path for pure dedup hits.
    fn image_read_stages(
        &self,
        ctx: &mut Ctx<'_>,
        dn_vm: VmId,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> (Vec<Stage>, ImageReadOutcome) {
        let thread = self.thread;
        let bypass = self.bypass_host_fs;
        with_cluster(ctx.world, |cl, _w| {
            let c = cl.costs.clone();
            let mut st = Vec::with_capacity(6);
            let mut out = ImageReadOutcome::default();
            st.push(Stage::cpu(
                thread,
                c.loop_request_cycles + c.daemon_lookup_cycles,
                CpuCategory::LoopDevice,
            ));
            let obj = cl.vm(dn_vm).fs.image();
            let extents = cl
                .vm(dn_vm)
                .fs
                .resolve(file, offset, len)
                .expect("vfd read within snapshot size");
            let host = cl.vm(dn_vm).host;
            for e in &extents {
                if bypass {
                    // §6 variant: raw device read, manual 3-level address
                    // translation, no host page cache benefit.
                    st.push(Stage::cpu(
                        thread,
                        3 * c.fs_lookup_cycles,
                        CpuCategory::LoopDevice,
                    ));
                    st.push(Stage::cpu(thread, c.blk_host_cycles, CpuCategory::DiskRead));
                    st.push(Stage::disk(cl.hosts[host.0].dev, e.len));
                    out.miss_bytes += e.len;
                } else {
                    let store = &mut cl.hosts[host.0].cache;
                    let look = store.lookup(obj, e.image_offset, e.len);
                    out.miss_bytes += look.miss_bytes;
                    out.dedup_bytes += look.dedup_bytes;
                    if look.miss_bytes > 0 {
                        st.push(Stage::cpu(thread, c.blk_host_cycles, CpuCategory::DiskRead));
                        st.push(Stage::disk(cl.hosts[host.0].dev, look.miss_bytes));
                        if cl.hosts[host.0].cache.content_addressed() {
                            // Content-addressed admission fingerprints the
                            // bytes it pulls from disk.
                            st.push(Stage::cpu(
                                thread,
                                (look.miss_bytes as f64 * c.cas_hash_cyc_per_byte).round() as u64,
                                CpuCategory::Daemon,
                            ));
                        }
                    }
                    cl.hosts[host.0].cache.admit(obj, e.image_offset, e.len);
                }
            }
            (st, out)
        })
    }

    // -- local read streaming -------------------------------------------------

    fn pump_local(&mut self, ctx: &mut Ctx<'_>, read: u64) {
        let me = ctx.me();
        loop {
            let Some(r) = self.local_reads.get(&read) else {
                return;
            };
            if r.inflight >= DAEMON_WINDOW || r.remaining == 0 {
                return;
            }
            let costs = Self::costs(ctx);
            let ring = RingSpec::from_costs(&costs);
            let chunk = costs
                .stream_chunk_bytes
                .min(ring.max_chunk_for_window(DAEMON_WINDOW as u64));
            let (dn_vm, file, offset, take, client_vm, span) = {
                let r = self.local_reads.get_mut(&read).expect("read vanished");
                let take = r.remaining.min(chunk);
                let off = r.next_offset;
                r.next_offset += take;
                r.remaining -= take;
                r.inflight += 1;
                (r.dn_vm, r.file, off, take, r.client_vm, r.span)
            };
            let (mut stages, outcome) = self.image_read_stages(ctx, dn_vm, file, offset, take);
            if outcome.miss_bytes == 0 && outcome.dedup_bytes > 0 {
                // Pure dedup hit in a content-addressed host store: the
                // daemon maps the resident pages into the ring instead of
                // copying — one copy per read (the guest pop) remains.
                stages.extend(ring.daemon_map_stages(&costs, self.thread, take));
            } else {
                stages.extend(ring.daemon_push_stages(&costs, self.thread, take));
            }
            let vcpu = {
                let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                cl.vm(client_vm).vcpu
            };
            stages.extend(ring.guest_pop_stages(&costs, vcpu, take));
            ctx.world.metrics.gauge_add_to(self.ring_gauge, take as f64);
            ctx.chain_on(stages, me, LocalChunkDone { read, bytes: take }, span);
        }
    }

    // -- serve side of remote reads ---------------------------------------------

    fn pump_serve(&mut self, ctx: &mut Ctx<'_>, key: (u32, u64)) {
        let me = ctx.me();
        loop {
            let Some(s) = self.serves.get(&key) else {
                return;
            };
            if s.inflight >= DAEMON_WINDOW || s.remaining == 0 {
                return;
            }
            let costs = Self::costs(ctx);
            let transport = ctx
                .world
                .ext
                .get::<VreadRegistry>()
                .expect("registry")
                .transport;
            let (dn_vm, file, offset, take, span) = {
                let s = self.serves.get_mut(&key).expect("serve vanished");
                let take = s.remaining.min(costs.stream_chunk_bytes);
                let off = s.next_offset;
                s.next_offset += take;
                s.remaining -= take;
                s.inflight += 1;
                (s.dn_vm, s.file, off, take, s.span)
            };
            let (mut stages, _outcome) = self.image_read_stages(ctx, dn_vm, file, offset, take);
            if transport == RemoteTransport::Rdma {
                // Copy into the registered memory region the NIC pushes
                // from (the paper's "active model" on the datanode side).
                stages.push(Stage::copy(
                    self.thread,
                    costs.copy_cycles(take) / 2,
                    CpuCategory::Rdma,
                    take,
                ));
            }
            ctx.chain_on(stages, me, ServeChunkReady { key, bytes: take }, span);
        }
    }
}

impl Actor for VreadDaemon {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        // ---- vRead_open --------------------------------------------------
        let msg = match downcast::<VreadOpenReq>(msg) {
            Ok(req) => {
                let costs = Self::costs(ctx);
                let (dn_host, _dn_vm) = {
                    let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
                    let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                    let vm = meta.datanodes[req.dn.0].vm;
                    (cl.vm(vm).host, vm)
                };
                if dn_host == self.host {
                    let opened = self.open_local(ctx, req.dn, req.block);
                    let vfd = opened.map(|(id, size, _)| Vfd {
                        id,
                        size,
                        dn: req.dn,
                        position: 0,
                    });
                    ctx.chain_on(
                        vec![Stage::cpu(
                            self.thread,
                            costs.eventfd_cycles
                                + costs.daemon_lookup_cycles
                                + costs.fs_lookup_cycles,
                            CpuCategory::Daemon,
                        )],
                        req.reply_to,
                        VreadOpenResp {
                            token: req.token,
                            vfd,
                        },
                        req.span,
                    );
                } else {
                    // remote open via the peer daemon (control path)
                    let tag = self.alloc();
                    self.open_waits
                        .insert(tag, (req.reply_to, req.token, req.dn));
                    let me = ctx.me();
                    let peer = {
                        let reg = ctx.world.ext.get::<VreadRegistry>().expect("registry");
                        reg.daemons[&dn_host.0].0
                    };
                    ctx.chain_on(
                        vec![Stage::cpu(
                            self.thread,
                            costs.eventfd_cycles + costs.rdma_post_cycles,
                            CpuCategory::Daemon,
                        )],
                        peer,
                        ROpen {
                            from: me,
                            tag,
                            dn: req.dn,
                            block: req.block,
                        },
                        req.span,
                    );
                }
                return;
            }
            Err(m) => m,
        };

        // ---- vRead_read ---------------------------------------------------
        let msg = match downcast::<VreadReadReq>(msg) {
            Ok(req) => {
                let state = match self.vfds.get(&req.vfd) {
                    Some(VfdState::Local { dn_vm, file }) => Some((Some((*dn_vm, *file)), None)),
                    Some(VfdState::Remote {
                        peer_host,
                        peer_vfd,
                    }) => Some((None, Some((*peer_host, *peer_vfd)))),
                    None => None,
                };
                match state {
                    Some((Some((dn_vm, file)), _)) => {
                        let read = self.alloc();
                        self.local_reads.insert(
                            read,
                            LocalRead {
                                reply_to: req.reply_to,
                                token: req.token,
                                client_vm: req.client_vm,
                                dn_vm,
                                file,
                                next_offset: req.offset,
                                remaining: req.len,
                                inflight: 0,
                                span: req.span,
                            },
                        );
                        self.pump_local(ctx, read);
                    }
                    Some((None, Some((peer_host, peer_vfd)))) => {
                        let read = self.alloc();
                        let conn = self.ensure_peer_conn(ctx, peer_host);
                        self.remote_reads.insert(
                            read,
                            RemoteRead {
                                reply_to: req.reply_to,
                                token: req.token,
                                client_vm: req.client_vm,
                                expected: req.len,
                                forwarded: 0,
                                ring_inflight: 0,
                                transport_done: false,
                                span: req.span,
                            },
                        );
                        self.data_waits.insert((conn.raw(), read), read);
                        let peer = {
                            let reg = ctx.world.ext.get::<VreadRegistry>().expect("registry");
                            reg.daemons[&peer_host].0
                        };
                        let costs = Self::costs(ctx);
                        ctx.chain_on(
                            vec![Stage::cpu(
                                self.thread,
                                costs.eventfd_cycles + costs.rdma_post_cycles,
                                CpuCategory::Daemon,
                            )],
                            peer,
                            RRead {
                                from: ctx.me(),
                                conn,
                                tag: read,
                                vfd: peer_vfd,
                                offset: req.offset,
                                len: req.len,
                                span: req.span,
                            },
                            req.span,
                        );
                    }
                    _ => {
                        // Stale/unknown descriptor (e.g. the datanode VM
                        // migrated): tell the client to reopen.
                        ctx.send(req.reply_to, VreadReadFailed { token: req.token });
                    }
                }
                return;
            }
            Err(m) => m,
        };

        // ---- vRead_close -----------------------------------------------------
        let msg = match downcast::<VreadClose>(msg) {
            Ok(cl) => {
                if let Some(VfdState::Remote {
                    peer_host,
                    peer_vfd,
                }) = self.vfds.remove(&cl.vfd)
                {
                    let peer = {
                        let reg = ctx.world.ext.get::<VreadRegistry>().expect("registry");
                        reg.daemons[&peer_host].0
                    };
                    ctx.send(peer, RClose { vfd: peer_vfd });
                }
                return;
            }
            Err(m) => m,
        };

        // ---- local chunk landed in the guest ----------------------------------
        let msg = match downcast::<LocalChunkDone>(msg) {
            Ok(done) => {
                ctx.world
                    .metrics
                    .gauge_add_to(self.ring_gauge, -(done.bytes as f64));
                let finished = {
                    let Some(r) = self.local_reads.get_mut(&done.read) else {
                        return;
                    };
                    r.inflight -= 1;
                    ctx.send(
                        r.reply_to,
                        VreadChunk {
                            token: r.token,
                            bytes: done.bytes,
                        },
                    );
                    r.remaining == 0 && r.inflight == 0
                };
                if finished {
                    let r = self.local_reads.remove(&done.read).expect("read vanished");
                    ctx.send(r.reply_to, VreadReadDone { token: r.token });
                } else {
                    self.pump_local(ctx, done.read);
                }
                return;
            }
            Err(m) => m,
        };

        // ---- remote protocol: control ------------------------------------------
        let msg = match downcast::<ROpen>(msg) {
            Ok(op) => {
                let costs = Self::costs(ctx);
                let opened = self.open_local(ctx, op.dn, op.block);
                ctx.chain(
                    vec![Stage::cpu(
                        self.thread,
                        costs.fs_lookup_cycles + costs.daemon_lookup_cycles,
                        CpuCategory::Daemon,
                    )],
                    op.from,
                    ROpenResp {
                        tag: op.tag,
                        vfd: opened.map(|(id, size, _)| (id, size)),
                    },
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<ROpenResp>(msg) {
            Ok(resp) => {
                if let Some((reply_to, token, dn)) = self.open_waits.remove(&resp.tag) {
                    let vfd = resp.vfd.map(|(peer_vfd, size)| {
                        let id = self.alloc();
                        let peer_host = {
                            let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
                            let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                            cl.vm(meta.datanodes[dn.0].vm).host.0
                        };
                        self.vfds.insert(
                            id,
                            VfdState::Remote {
                                peer_host,
                                peer_vfd,
                            },
                        );
                        Vfd {
                            id,
                            size,
                            dn,
                            position: 0,
                        }
                    });
                    ctx.send(reply_to, VreadOpenResp { token, vfd });
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<RRead>(msg) {
            Ok(rr) => {
                let Some(VfdState::Local { dn_vm, file }) = self.vfds.get(&rr.vfd) else {
                    ctx.send(rr.from, RReadFailed { tag: rr.tag });
                    return;
                };
                let key = (rr.conn.raw(), rr.tag);
                self.serves.insert(
                    key,
                    Serve {
                        conn: rr.conn,
                        tag: rr.tag,
                        dn_vm: *dn_vm,
                        file: *file,
                        next_offset: rr.offset,
                        remaining: rr.len,
                        inflight: 0,
                        span: rr.span,
                    },
                );
                self.pump_serve(ctx, key);
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<RClose>(msg) {
            Ok(rc) => {
                self.vfds.remove(&rc.vfd);
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<RReadFailed>(msg) {
            Ok(rf) => {
                // rf.tag is our read id
                if let Some(rr) = self.remote_reads.remove(&rf.tag) {
                    self.data_waits.retain(|_, v| *v != rf.tag);
                    ctx.send(rr.reply_to, VreadReadFailed { token: rr.token });
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<VmMigrated>(msg) {
            Ok(mig) => {
                let local_now = {
                    let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                    cl.vm(mig.vm).host == self.host
                };
                if local_now {
                    // Mount the image on the new host (kpartx/losetup +
                    // hash-table update, per §6).
                    let costs = Self::costs(ctx);
                    let me = ctx.me();
                    ctx.chain(
                        vec![Stage::cpu(
                            self.thread,
                            costs.mount_refresh_cycles + costs.fs_lookup_cycles,
                            CpuCategory::Daemon,
                        )],
                        me,
                        MountRefreshed { vm_ix: mig.vm.0 },
                    );
                } else {
                    // The VM left this host: unmount and invalidate any
                    // descriptors backed by it.
                    self.mounts.remove(&mig.vm.0);
                    self.vfds.retain(
                        |_, st| !matches!(st, VfdState::Local { dn_vm, .. } if *dn_vm == mig.vm),
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<ServeChunkReady>(msg) {
            Ok(sr) => {
                let Some(s) = self.serves.get(&sr.key) else {
                    return;
                };
                ctx.send(
                    s.conn,
                    ConnSend {
                        dir: Side::B,
                        bytes: sr.bytes,
                        tag: s.tag,
                        notify: true,
                        span: s.span,
                    },
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<ConnSent>(msg) {
            Ok(sent) => {
                let key = (sent.conn.raw(), sent.tag);
                let finished = {
                    if let Some(s) = self.serves.get_mut(&key) {
                        s.inflight -= 1;
                        s.remaining == 0 && s.inflight == 0
                    } else {
                        return;
                    }
                };
                if finished {
                    self.serves.remove(&key);
                } else {
                    self.pump_serve(ctx, key);
                }
                return;
            }
            Err(m) => m,
        };

        // ---- remote data arriving at the requesting daemon -----------------------
        let msg = match downcast::<ConnRecv>(msg) {
            Ok(r) => {
                let key = (r.conn.raw(), r.tag);
                let Some(&read) = self.data_waits.get(&key) else {
                    return;
                };
                let costs = Self::costs(ctx);
                let ring = RingSpec::from_costs(&costs);
                let (client_vm, span) = {
                    let Some(rr) = self.remote_reads.get_mut(&read) else {
                        return;
                    };
                    rr.ring_inflight += 1;
                    (rr.client_vm, rr.span)
                };
                let me = ctx.me();
                let vcpu = {
                    let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                    cl.vm(client_vm).vcpu
                };
                let mut stages = ring.daemon_push_stages(&costs, self.thread, r.bytes);
                stages.extend(ring.guest_pop_stages(&costs, vcpu, r.bytes));
                ctx.world
                    .metrics
                    .gauge_add_to(self.ring_gauge, r.bytes as f64);
                ctx.chain_on(
                    stages,
                    me,
                    RingForwarded {
                        read,
                        bytes: r.bytes,
                    },
                    span,
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<RingForwarded>(msg) {
            Ok(f) => {
                ctx.world
                    .metrics
                    .gauge_add_to(self.ring_gauge, -(f.bytes as f64));
                let finished = {
                    let Some(rr) = self.remote_reads.get_mut(&f.read) else {
                        return;
                    };
                    rr.ring_inflight -= 1;
                    rr.forwarded += f.bytes;
                    ctx.send(
                        rr.reply_to,
                        VreadChunk {
                            token: rr.token,
                            bytes: f.bytes,
                        },
                    );
                    rr.transport_done = rr.forwarded >= rr.expected;
                    rr.transport_done && rr.ring_inflight == 0
                };
                if finished {
                    let rr = self.remote_reads.remove(&f.read).expect("read vanished");
                    // release the data wait entries for this read
                    self.data_waits.retain(|_, v| *v != f.read);
                    ctx.send(rr.reply_to, VreadReadDone { token: rr.token });
                }
                return;
            }
            Err(m) => m,
        };

        // ---- consistency: namenode notifications ---------------------------------
        let msg = match downcast::<BlockAdded>(msg) {
            Ok(added) => {
                let (vm, local) = {
                    let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
                    let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                    let vm = meta.datanodes[added.dn.0].vm;
                    (vm, cl.vm(vm).host == self.host)
                };
                if local {
                    let costs = Self::costs(ctx);
                    let me = ctx.me();
                    // Refresh the mount point's dentry/inode info — only
                    // the added inodes need updating (paper §3.2).
                    ctx.chain(
                        vec![Stage::cpu(
                            self.thread,
                            costs.mount_refresh_cycles,
                            CpuCategory::Daemon,
                        )],
                        me,
                        MountRefreshed { vm_ix: vm.0 },
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<MountRefreshed>(msg) {
            Ok(mr) => {
                let snap = {
                    let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                    cl.vms[mr.vm_ix].fs.snapshot()
                };
                self.mounts.insert(mr.vm_ix, snap);
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<SetBypassHostFs>(msg) {
            Ok(b) => {
                self.bypass_host_fs = b.0;
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<VfdAudit>(msg) {
            Ok(a) => {
                ctx.send(
                    a.reply_to,
                    VfdAuditReport {
                        host: self.host.0,
                        vfds: self.vfds.len(),
                        mounts: self.mounts.len(),
                    },
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<PeerDaemonRestarted>(msg) {
            Ok(p) => {
                // Any cached conn targets the dead incarnation's actor;
                // the next remote request dials the new one.
                self.peer_conns.remove(&p.host);
                return;
            }
            Err(m) => m,
        };
        if msg.is::<RemountAll>() {
            let snaps: Vec<(usize, FsSnapshot)> = {
                let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
                let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                meta.datanodes
                    .iter()
                    .filter(|dn| cl.vm(dn.vm).host == self.host)
                    .map(|dn| (dn.vm.0, cl.vm(dn.vm).fs.snapshot()))
                    .collect()
            };
            self.mounts = snaps.into_iter().collect();
        }
    }
}

/// Migrates `vm` to `to` and notifies every deployed daemon so their
/// datanode→image hash tables and mounts follow the VM (paper §6).
/// Works mid-workload: stale descriptors fail cleanly and clients
/// reopen through the correct daemon.
pub fn migrate_vm_with_vread(w: &mut World, vm: VmId, to: vread_host::cluster::HostIx) {
    with_cluster(w, |cl, w| cl.migrate_vm(w, vm, to));
    let daemons: Vec<ActorId> = w
        .ext
        .get::<VreadRegistry>()
        .map(|r| r.daemons.values().map(|(a, _)| *a).collect())
        .unwrap_or_default();
    for d in daemons {
        w.send_now(d, VmMigrated { vm });
    }
}

/// Crashes the vRead daemon on `host`: the actor is removed (queued and
/// future messages to it are dropped, like packets to a killed process)
/// and the registry marks the host down, so clients consulting
/// [`VreadRegistry::is_up`] fall back to the vanilla path instead of
/// sending into the void. The registry entry itself persists — the
/// daemon thread is reused on restart. Returns `false` when no daemon is
/// deployed there (e.g. a vanilla-path scenario), making daemon faults a
/// harmless no-op in such runs.
pub fn crash_daemon(w: &mut World, host: vread_host::cluster::HostIx) -> bool {
    let Some((actor, _)) = w
        .ext
        .get::<VreadRegistry>()
        .and_then(|r| r.daemons.get(&host.0).copied())
    else {
        return false;
    };
    if !w
        .ext
        .get_mut::<VreadRegistry>()
        .unwrap()
        .down
        .insert(host.0)
    {
        return false; // already down
    }
    w.remove_actor(actor);
    if let Some(meta) = w.ext.get_mut::<HdfsMeta>() {
        meta.observers.retain(|&o| o != actor);
    }
    w.metrics.incr("fault_daemon_crashes");
    true
}

/// Restarts a crashed daemon on `host` — the paper's §3.5 recovery
/// protocol: a fresh daemon process re-registers on the same host
/// thread, rejoins the namenode observer list, rebuilds its mount table
/// via [`RemountAll`], and peers drop stale connections to the old
/// incarnation. Descriptors handed out before the crash are gone;
/// clients discover that via timeout/`VreadReadFailed` and reopen.
/// Returns the new actor, or `None` when no daemon is deployed there or
/// it is not down.
pub fn restart_daemon(w: &mut World, host: vread_host::cluster::HostIx) -> Option<ActorId> {
    let reg = w.ext.get::<VreadRegistry>()?;
    if !reg.down.contains(&host.0) {
        return None;
    }
    let (_, thread) = reg.daemons.get(&host.0).copied()?;
    let ring_gauge = w.metrics.register_gauge(&format!("ring.h{}.bytes", host.0));
    let daemon = VreadDaemon {
        host,
        thread,
        mounts: BTreeMap::new(),
        vfds: BTreeMap::new(),
        next_id: 0,
        local_reads: BTreeMap::new(),
        remote_reads: BTreeMap::new(),
        data_waits: BTreeMap::new(),
        serves: BTreeMap::new(),
        open_waits: BTreeMap::new(),
        peer_conns: BTreeMap::new(),
        bypass_host_fs: false,
        ring_gauge,
    };
    let actor = w.add_actor(&format!("vreadd{}", host.0), daemon);
    w.ext
        .get_mut::<HdfsMeta>()
        .expect("meta")
        .observers
        .push(actor);
    let reg = w.ext.get_mut::<VreadRegistry>().unwrap();
    reg.daemons.insert(host.0, (actor, thread));
    reg.down.remove(&host.0);
    let peers: Vec<ActorId> = reg
        .daemons
        .iter()
        .filter(|(&h, _)| h != host.0)
        .map(|(_, &(a, _))| a)
        .collect();
    for p in peers {
        w.send_now(p, PeerDaemonRestarted { host: host.0 });
    }
    w.send_now(actor, RemountAll);
    w.metrics.incr("fault_daemon_restarts");
    let now = w.now().as_secs_f64();
    w.metrics.sample("daemon_restart_at_s", now);
    Some(actor)
}

/// Deploys one vRead daemon per host: creates the daemon threads and
/// actors, mounts (snapshots) every datanode VM image on its host,
/// registers the daemons as namenode observers, and installs the
/// [`VreadRegistry`].
///
/// Call *after* `deploy_hdfs` and any `populate_file` so the initial
/// mounts see the pre-loaded blocks (later blocks become visible through
/// the namenode-notification refresh path).
pub fn deploy_vread(w: &mut World, transport: RemoteTransport) -> Vec<ActorId> {
    let mut reg = VreadRegistry {
        transport,
        ..Default::default()
    };
    let mut out = Vec::new();
    let host_count = w.ext.get::<Cluster>().expect("Cluster missing").hosts.len();
    for hix in 0..host_count {
        let host_id = w.ext.get::<Cluster>().expect("cluster").hosts[hix].host;
        let thread = w.add_thread(host_id, &format!("vreadd{hix}"));
        // Mount every datanode VM image on this host.
        let mut mounts = BTreeMap::new();
        {
            let meta = w.ext.get::<HdfsMeta>().expect("HdfsMeta missing");
            let cl = w.ext.get::<Cluster>().expect("cluster");
            for dn in &meta.datanodes {
                if cl.vm(dn.vm).host.0 == hix {
                    mounts.insert(dn.vm.0, cl.vm(dn.vm).fs.snapshot());
                }
            }
        }
        let ring_gauge = w.metrics.register_gauge(&format!("ring.h{hix}.bytes"));
        let daemon = VreadDaemon {
            host: HostIx(hix),
            thread,
            mounts,
            vfds: BTreeMap::new(),
            next_id: 0,
            local_reads: BTreeMap::new(),
            remote_reads: BTreeMap::new(),
            data_waits: BTreeMap::new(),
            serves: BTreeMap::new(),
            open_waits: BTreeMap::new(),
            peer_conns: BTreeMap::new(),
            bypass_host_fs: false,
            ring_gauge,
        };
        let actor = w.add_actor(&format!("vreadd{hix}"), daemon);
        w.ext
            .get_mut::<HdfsMeta>()
            .expect("meta")
            .observers
            .push(actor);
        reg.daemons.insert(hix, (actor, thread));
        out.push(actor);
    }
    w.ext.insert(reg);
    out
}

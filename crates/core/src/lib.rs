//! # vread-core — the vRead system (the paper's contribution)
//!
//! vRead connects HDFS read I/O flows directly to their data: instead of
//! channeling every read through the datanode VM's virtual NIC and
//! virtual disk (≥5 data copies, two guest network stacks, and four
//! schedulable threads), the HDFS client VM reads the datanode VM's disk
//! image **from the hypervisor**:
//!
//! * [`api`] — the libvread user-level API of Table 1 (`vRead_open`,
//!   `vRead_read`, `vRead_seek`, `vRead_close`) and the block→descriptor
//!   hash that lets HDFS reuse descriptors;
//! * [`ring`] — the guest↔hypervisor shared-memory channel: a POSIX SHM
//!   object exposed as a virtual PCI device, 1024 × 4 KB slots, eventfd
//!   doorbells, virtual-interrupt translation in the guest driver;
//! * [`daemon`] — the per-host hypervisor daemon: datanode→disk-image
//!   hash table, read-only loop mounts of datanode images (served through
//!   the host page cache), the `vRead_update` mount-refresh consistency
//!   protocol driven by namenode notifications, and the remote-read
//!   protocol over RDMA/RoCE (or the user-space TCP fallback);
//! * [`path`] — the modified `DFSInputStream` read path (Algorithms 1
//!   and 2) with descriptor caching and transparent fallback to vanilla
//!   HDFS reads.
//!
//! Deploy with [`deploy_vread`] after `deploy_hdfs`, then give clients a
//! [`VreadPath`] instead of a `VanillaPath` — applications are unaware of
//! the change, exactly as in the paper.

#![forbid(unsafe_code)]

pub mod api;
pub mod daemon;
pub mod fault;
pub mod path;
pub mod ring;

pub use api::{Vfd, VfdTable};
pub use daemon::{
    crash_daemon, deploy_vread, restart_daemon, RemoteTransport, VreadChunk, VreadClose,
    VreadDaemon, VreadOpenReq, VreadOpenResp, VreadReadDone, VreadReadReq, VreadRegistry,
};
pub use fault::{CrashDaemon, CrashDatanodeVm, RestartDaemon};
pub use path::VreadPath;
pub use ring::RingSpec;

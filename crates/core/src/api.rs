//! The libvread user-level API (the paper's Table 1).
//!
//! | API | Parameters | Returns |
//! |---|---|---|
//! | `vRead_open`  | block name, datanode id | vRead descriptor |
//! | `vRead_read`  | descriptor, buffer, offset, length | bytes read |
//! | `vRead_seek`  | descriptor, offset | resulting offset |
//! | `vRead_close` | descriptor | 0 / -1 |
//!
//! HDFS only understands block names, so libvread keeps a hash table
//! mapping block names to open descriptors ([`VfdTable`]), letting the
//! client reuse a descriptor for subsequent read/seek operations on the
//! same block file (paper §3.1). The asynchronous message protocol behind
//! these calls lives in [`crate::daemon`]; [`crate::path::VreadPath`]
//! drives it from the HDFS client.

use std::collections::HashMap;

use vread_hdfs::meta::{BlockId, DatanodeIx};

/// An open vRead descriptor: the client-side handle to a block file
/// opened through the hypervisor daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vfd {
    /// Daemon-assigned descriptor id.
    pub id: u64,
    /// Size of the block file at open time.
    pub size: u64,
    /// The datanode the block was opened on.
    pub dn: DatanodeIx,
    /// Current file offset (advanced by reads, set by seeks).
    pub position: u64,
}

impl Vfd {
    /// `vRead_seek`: sets the file offset, returning the resulting offset
    /// clamped to the file size.
    pub fn seek(&mut self, offset: u64) -> u64 {
        self.position = offset.min(self.size);
        self.position
    }

    /// Bytes available from the current position.
    pub fn remaining(&self) -> u64 {
        self.size - self.position
    }
}

/// The libvread block-name → descriptor hash (`vfd_hash` in Algorithms 1
/// and 2).
///
/// ```rust
/// use vread_core::api::{Vfd, VfdTable};
/// use vread_hdfs::meta::{BlockId, DatanodeIx};
///
/// let mut vfds = VfdTable::new();
/// let blk = BlockId(1);
/// // vRead_open stores the descriptor …
/// vfds.put(blk, Vfd { id: 9, size: 4096, dn: DatanodeIx(0), position: 0 });
/// // … subsequent reads on the same block reuse it (Algorithm 1)
/// assert_eq!(vfds.get(blk).unwrap().id, 9);
/// assert!(vfds.close(blk).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VfdTable {
    map: HashMap<BlockId, Vfd>,
}

impl VfdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an open descriptor for `block` (Algorithm 1 line 10).
    pub fn get(&mut self, block: BlockId) -> Option<&mut Vfd> {
        self.map.get_mut(&block)
    }

    /// Records a freshly opened descriptor (Algorithm 1 line 13).
    pub fn put(&mut self, block: BlockId, vfd: Vfd) {
        self.map.insert(block, vfd);
    }

    /// `vRead_close`: removes the descriptor for `block`, returning it
    /// so the caller can notify the daemon. Returns `None` (the paper's
    /// `-1`) if the block was not open.
    pub fn close(&mut self, block: BlockId) -> Option<Vfd> {
        self.map.remove(&block)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vfd(id: u64, size: u64) -> Vfd {
        Vfd {
            id,
            size,
            dn: DatanodeIx(0),
            position: 0,
        }
    }

    #[test]
    fn open_read_reuse_close() {
        let mut t = VfdTable::new();
        let b = BlockId(7);
        assert!(t.get(b).is_none());
        t.put(b, vfd(1, 1000));
        // subsequent reads on the same block reuse the descriptor
        let d = t.get(b).expect("descriptor cached");
        assert_eq!(d.id, 1);
        d.position += 100;
        assert_eq!(t.get(b).unwrap().position, 100);
        let closed = t.close(b).expect("was open");
        assert_eq!(closed.id, 1);
        assert!(t.close(b).is_none(), "double close reports failure");
        assert!(t.is_empty());
    }

    #[test]
    fn seek_clamps_to_size() {
        let mut d = vfd(1, 500);
        assert_eq!(d.seek(100), 100);
        assert_eq!(d.remaining(), 400);
        assert_eq!(d.seek(9999), 500);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn descriptors_keyed_per_block() {
        let mut t = VfdTable::new();
        t.put(BlockId(1), vfd(1, 10));
        t.put(BlockId(2), vfd(2, 20));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(BlockId(2)).unwrap().id, 2);
    }
}

//! The vRead read path for the HDFS client.
//!
//! This is the paper's modified `DFSInputStream` (Algorithms 1 & 2): for
//! each block part the client checks the libvread descriptor hash, calls
//! `vRead_open` if needed, reads through the shared-memory ring, and
//! closes the descriptor when the block is exhausted. If the daemon
//! cannot open the block (not yet visible through the mounted view, or
//! the datanode is unknown), the path **falls back to the original HDFS
//! read** (`read_buffer`/`fetchBlocks`) — exactly Algorithm 1 line 22.

use std::collections::{HashMap, HashSet};

use vread_hdfs::client::{
    BlockReadPath, BlockReq, ClientShared, PathEvent, TimeoutAdvice, VanillaPath,
};
use vread_hdfs::meta::{DatanodeIx, HdfsMeta};
use vread_host::cluster::Cluster;
use vread_sim::fault::FaultTrace;
use vread_sim::prelude::*;

use crate::api::VfdTable;
use crate::daemon::{
    VreadChunk, VreadClose, VreadOpenReq, VreadOpenResp, VreadReadDone, VreadReadFailed,
    VreadReadReq, VreadRegistry,
};
use crate::ring::RingSpec;

struct ActiveRead {
    block: vread_hdfs::meta::BlockId,
    close_after: bool,
    req: BlockReq,
    /// The fetch's `vfd_read` span (child of the client's `block_fetch`).
    span: SpanId,
}

/// The vRead [`BlockReadPath`]. Plug into
/// [`vread_hdfs::client::add_client`].
pub struct VreadPath {
    vfds: VfdTable,
    fallback: VanillaPath,
    /// Fetches waiting on `vRead_open`, with their `vread_open` span.
    pending_open: HashMap<u64, (BlockReq, SpanId)>,
    active: HashMap<u64, ActiveRead>,
    fallback_tokens: HashSet<u64>,
    /// Failure counts per fetch token (a stale descriptor is retried once
    /// through a fresh open before falling back to vanilla).
    attempts: HashMap<u64, u8>,
    /// Blocks whose vread leg stalled out (daemon crash mid-stream): the
    /// next fetch of such a block goes straight to the vanilla fallback
    /// instead of probing vread again. One-shot — later blocks re-probe.
    degraded_blocks: HashSet<vread_hdfs::meta::BlockId>,
    m_vfd_hits: LazyCounter,
    m_opens: LazyCounter,
}

impl Default for VreadPath {
    fn default() -> Self {
        Self::new()
    }
}

impl VreadPath {
    /// Creates the path with an empty descriptor hash.
    pub fn new() -> Self {
        VreadPath {
            vfds: VfdTable::new(),
            fallback: VanillaPath::new(),
            pending_open: HashMap::new(),
            active: HashMap::new(),
            fallback_tokens: HashSet::new(),
            attempts: HashMap::new(),
            degraded_blocks: HashSet::new(),
            m_vfd_hits: LazyCounter::new("vread_vfd_hits"),
            m_opens: LazyCounter::new("vread_opens"),
        }
    }

    /// Open descriptors currently cached (diagnostics).
    pub fn open_descriptors(&self) -> usize {
        self.vfds.len()
    }

    fn daemon_of(ctx: &Ctx<'_>, shared: &ClientShared) -> (ActorId, ThreadId) {
        let cl = ctx.world.ext.get::<Cluster>().expect("Cluster missing");
        let host = cl.vm(shared.vm).host;
        let reg = ctx
            .world
            .ext
            .get::<VreadRegistry>()
            .expect("vRead not deployed (VreadRegistry missing)");
        reg.daemons[&host.0]
    }

    /// Whether both daemons a fetch for `dn` relies on are alive: the
    /// local one (our ring endpoint) and the one on the datanode's host
    /// (which serves the mounted image).
    fn daemons_up(ctx: &Ctx<'_>, shared: &ClientShared, dn: DatanodeIx) -> bool {
        let Some(reg) = ctx.world.ext.get::<VreadRegistry>() else {
            return false;
        };
        let cl = ctx.world.ext.get::<Cluster>().expect("Cluster missing");
        let meta = ctx.world.ext.get::<HdfsMeta>().expect("HdfsMeta missing");
        let my_host = cl.vm(shared.vm).host.0;
        let dn_host = cl.vm(meta.datanodes[dn.0].vm).host.0;
        reg.is_up(my_host) && reg.is_up(dn_host)
    }

    /// Routes `req` to the vanilla fallback, recording the degradation
    /// (Algorithm 1 line 22 / the paper's §3.5 fail-soft behaviour).
    fn fall_back(
        &mut self,
        ctx: &mut Ctx<'_>,
        shared: &ClientShared,
        req: BlockReq,
        out: &mut Vec<PathEvent>,
    ) {
        ctx.metrics().incr("vread_fallbacks");
        if ctx.world.ext.get::<FaultTrace>().is_some() {
            let now = ctx.now().as_secs_f64();
            ctx.metrics().sample("vread_fallback_at_s", now);
        }
        self.fallback_tokens.insert(req.token);
        self.fallback.start(ctx, shared, req, out);
    }

    fn request_stages(ctx: &Ctx<'_>, shared: &ClientShared) -> Vec<Stage> {
        let cl = ctx.world.ext.get::<Cluster>().expect("Cluster missing");
        let ring = RingSpec::from_costs(&cl.costs);
        ring.guest_request_stages(&cl.costs, cl.vm(shared.vm).vcpu)
    }

    fn issue_read(&mut self, ctx: &mut Ctx<'_>, shared: &ClientShared, req: BlockReq) {
        let (daemon, _) = Self::daemon_of(ctx, shared);
        let vfd = self
            .vfds
            .get(req.block)
            .expect("issue_read without descriptor");
        let len = req.len.min(vfd.size.saturating_sub(req.offset));
        vfd.position = req.offset + len;
        let close_after = vfd.position >= vfd.size;
        let vfd_id = vfd.id;
        let now = ctx.now();
        let span = ctx.world.spans.start("vfd_read", req.span, now);
        self.active.insert(
            req.token,
            ActiveRead {
                block: req.block,
                close_after,
                req,
                span,
            },
        );
        let stages = Self::request_stages(ctx, shared);
        ctx.chain_on(
            stages,
            daemon,
            VreadReadReq {
                reply_to: shared.me,
                token: req.token,
                vfd: vfd_id,
                client_vm: shared.vm,
                offset: req.offset,
                len,
                span,
            },
            span,
        );
    }
}

impl BlockReadPath for VreadPath {
    fn name(&self) -> &'static str {
        "vread"
    }

    fn client_cyc_per_byte(&self, costs: &vread_host::Costs) -> f64 {
        costs.vread_client_cyc_per_byte
    }

    fn cancel(&mut self, token: u64) {
        self.pending_open.remove(&token);
        self.active.remove(&token);
        self.attempts.remove(&token);
        if self.fallback_tokens.remove(&token) {
            self.fallback.cancel(token);
        }
    }

    fn start(
        &mut self,
        ctx: &mut Ctx<'_>,
        shared: &ClientShared,
        req: BlockReq,
        out: &mut Vec<PathEvent>,
    ) {
        if self.degraded_blocks.remove(&req.block) || !Self::daemons_up(ctx, shared, req.dn) {
            // Daemon outage (or a stall that already burned this block):
            // drop the now-suspect descriptor — releasing the server
            // side if our local daemon survived — and go vanilla.
            if let Some(vfd) = self.vfds.close(req.block) {
                let local_up = {
                    let cl = ctx.world.ext.get::<Cluster>().expect("Cluster missing");
                    let host = cl.vm(shared.vm).host.0;
                    ctx.world
                        .ext
                        .get::<VreadRegistry>()
                        .is_some_and(|r| r.is_up(host))
                };
                if local_up {
                    let (daemon, _) = Self::daemon_of(ctx, shared);
                    ctx.send(daemon, VreadClose { vfd: vfd.id });
                }
            }
            self.fall_back(ctx, shared, req, out);
            return;
        }
        if self.vfds.get(req.block).is_some() {
            // Algorithm 1 line 15: descriptor reuse from vfd_hash.
            self.m_vfd_hits.incr(ctx.metrics());
            self.issue_read(ctx, shared, req);
            return;
        }
        // Algorithm 1 line 12: vRead_open.
        self.m_opens.incr(ctx.metrics());
        let (daemon, _) = Self::daemon_of(ctx, shared);
        let now = ctx.now();
        let open_span = ctx.world.spans.start("vread_open", req.span, now);
        self.pending_open.insert(req.token, (req, open_span));
        let stages = Self::request_stages(ctx, shared);
        ctx.chain_on(
            stages,
            daemon,
            VreadOpenReq {
                reply_to: shared.me,
                token: req.token,
                dn: req.dn,
                block: req.block,
                span: open_span,
            },
            open_span,
        );
    }

    fn on_msg(
        &mut self,
        ctx: &mut Ctx<'_>,
        shared: &ClientShared,
        msg: BoxMsg,
        out: &mut Vec<PathEvent>,
    ) -> Result<(), BoxMsg> {
        let msg = match downcast::<VreadOpenResp>(msg) {
            Ok(resp) => {
                let Some((req, open_span)) = self.pending_open.remove(&resp.token) else {
                    return Ok(());
                };
                let now = ctx.now();
                ctx.world.spans.end(open_span, now);
                match resp.vfd {
                    Some(vfd) => {
                        self.vfds.put(req.block, vfd);
                        self.issue_read(ctx, shared, req);
                    }
                    None => {
                        // Algorithm 1 line 22: fall back to the original
                        // HDFS read path.
                        self.fall_back(ctx, shared, req, out);
                    }
                }
                return Ok(());
            }
            Err(m) => m,
        };
        let msg = match downcast::<VreadChunk>(msg) {
            Ok(c) => {
                if self.active.contains_key(&c.token) {
                    out.push(PathEvent::Chunk {
                        token: c.token,
                        bytes: c.bytes,
                    });
                }
                return Ok(());
            }
            Err(m) => m,
        };
        let msg = match downcast::<VreadReadFailed>(msg) {
            Ok(f) => {
                // Stale descriptor (e.g. datanode VM migration): drop it
                // and retry once through a fresh open; then fall back.
                if let Some(ar) = self.active.remove(&f.token) {
                    ctx.metrics().incr("vread_read_retries");
                    let now = ctx.now();
                    ctx.world.spans.end(ar.span, now);
                    if let Some(vfd) = self.vfds.close(ar.block) {
                        // The read failed but the daemon may still hold
                        // its side of the descriptor (e.g. a stale
                        // remote mapping after migration): release it so
                        // the table doesn't leak. Dropped harmlessly if
                        // the daemon is gone.
                        let (daemon, _) = Self::daemon_of(ctx, shared);
                        ctx.send(daemon, VreadClose { vfd: vfd.id });
                    }
                    let tries = self.attempts.entry(f.token).or_insert(0);
                    *tries += 1;
                    let req = ar.req;
                    if *tries <= 1 {
                        // fresh vRead_open through (possibly) a new route
                        let open_span = ctx.world.spans.start("vread_open", req.span, now);
                        self.pending_open.insert(req.token, (req, open_span));
                        let (daemon, _) = Self::daemon_of(ctx, shared);
                        let stages = Self::request_stages(ctx, shared);
                        ctx.chain_on(
                            stages,
                            daemon,
                            VreadOpenReq {
                                reply_to: shared.me,
                                token: req.token,
                                dn: req.dn,
                                block: req.block,
                                span: open_span,
                            },
                            open_span,
                        );
                    } else {
                        self.fall_back(ctx, shared, req, out);
                    }
                }
                return Ok(());
            }
            Err(m) => m,
        };
        let msg = match downcast::<VreadReadDone>(msg) {
            Ok(d) => {
                self.attempts.remove(&d.token);
                if let Some(ar) = self.active.remove(&d.token) {
                    let now = ctx.now();
                    ctx.world.spans.end(ar.span, now);
                    if ctx.world.ext.get::<FaultTrace>().is_some() {
                        // fault runs track when the fast path serves, so
                        // reports can measure recovery latency
                        let now = ctx.now().as_secs_f64();
                        ctx.metrics().sample("vread_ok_at_s", now);
                    }
                    if ar.close_after {
                        // Algorithm 1 line 27: vRead_close at block end.
                        if let Some(vfd) = self.vfds.close(ar.block) {
                            let (daemon, _) = Self::daemon_of(ctx, shared);
                            ctx.send(daemon, VreadClose { vfd: vfd.id });
                        }
                    }
                    out.push(PathEvent::Done { token: d.token });
                }
                return Ok(());
            }
            Err(m) => m,
        };
        // Everything else may belong to the fallback vanilla path.
        match self.fallback.on_msg(ctx, shared, msg, out) {
            Ok(()) => {
                // Reclaim bookkeeping for fallback fetches that finished
                // (without this, fallback_tokens grows for the lifetime
                // of the client).
                for ev in out.iter() {
                    if let PathEvent::Done { token } = ev {
                        self.fallback_tokens.remove(token);
                        self.attempts.remove(token);
                    }
                }
                Ok(())
            }
            Err(m) => Err(m),
        }
    }

    fn on_timeout(
        &mut self,
        ctx: &mut Ctx<'_>,
        shared: &ClientShared,
        token: u64,
    ) -> TimeoutAdvice {
        if self.fallback_tokens.contains(&token) {
            return self.fallback.on_timeout(ctx, shared, token);
        }
        // A stall on the vread leg. The replica's data is intact — the
        // daemon reads it through host-side mounts — so blame the path,
        // not the replica: route this block's next attempt straight to
        // the vanilla fallback (start() drops the suspect descriptor).
        if let Some(block) = self
            .pending_open
            .get(&token)
            .map(|(r, _)| r.block)
            .or_else(|| self.active.get(&token).map(|a| a.block))
        {
            self.degraded_blocks.insert(block);
        }
        let _ = (ctx, shared);
        TimeoutAdvice::PathDegraded
    }
}

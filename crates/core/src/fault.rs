//! vRead-layer fault actions: daemon crash/restart and datanode VM
//! crash.
//!
//! These are thin [`FaultAction`] adapters over the recovery machinery
//! in [`crate::daemon`] so that a scenario's `FaultPlan` can exercise the
//! paper's §3.5 reliability story: kill the daemon mid-read (clients
//! fall back to the vanilla path), restart it (re-registration +
//! `RemountAll`), or kill a datanode VM outright (vRead keeps serving
//! its blocks through the host-side mounts, while vanilla readers fail
//! over to surviving replicas).

use vread_hdfs::meta::HdfsMeta;
use vread_host::cluster::{HostIx, VmId};
use vread_sim::fault::FaultAction;
use vread_sim::prelude::*;

use crate::daemon::{crash_daemon, restart_daemon};

/// Kills the vRead daemon on `host`. No-op in scenarios without a
/// deployed daemon (vanilla path).
pub struct CrashDaemon {
    /// Host whose daemon dies.
    pub host: HostIx,
}

impl FaultAction for CrashDaemon {
    fn label(&self) -> &'static str {
        "fault_daemon_crash"
    }

    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)> {
        crash_daemon(ctx.world, self.host);
        None
    }
}

/// Restarts a previously crashed daemon on `host` (no-op otherwise).
pub struct RestartDaemon {
    /// Host whose daemon comes back.
    pub host: HostIx,
}

impl FaultAction for RestartDaemon {
    fn label(&self) -> &'static str {
        "fault_daemon_restart"
    }

    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)> {
        restart_daemon(ctx.world, self.host);
        None
    }
}

/// Kills the datanode server process in `vm`: its actor is removed, so
/// vanilla-path fetches against it stall until the client's timeout
/// fails them over to a surviving replica. The VM's disk image stays
/// behind — the paper's point is precisely that host-side daemons can
/// still read it through the mounts.
pub struct CrashDatanodeVm {
    /// VM whose datanode dies.
    pub vm: VmId,
}

impl FaultAction for CrashDatanodeVm {
    fn label(&self) -> &'static str {
        "fault_vm_crash"
    }

    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)> {
        let actor = ctx
            .world
            .ext
            .get::<HdfsMeta>()
            .and_then(|m| m.datanodes.iter().find(|d| d.vm == self.vm))
            .map(|d| d.actor);
        if let Some(a) = actor {
            ctx.world.remove_actor(a);
        }
        None
    }
}

//! The guest↔hypervisor shared-memory ring buffer.
//!
//! vRead's communication channel is a POSIX SHM object exposed to the
//! guest as a virtual PCI device (built on ivshmem), divided into slots —
//! by default 1024 slots of 4 KB — with a spinlock per slot and eventfd
//! doorbells in both directions; daemon→guest events are translated into
//! virtual interrupts by the guest driver (paper §3.3/§4).
//!
//! [`RingSpec`] captures the geometry and produces the per-transfer stage
//! costs: per-slot bookkeeping on whichever side touches the slot, the
//! payload copy in and out (the only two copies on the vRead local-read
//! path), and the doorbell costs.

use vread_host::costs::Costs;
use vread_sim::prelude::*;

/// Geometry and costs of one VM's vRead ring.
#[derive(Debug, Clone, Copy)]
pub struct RingSpec {
    /// Number of slots (paper default: 1024).
    pub slots: u64,
    /// Slot payload size in bytes (paper default: 4 KB).
    pub slot_bytes: u64,
}

impl RingSpec {
    /// The ring geometry from the cost model.
    pub fn from_costs(c: &Costs) -> Self {
        RingSpec {
            slots: c.ring_slots,
            slot_bytes: c.ring_slot_bytes,
        }
    }

    /// Total payload capacity of the ring.
    pub fn capacity_bytes(&self) -> u64 {
        self.slots * self.slot_bytes
    }

    /// Slots needed for a transfer of `bytes`.
    pub fn slots_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.slot_bytes).max(1)
    }

    /// The largest chunk size the stream may use so that `window` chunks
    /// fit in the ring at once.
    pub fn max_chunk_for_window(&self, window: u64) -> u64 {
        (self.capacity_bytes() / window.max(1)).max(self.slot_bytes)
    }

    /// Cycles for one side to process the slots of a `bytes` transfer
    /// (spinlock acquire/release + descriptor bookkeeping per slot).
    pub fn slot_cycles(&self, c: &Costs, bytes: u64) -> u64 {
        self.slots_for(bytes) * c.ring_slot_cycles
    }

    /// Stage: the daemon copies `bytes` from the (page-cached) image into
    /// ring slots and rings the guest's doorbell.
    pub fn daemon_push_stages(&self, c: &Costs, daemon: ThreadId, bytes: u64) -> Vec<Stage> {
        vec![
            Stage::copy(
                daemon,
                c.copy_cycles(bytes) + self.slot_cycles(c, bytes),
                CpuCategory::CopyVreadBuffer,
                bytes,
            ),
            Stage::cpu(daemon, c.eventfd_cycles, CpuCategory::Daemon),
        ]
    }

    /// Stages: the daemon serves a fully-resident dedup hit by *mapping*
    /// the content-addressed store's pages into the ring region instead
    /// of copying them (page-table update per slot, then the doorbell).
    /// Replaces [`RingSpec::daemon_push_stages`] on the map-serve fast
    /// path, eliminating the daemon-side copy — dedup hits land at one
    /// copy per read (the guest pop).
    pub fn daemon_map_stages(&self, c: &Costs, daemon: ThreadId, bytes: u64) -> Vec<Stage> {
        vec![
            Stage::map(
                daemon,
                self.slots_for(bytes) * c.cas_map_cycles + self.slot_cycles(c, bytes),
                CpuCategory::Daemon,
                bytes,
            ),
            Stage::cpu(daemon, c.eventfd_cycles, CpuCategory::Daemon),
        ]
    }

    /// Stages: the guest driver turns the eventfd into a virtual
    /// interrupt and libvread copies the payload out of the ring into the
    /// application buffer.
    pub fn guest_pop_stages(&self, c: &Costs, vcpu: ThreadId, bytes: u64) -> Vec<Stage> {
        vec![
            Stage::cpu(vcpu, c.eventfd_irq_cycles, CpuCategory::Other),
            Stage::copy(
                vcpu,
                c.copy_cycles(bytes) + self.slot_cycles(c, bytes),
                CpuCategory::CopyVreadBuffer,
                bytes,
            ),
        ]
    }

    /// Stages: the guest posts a request descriptor into the ring and
    /// rings the daemon's doorbell (the control direction).
    pub fn guest_request_stages(&self, c: &Costs, vcpu: ThreadId) -> Vec<Stage> {
        vec![Stage::cpu(
            vcpu,
            c.ring_slot_cycles + c.eventfd_cycles,
            CpuCategory::Daemon,
        )]
    }

    /// Stage: the daemon wakes on its eventfd and reads the request slot.
    pub fn daemon_wake_stages(&self, c: &Costs, daemon: ThreadId) -> Vec<Stage> {
        vec![Stage::cpu(
            daemon,
            c.ring_slot_cycles + c.eventfd_cycles,
            CpuCategory::Daemon,
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> (RingSpec, Costs) {
        let c = Costs::default();
        (RingSpec::from_costs(&c), c)
    }

    #[test]
    fn default_geometry_matches_paper() {
        let (r, _) = spec();
        assert_eq!(r.slots, 1024);
        assert_eq!(r.slot_bytes, 4096);
        assert_eq!(r.capacity_bytes(), 4 << 20);
    }

    #[test]
    fn slots_round_up() {
        let (r, _) = spec();
        assert_eq!(r.slots_for(1), 1);
        assert_eq!(r.slots_for(4096), 1);
        assert_eq!(r.slots_for(4097), 2);
        assert_eq!(r.slots_for(256 * 1024), 64);
    }

    #[test]
    fn window_chunking_respects_capacity() {
        let (r, _) = spec();
        assert_eq!(r.max_chunk_for_window(4), 1 << 20);
        // degenerate ring still allows a slot-sized chunk
        let tiny = RingSpec {
            slots: 2,
            slot_bytes: 4096,
        };
        assert_eq!(tiny.max_chunk_for_window(8), 4096);
    }

    #[test]
    fn map_stages_move_no_copy_bytes_and_cost_less() {
        let (r, c) = spec();
        let d = ThreadId::from_raw(0);
        let push = r.daemon_push_stages(&c, d, 1 << 20);
        let map = r.daemon_map_stages(&c, d, 1 << 20);
        assert_eq!(map.len(), 2);
        assert!(matches!(map[0], Stage::Map { bytes, .. } if bytes == 1 << 20));
        assert!(
            !map.iter().any(|s| matches!(s, Stage::Copy { .. })),
            "map-serve must not copy"
        );
        let cyc = |st: &[Stage]| -> u64 {
            st.iter()
                .map(|s| match s {
                    Stage::Cpu { cycles, .. }
                    | Stage::Copy { cycles, .. }
                    | Stage::Map { cycles, .. } => *cycles,
                    Stage::Link { .. } | Stage::Disk { .. } | Stage::Delay { .. } => 0,
                })
                .sum()
        };
        assert!(
            cyc(&map) < cyc(&push),
            "mapping 256 slots must beat copying 1 MB"
        );
    }

    #[test]
    fn push_pop_stage_costs_scale_with_bytes() {
        let (r, c) = spec();
        let d = ThreadId::from_raw(0);
        let small = r.daemon_push_stages(&c, d, 4096);
        let big = r.daemon_push_stages(&c, d, 1 << 20);
        let cyc = |st: &[Stage]| -> u64 {
            st.iter()
                .map(|s| match s {
                    Stage::Cpu { cycles, .. } | Stage::Copy { cycles, .. } => *cycles,
                    Stage::Link { .. }
                    | Stage::Disk { .. }
                    | Stage::Delay { .. }
                    | Stage::Map { .. } => 0,
                })
                .sum()
        };
        assert!(cyc(&big) > cyc(&small) * 100);
        // exactly two copies on the local path: push + pop
        let pop = r.guest_pop_stages(&c, d, 1 << 20);
        assert_eq!(
            small.len() + pop.len(),
            4,
            "local data path is push(2 stages) + pop(2 stages)"
        );
    }
}

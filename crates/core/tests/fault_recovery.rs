//! Tests of the §3.5 reliability story: a daemon crash mid-read degrades
//! to the vanilla path (no data loss), a restart re-registers + remounts
//! and restores the fast path, and descriptor tables drain rather than
//! leak across closes and migrations.

use vread_core::daemon::{migrate_vm_with_vread, RemoteTransport, VfdAudit, VfdAuditReport};
use vread_core::{deploy_vread, CrashDaemon, RestartDaemon, VreadPath};
use vread_hdfs::client::{add_client, BlockReadPath, DfsRead, DfsReadDone};
use vread_hdfs::deploy_hdfs;
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::DatanodeIx;
use vread_host::cluster::{Cluster, HostIx, VmId};
use vread_host::costs::Costs;
use vread_sim::fault::{schedule_faults, FaultAction};
use vread_sim::prelude::*;

struct Bed {
    w: World,
    client_vm: VmId,
    dn1_vm: VmId,
    dn_local: DatanodeIx,
    h1: HostIx,
    h2: HostIx,
}

fn bed(file_bytes: u64) -> Bed {
    let mut w = World::new(31);
    let mut cl = Cluster::new(Costs::default());
    let h1 = cl.add_host(&mut w, "h1", 4, 3.2);
    let h2 = cl.add_host(&mut w, "h2", 4, 3.2);
    let client_vm = cl.add_vm(&mut w, h1, "client");
    let dn1_vm = cl.add_vm(&mut w, h1, "dn1");
    let dn2_vm = cl.add_vm(&mut w, h2, "dn2");
    w.ext.insert(cl);
    let (_nn, dns) = deploy_hdfs(&mut w, client_vm, &[dn1_vm, dn2_vm]);
    populate_file(&mut w, "/f", file_bytes, &Placement::One(dns[0]));
    deploy_vread(&mut w, RemoteTransport::Rdma);
    Bed {
        w,
        client_vm,
        dn1_vm,
        dn_local: dns[0],
        h1,
        h2,
    }
}

/// Issues `script` reads sequentially, recording (bytes, end-time-ms).
struct App {
    client: ActorId,
    script: Vec<(u64, u64)>, // (offset, len)
    next: usize,
    done: std::rc::Rc<std::cell::RefCell<Vec<(u64, f64)>>>,
}

impl Actor for App {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        match downcast::<DfsReadDone>(msg) {
            Ok(d) => {
                self.done
                    .borrow_mut()
                    .push((d.bytes, ctx.now().as_secs_f64() * 1e3));
            }
            Err(m) => {
                if !m.is::<Start>() {
                    return;
                }
            }
        }
        if self.next >= self.script.len() {
            return;
        }
        let (offset, len) = self.script[self.next];
        self.next += 1;
        let me = ctx.me();
        ctx.send(
            self.client,
            DfsRead {
                req: self.next as u64,
                reply_to: me,
                path: "/f".into(),
                offset,
                len,
                pread: false,
            },
        );
    }
}

fn run_reads(bed: &mut Bed, script: Vec<(u64, u64)>) -> Vec<(u64, f64)> {
    let done = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let client = add_client(
        &mut bed.w,
        bed.client_vm,
        Box::new(VreadPath::new()) as Box<dyn BlockReadPath>,
    );
    let app = bed.w.add_actor(
        "app",
        App {
            client,
            script,
            next: 0,
            done: done.clone(),
        },
    );
    bed.w.send_now(app, Start);
    bed.w.run();
    let v = done.borrow().clone();
    v
}

/// Collects a [`VfdAuditReport`] from every live daemon, keyed by host.
struct AuditSink {
    reports: std::rc::Rc<std::cell::RefCell<Vec<VfdAuditReport>>>,
}

impl Actor for AuditSink {
    fn handle(&mut self, msg: BoxMsg, _ctx: &mut Ctx<'_>) {
        if let Ok(r) = downcast::<VfdAuditReport>(msg) {
            self.reports.borrow_mut().push(*r);
        }
    }
}

fn audit_daemons(w: &mut World) -> Vec<(usize, usize, usize)> {
    let reports = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let sink = w.add_actor(
        "audit",
        AuditSink {
            reports: reports.clone(),
        },
    );
    let daemons: Vec<ActorId> = w
        .ext
        .get::<vread_core::VreadRegistry>()
        .expect("registry")
        .daemons
        .values()
        .map(|(a, _)| *a)
        .collect();
    for d in daemons {
        w.send_now(d, VfdAudit { reply_to: sink });
    }
    w.run();
    let mut out: Vec<(usize, usize, usize)> = reports
        .borrow()
        .iter()
        .map(|r| (r.host, r.vfds, r.mounts))
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn daemon_crash_mid_read_completes_via_fallback() {
    // Baseline: same read without the fault.
    let mut clean = bed(128 << 20);
    let clean_done = run_reads(&mut clean, vec![(0, 128 << 20)]);

    let mut b = bed(128 << 20);
    schedule_faults(
        &mut b.w,
        vec![(
            SimTime::ZERO + SimDuration::from_millis(100),
            Box::new(CrashDaemon { host: b.h1 }) as Box<dyn FaultAction>,
        )],
    );
    let done = run_reads(&mut b, vec![(0, 128 << 20)]);

    assert_eq!(done[0].0, 128 << 20, "no data loss across the crash");
    assert_eq!(b.w.metrics.counter("fault_daemon_crashes"), 1.0);
    assert!(
        b.w.metrics.counter("vread_fallbacks") >= 1.0,
        "outage is served through the vanilla fallback"
    );
    assert!(
        done[0].1 > clean_done[0].1,
        "the outage costs time ({:.1}ms vs {:.1}ms clean)",
        done[0].1,
        clean_done[0].1
    );
}

#[test]
fn daemon_restart_restores_fast_path() {
    let mut b = bed(128 << 20);
    schedule_faults(
        &mut b.w,
        vec![
            (
                SimTime::ZERO + SimDuration::from_millis(100),
                Box::new(CrashDaemon { host: b.h1 }) as Box<dyn FaultAction>,
            ),
            (
                SimTime::ZERO + SimDuration::from_millis(600),
                Box::new(RestartDaemon { host: b.h1 }) as Box<dyn FaultAction>,
            ),
        ],
    );
    // Two sequential 64MB block reads: the first rides out the crash via
    // fallback, the second lands after the restart.
    let done = run_reads(&mut b, vec![(0, 64 << 20), (64 << 20, 64 << 20)]);
    assert_eq!(done.len(), 2);
    assert_eq!(done[0].0 + done[1].0, 128 << 20);
    assert_eq!(b.w.metrics.counter("fault_daemon_restarts"), 1.0);
    assert!(b.w.metrics.counter("vread_fallbacks") >= 1.0);
    // The restarted daemon served a vread read again: a successful read
    // is recorded after the restart instant.
    let restart_at = b.w.metrics.mean("daemon_restart_at_s");
    let recovered =
        b.w.metrics
            .samples("vread_ok_at_s")
            .is_some_and(|s| s.values().iter().any(|&t| t >= restart_at));
    assert!(recovered, "vread path recovers after restart");
    // The stale pre-crash descriptor is not resurrected: full-block
    // reads close at block end (Algorithm 1 line 27), so the fresh
    // daemon's table drains back to empty — no ghosts.
    let audits = audit_daemons(&mut b.w);
    let h1_audit = audits.iter().find(|(h, _, _)| *h == b.h1.0).unwrap();
    assert_eq!(
        h1_audit.1, 0,
        "descriptor table drains after the post-restart read: {audits:?}"
    );
    assert!(h1_audit.2 >= 1, "RemountAll rebuilt the mount table");
}

#[test]
fn vfd_tables_drain_after_migration_close() {
    let mut b = bed(8 << 20);
    // A partial-block read leaves the descriptor cached (only reads
    // reaching block end close it), so h1's daemon holds one vfd. The
    // h2 daemon always mounts dn2's (empty) image.
    let done = run_reads(&mut b, vec![(0, 4 << 20)]);
    assert_eq!(done[0].0, 4 << 20);
    assert_eq!(
        audit_daemons(&mut b.w),
        vec![(0, 1, 1), (1, 0, 1)],
        "cached descriptor + dn1 mount live on h1"
    );

    // Move the datanode VM to h2: h1's daemon must drop the descriptor
    // and mount rather than leak them; h2 mounts the moved image.
    migrate_vm_with_vread(&mut b.w, b.dn1_vm, b.h2);
    b.w.run();
    assert_eq!(
        audit_daemons(&mut b.w),
        vec![(0, 0, 0), (1, 0, 2)],
        "h1 drained, h2 mounted the moved image"
    );

    // The client's cached (now stale) descriptor fails over cleanly:
    // the retry reopens a fresh descriptor and reading to block end
    // triggers the Algorithm-1 close, draining every table to empty.
    let done2 = run_reads(&mut b, vec![(4 << 20, 4 << 20)]);
    assert_eq!(done2[0].0, 4 << 20);
    let audits = audit_daemons(&mut b.w);
    assert_eq!(audits[0].1, 0, "no descriptors left on h1: {audits:?}");
    assert_eq!(audits[1].1, 0, "no descriptors left on h2: {audits:?}");
    let _ = (b.dn_local, b.client_vm);
}

//! End-to-end tests of the vRead read path against the vanilla baseline.

use vread_core::daemon::{RemoteTransport, RemountAll};
use vread_core::{deploy_vread, VreadPath};
use vread_hdfs::client::{
    add_client, BlockReadPath, DfsRead, DfsReadDone, DfsWrite, DfsWriteDone, VanillaPath,
};
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::{deploy_hdfs, DatanodeIx, HdfsMeta};
use vread_host::cluster::{Cluster, VmId};
use vread_host::costs::Costs;
use vread_sim::prelude::*;

struct App {
    client: ActorId,
    script: Vec<Op>,
    next: usize,
    done: std::rc::Rc<std::cell::RefCell<Vec<(u64, f64)>>>, // (bytes, ms)
    issued_at: SimTime,
}

#[derive(Clone)]
enum Op {
    Read { path: String, offset: u64, len: u64 },
    Write { path: String, bytes: u64 },
}

impl Actor for App {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        let issue = msg.is::<Start>() || msg.is::<DfsReadDone>() || msg.is::<DfsWriteDone>();
        if let Ok(d) = downcast::<DfsReadDone>(msg) {
            let ms = ctx.now().since(self.issued_at).as_millis_f64();
            self.done.borrow_mut().push((d.bytes, ms));
        }
        if !issue || self.next >= self.script.len() {
            return;
        }
        self.issued_at = ctx.now();
        let me = ctx.me();
        let req = self.next as u64;
        match self.script[self.next].clone() {
            Op::Read { path, offset, len } => ctx.send(
                self.client,
                DfsRead {
                    req,
                    reply_to: me,
                    path,
                    offset,
                    len,
                    pread: false,
                },
            ),
            Op::Write { path, bytes } => ctx.send(
                self.client,
                DfsWrite {
                    req,
                    reply_to: me,
                    path,
                    bytes,
                },
            ),
        }
        self.next += 1;
    }
}

struct Bed {
    w: World,
    client_vm: VmId,
    dn_local: DatanodeIx,
}

fn bed(transport: RemoteTransport, populate_before_vread: &[(&str, u64, bool)]) -> Bed {
    let mut w = World::new(23);
    let mut cl = Cluster::new(Costs::default());
    let h1 = cl.add_host(&mut w, "host1", 4, 3.2);
    let h2 = cl.add_host(&mut w, "host2", 4, 3.2);
    let client_vm = cl.add_vm(&mut w, h1, "client");
    let dn1_vm = cl.add_vm(&mut w, h1, "datanode1");
    let dn2_vm = cl.add_vm(&mut w, h2, "datanode2");
    w.ext.insert(cl);
    let (_nn, dns) = deploy_hdfs(&mut w, client_vm, &[dn1_vm, dn2_vm]);
    for (path, bytes, remote) in populate_before_vread {
        let dn = if *remote { dns[1] } else { dns[0] };
        populate_file(&mut w, path, *bytes, &Placement::One(dn));
    }
    deploy_vread(&mut w, transport);
    let _ = (dn1_vm, dn2_vm);
    Bed {
        w,
        client_vm,
        dn_local: dns[0],
    }
}

fn run(bed: &mut Bed, path_impl: Box<dyn BlockReadPath>, script: Vec<Op>) -> Vec<(u64, f64)> {
    let done = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let client = add_client(&mut bed.w, bed.client_vm, path_impl);
    let app = bed.w.add_actor(
        "app",
        App {
            client,
            script,
            next: 0,
            done: done.clone(),
            issued_at: SimTime::ZERO,
        },
    );
    bed.w.send_now(app, Start);
    bed.w.run();
    let v = done.borrow().clone();
    v
}

#[test]
fn vread_local_read_delivers_exact_bytes() {
    let mut b = bed(RemoteTransport::Rdma, &[("/f", 8 << 20, false)]);
    let done = run(
        &mut b,
        Box::new(VreadPath::new()),
        vec![Op::Read {
            path: "/f".into(),
            offset: 0,
            len: 8 << 20,
        }],
    );
    assert_eq!(done, vec![(8 << 20, done[0].1)]);
    assert!(b.w.metrics.counter("vread_opens") >= 1.0);
    assert_eq!(b.w.metrics.counter("vread_fallbacks"), 0.0);
}

#[test]
fn vread_beats_vanilla_on_colocated_read() {
    let script = vec![Op::Read {
        path: "/f".into(),
        offset: 0,
        len: 32 << 20,
    }];
    let mut bv = bed(RemoteTransport::Rdma, &[("/f", 32 << 20, false)]);
    let vanilla = run(&mut bv, Box::new(VanillaPath::new()), script.clone());
    let mut br = bed(RemoteTransport::Rdma, &[("/f", 32 << 20, false)]);
    let vread = run(&mut br, Box::new(VreadPath::new()), script);
    assert_eq!(vanilla[0].0, vread[0].0);
    assert!(
        vread[0].1 < vanilla[0].1,
        "vread ({}ms) should beat vanilla ({}ms)",
        vread[0].1,
        vanilla[0].1
    );
}

#[test]
fn vread_reread_improvement_exceeds_cold_read_improvement() {
    let script = vec![
        Op::Read {
            path: "/f".into(),
            offset: 0,
            len: 32 << 20,
        },
        Op::Read {
            path: "/f".into(),
            offset: 0,
            len: 32 << 20,
        },
    ];
    let mut bv = bed(RemoteTransport::Rdma, &[("/f", 32 << 20, false)]);
    let vanilla = run(&mut bv, Box::new(VanillaPath::new()), script.clone());
    let mut br = bed(RemoteTransport::Rdma, &[("/f", 32 << 20, false)]);
    let vread = run(&mut br, Box::new(VreadPath::new()), script);
    let cold_speedup = vanilla[0].1 / vread[0].1;
    let warm_speedup = vanilla[1].1 / vread[1].1;
    assert!(cold_speedup > 1.0, "cold speedup {cold_speedup}");
    assert!(
        warm_speedup > cold_speedup,
        "re-read speedup ({warm_speedup:.2}x) should exceed cold ({cold_speedup:.2}x)"
    );
    assert!(warm_speedup > 1.5, "paper reports up to 150% re-read gain");
}

#[test]
fn vread_saves_cpu_on_both_sides() {
    let script = vec![Op::Read {
        path: "/f".into(),
        offset: 0,
        len: 32 << 20,
    }];
    let mut bv = bed(RemoteTransport::Rdma, &[("/f", 32 << 20, false)]);
    let _ = run(&mut bv, Box::new(VanillaPath::new()), script.clone());
    let mut br = bed(RemoteTransport::Rdma, &[("/f", 32 << 20, false)]);
    let _ = run(&mut br, Box::new(VreadPath::new()), script);

    let total_cycles =
        |b: &Bed| -> f64 { (0..b.w.acct.len()).map(|t| b.w.acct.total_cycles(t)).sum() };
    let vanilla_cpu = total_cycles(&bv);
    let vread_cpu = total_cycles(&br);
    assert!(
        vread_cpu < vanilla_cpu * 0.75,
        "vread total CPU ({vread_cpu:.0}) should be well below vanilla ({vanilla_cpu:.0})"
    );

    // datanode-side: the datanode VM's threads do (almost) nothing under vread
    let dn_vm_threads = {
        let cl = br.w.ext.get::<Cluster>().unwrap();
        let meta = br.w.ext.get::<HdfsMeta>().unwrap();
        let vm = meta.datanodes[br.dn_local.0].vm;
        (cl.vm(vm).vcpu, cl.vm(vm).vhost)
    };
    let dn_busy =
        br.w.acct.busy_ns(dn_vm_threads.0.index()) + br.w.acct.busy_ns(dn_vm_threads.1.index());
    assert!(
        dn_busy < 1_000_000,
        "datanode VM should be idle under vread (busy {dn_busy}ns)"
    );
}

#[test]
fn vread_charges_ring_copies_not_virtio_net() {
    let mut b = bed(RemoteTransport::Rdma, &[("/f", 8 << 20, false)]);
    let _ = run(
        &mut b,
        Box::new(VreadPath::new()),
        vec![Op::Read {
            path: "/f".into(),
            offset: 0,
            len: 8 << 20,
        }],
    );
    let (vcpu, vhost) = {
        let cl = b.w.ext.get::<Cluster>().unwrap();
        (cl.vm(b.client_vm).vcpu, cl.vm(b.client_vm).vhost)
    };
    let a = &b.w.acct;
    assert!(a.cycles(vcpu.index(), CpuCategory::CopyVreadBuffer) > 0.0);
    assert_eq!(a.cycles(vcpu.index(), CpuCategory::GuestTcp), 0.0);
    assert_eq!(a.cycles(vhost.index(), CpuCategory::CopyVirtioVqueue), 0.0);
    // the daemon did loop-device work
    let reg = b.w.ext.get::<vread_core::VreadRegistry>().unwrap();
    let (_, dthread) = reg.daemons[&0];
    assert!(a.cycles(dthread.index(), CpuCategory::LoopDevice) > 0.0);
    assert!(a.cycles(dthread.index(), CpuCategory::CopyVreadBuffer) > 0.0);
}

#[test]
fn vread_remote_read_over_rdma() {
    let mut b = bed(RemoteTransport::Rdma, &[("/r", 16 << 20, true)]);
    let done = run(
        &mut b,
        Box::new(VreadPath::new()),
        vec![Op::Read {
            path: "/r".into(),
            offset: 0,
            len: 16 << 20,
        }],
    );
    assert_eq!(done[0].0, 16 << 20);
    // data crossed the remote host's NIC
    let nic2 = {
        let cl = b.w.ext.get::<Cluster>().unwrap();
        cl.hosts[1].nic
    };
    assert!(b.w.link(nic2).bytes_total >= 16 << 20);
    // RDMA category charged, vread-net (TCP fallback) untouched
    let reg = b.w.ext.get::<vread_core::VreadRegistry>().unwrap();
    let (_, d1) = reg.daemons[&0];
    let (_, d2) = reg.daemons[&1];
    let a = &b.w.acct;
    assert!(a.cycles(d2.index(), CpuCategory::Rdma) > 0.0);
    assert_eq!(a.cycles(d1.index(), CpuCategory::VreadNet), 0.0);
}

#[test]
fn vread_remote_tcp_fallback_costs_more_cpu_than_rdma() {
    let script = vec![Op::Read {
        path: "/r".into(),
        offset: 0,
        len: 16 << 20,
    }];
    let mut brdma = bed(RemoteTransport::Rdma, &[("/r", 16 << 20, true)]);
    let _ = run(&mut brdma, Box::new(VreadPath::new()), script.clone());
    let mut btcp = bed(RemoteTransport::Tcp, &[("/r", 16 << 20, true)]);
    let _ = run(&mut btcp, Box::new(VreadPath::new()), script);

    let daemon_cycles = |b: &Bed| -> f64 {
        let reg = b.w.ext.get::<vread_core::VreadRegistry>().unwrap();
        reg.daemons
            .values()
            .map(|(_, t)| b.w.acct.total_cycles(t.index()))
            .sum()
    };
    let rdma = daemon_cycles(&brdma);
    let tcp = daemon_cycles(&btcp);
    assert!(
        tcp > rdma * 1.5,
        "TCP daemons ({tcp:.0} cyc) should burn well more than RDMA ({rdma:.0} cyc)"
    );
    // the TCP variant charges the paper's "vRead-net" category
    let reg = btcp.w.ext.get::<vread_core::VreadRegistry>().unwrap();
    let (_, d2) = reg.daemons[&1];
    assert!(btcp.w.acct.cycles(d2.index(), CpuCategory::VreadNet) > 0.0);
}

#[test]
fn blocks_written_after_mount_become_visible_via_namenode_refresh() {
    // Write through HDFS (datanode finalization notifies the namenode,
    // which triggers the daemons' mount refresh), then vread-read it.
    let mut b = bed(RemoteTransport::Rdma, &[]);
    let done = run(
        &mut b,
        Box::new(VreadPath::new()),
        vec![
            Op::Write {
                path: "/w".into(),
                bytes: 6 << 20,
            },
            Op::Read {
                path: "/w".into(),
                offset: 0,
                len: 6 << 20,
            },
        ],
    );
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, 6 << 20);
    // the read went through vread, not the fallback
    assert_eq!(b.w.metrics.counter("vread_fallbacks"), 0.0);
    assert!(b.w.metrics.counter("vread_opens") >= 1.0);
}

#[test]
fn stale_mount_falls_back_to_vanilla_and_still_delivers() {
    // Populate *after* deploy_vread without namenode notifications: the
    // daemon's mounted view is stale, vRead_open fails, Algorithm 1 line
    // 22 falls back to the vanilla read.
    let mut b = bed(RemoteTransport::Rdma, &[]);
    populate_file(&mut b.w, "/late", 4 << 20, &Placement::One(b.dn_local));
    let done = run(
        &mut b,
        Box::new(VreadPath::new()),
        vec![Op::Read {
            path: "/late".into(),
            offset: 0,
            len: 4 << 20,
        }],
    );
    assert_eq!(done[0].0, 4 << 20);
    assert!(b.w.metrics.counter("vread_fallbacks") >= 1.0);
}

#[test]
fn remount_all_makes_late_blocks_visible() {
    let mut b = bed(RemoteTransport::Rdma, &[]);
    populate_file(&mut b.w, "/late", 4 << 20, &Placement::One(b.dn_local));
    let daemon0 = {
        let reg = b.w.ext.get::<vread_core::VreadRegistry>().unwrap();
        reg.daemons[&0].0
    };
    b.w.send_now(daemon0, RemountAll);
    b.w.run();
    let done = run(
        &mut b,
        Box::new(VreadPath::new()),
        vec![Op::Read {
            path: "/late".into(),
            offset: 0,
            len: 4 << 20,
        }],
    );
    assert_eq!(done[0].0, 4 << 20);
    assert_eq!(b.w.metrics.counter("vread_fallbacks"), 0.0);
}

#[test]
fn descriptor_reuse_within_block_scan() {
    let mut b = bed(RemoteTransport::Rdma, &[("/f", 8 << 20, false)]);
    // Several sequential 1MB requests within one 64MB block: one open,
    // descriptor reused thereafter (Algorithm 1).
    let script: Vec<Op> = (0..8)
        .map(|i| Op::Read {
            path: "/f".into(),
            offset: i * (1 << 20),
            len: 1 << 20,
        })
        .collect();
    let done = run(&mut b, Box::new(VreadPath::new()), script);
    assert_eq!(done.len(), 8);
    assert!(done.iter().all(|d| d.0 == 1 << 20));
    assert_eq!(b.w.metrics.counter("vread_opens"), 1.0);
    assert_eq!(b.w.metrics.counter("vread_vfd_hits"), 7.0);
}

#[test]
fn vread_partial_and_offset_reads() {
    let mut b = bed(RemoteTransport::Rdma, &[("/f", 8 << 20, false)]);
    let done = run(
        &mut b,
        Box::new(VreadPath::new()),
        vec![
            Op::Read {
                path: "/f".into(),
                offset: 3 << 20,
                len: 2 << 20,
            },
            Op::Read {
                path: "/f".into(),
                offset: 7 << 20,
                len: 4 << 20,
            }, // truncated at EOF
        ],
    );
    assert_eq!(done[0].0, 2 << 20);
    assert_eq!(done[1].0, 1 << 20);
}

#[test]
fn write_path_unaffected_by_vread_deployment() {
    // Fig 13: mount refresh must not hurt writes. Compare write latency
    // with and without vread deployed.
    let script = vec![Op::Write {
        path: "/out".into(),
        bytes: 16 << 20,
    }];
    // without vread
    let mut w1 = World::new(23);
    let mut cl = Cluster::new(Costs::default());
    let h1 = cl.add_host(&mut w1, "host1", 4, 3.2);
    let client_vm = cl.add_vm(&mut w1, h1, "client");
    let dn_vm = cl.add_vm(&mut w1, h1, "dn");
    w1.ext.insert(cl);
    deploy_hdfs(&mut w1, client_vm, &[dn_vm]);
    let t1 = {
        let done = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        let client = add_client(&mut w1, client_vm, Box::new(VanillaPath::new()));
        let app = w1.add_actor(
            "app",
            App {
                client,
                script: script.clone(),
                next: 0,
                done,
                issued_at: SimTime::ZERO,
            },
        );
        w1.send_now(app, Start);
        w1.run();
        w1.now()
    };
    // with vread
    let mut b = bed(RemoteTransport::Rdma, &[]);
    let t0 = b.w.now();
    let _ = run(&mut b, Box::new(VreadPath::new()), script);
    let t2 = b.w.now().since(t0);
    let base = t1.since(SimTime::ZERO);
    let ratio = t2.as_secs_f64() / base.as_secs_f64();
    assert!(
        ratio < 1.05,
        "vread write overhead should be negligible (ratio {ratio:.3})"
    );
}

//! Edge-case tests of the vRead daemon: tiny rings, concurrent readers,
//! descriptor lifecycle, unknown-descriptor handling.

use vread_core::daemon::{
    RemoteTransport, VreadClose, VreadOpenReq, VreadOpenResp, VreadReadDone, VreadReadFailed,
    VreadReadReq,
};
use vread_core::{deploy_vread, VreadPath, VreadRegistry};
use vread_hdfs::client::{add_client, DfsRead, DfsReadDone};
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::{deploy_hdfs, DatanodeIx, HdfsMeta};
use vread_host::cluster::{Cluster, VmId};
use vread_host::costs::Costs;
use vread_sim::prelude::*;

fn bed(costs: Costs) -> (World, VmId, DatanodeIx) {
    let mut w = World::new(61);
    let mut cl = Cluster::new(costs);
    let h = cl.add_host(&mut w, "h", 4, 3.2);
    let cvm = cl.add_vm(&mut w, h, "client");
    let dvm = cl.add_vm(&mut w, h, "dn");
    w.ext.insert(cl);
    let (_, dns) = deploy_hdfs(&mut w, cvm, &[dvm]);
    populate_file(&mut w, "/f", 16 << 20, &Placement::One(dns[0]));
    deploy_vread(&mut w, RemoteTransport::Rdma);
    (w, cvm, dns[0])
}

struct Rd {
    client: ActorId,
    got: std::rc::Rc<std::cell::Cell<u64>>,
}
impl Actor for Rd {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let me = ctx.me();
            ctx.send(
                self.client,
                DfsRead {
                    req: 1,
                    reply_to: me,
                    path: "/f".into(),
                    offset: 0,
                    len: 16 << 20,
                    pread: false,
                },
            );
        } else if let Ok(d) = downcast::<DfsReadDone>(msg) {
            self.got.set(d.bytes);
        }
    }
}

#[test]
fn tiny_ring_still_delivers_exact_bytes() {
    // A degenerate 8 KB ring (2 × 4 KB slots) forces tiny daemon chunks.
    let costs = Costs {
        ring_slots: 2,
        ..Default::default()
    };
    let (mut w, cvm, _) = bed(costs);
    let client = add_client(&mut w, cvm, Box::new(VreadPath::new()));
    let got = std::rc::Rc::new(std::cell::Cell::new(0));
    let a = w.add_actor(
        "rd",
        Rd {
            client,
            got: got.clone(),
        },
    );
    w.send_now(a, Start);
    w.run();
    assert_eq!(got.get(), 16 << 20);
    assert_eq!(w.metrics.counter("vread_fallbacks"), 0.0);
}

#[test]
fn concurrent_clients_share_one_daemon() {
    let (mut w, cvm, _) = bed(Costs::default());
    let mut gots = Vec::new();
    for i in 0..4 {
        let client = add_client(&mut w, cvm, Box::new(VreadPath::new()));
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let a = w.add_actor(
            &format!("rd{i}"),
            Rd {
                client,
                got: got.clone(),
            },
        );
        w.send_now(a, Start);
        gots.push(got);
    }
    w.run();
    for g in gots {
        assert_eq!(g.get(), 16 << 20);
    }
}

/// Drive the daemon protocol directly (raw Table-1 messages, no HDFS
/// client): open → read → close → read-after-close fails.
#[test]
fn raw_daemon_protocol_lifecycle() {
    let (mut w, cvm, dn) = bed(Costs::default());
    let daemon = w.ext.get::<VreadRegistry>().unwrap().daemons[&0].0;
    let block = {
        let meta = w.ext.get::<HdfsMeta>().unwrap();
        meta.file("/f").unwrap().blocks[0].block
    };

    #[derive(Default)]
    struct RawLog {
        vfd: Option<u64>,
        chunks: u64,
        done: bool,
        failed: bool,
    }
    struct Raw {
        daemon: ActorId,
        dn: DatanodeIx,
        block: vread_hdfs::BlockId,
        cvm: VmId,
        log: std::rc::Rc<std::cell::RefCell<RawLog>>,
        phase: u8,
    }
    impl Actor for Raw {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            let me = ctx.me();
            if msg.is::<Start>() {
                ctx.send(
                    self.daemon,
                    VreadOpenReq {
                        reply_to: me,
                        token: 1,
                        dn: self.dn,
                        block: self.block,
                        span: SpanId::NONE,
                    },
                );
                return;
            }
            let msg = match downcast::<VreadOpenResp>(msg) {
                Ok(r) => {
                    let vfd = r.vfd.expect("open succeeds").id;
                    self.log.borrow_mut().vfd = Some(vfd);
                    ctx.send(
                        self.daemon,
                        VreadReadReq {
                            reply_to: me,
                            token: 2,
                            vfd,
                            client_vm: self.cvm,
                            offset: 0,
                            len: 2 << 20,
                            span: SpanId::NONE,
                        },
                    );
                    return;
                }
                Err(m) => m,
            };
            let msg = match downcast::<vread_core::VreadChunk>(msg) {
                Ok(_) => {
                    self.log.borrow_mut().chunks += 1;
                    return;
                }
                Err(m) => m,
            };
            let msg = match downcast::<VreadReadDone>(msg) {
                Ok(_) => {
                    if self.phase == 0 {
                        self.phase = 1;
                        self.log.borrow_mut().done = true;
                        let vfd = self.log.borrow().vfd.expect("vfd");
                        ctx.send(self.daemon, VreadClose { vfd });
                        // read after close must fail
                        ctx.send(
                            self.daemon,
                            VreadReadReq {
                                reply_to: me,
                                token: 3,
                                vfd,
                                client_vm: self.cvm,
                                offset: 0,
                                len: 1 << 20,
                                span: SpanId::NONE,
                            },
                        );
                    }
                    return;
                }
                Err(m) => m,
            };
            if msg.is::<VreadReadFailed>() {
                self.log.borrow_mut().failed = true;
            }
        }
    }

    let log = std::rc::Rc::new(std::cell::RefCell::new(RawLog::default()));
    let a = w.add_actor(
        "raw",
        Raw {
            daemon,
            dn,
            block,
            cvm,
            log: log.clone(),
            phase: 0,
        },
    );
    w.send_now(a, Start);
    w.run();
    let log = log.borrow();
    assert!(log.vfd.is_some());
    assert!(log.chunks >= 8, "2MB in 256KB chunks");
    assert!(log.done);
    assert!(log.failed, "read-after-close reports failure");
}

#[test]
fn open_of_unknown_block_returns_none() {
    let (mut w, _cvm, dn) = bed(Costs::default());
    let daemon = w.ext.get::<VreadRegistry>().unwrap().daemons[&0].0;
    struct Open {
        daemon: ActorId,
        dn: DatanodeIx,
        got_none: std::rc::Rc<std::cell::Cell<bool>>,
    }
    impl Actor for Open {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() {
                let me = ctx.me();
                ctx.send(
                    self.daemon,
                    VreadOpenReq {
                        reply_to: me,
                        token: 1,
                        dn: self.dn,
                        block: vread_hdfs::BlockId(999_999),
                        span: SpanId::NONE,
                    },
                );
            } else if let Ok(r) = downcast::<VreadOpenResp>(msg) {
                self.got_none.set(r.vfd.is_none());
            }
        }
    }
    let got_none = std::rc::Rc::new(std::cell::Cell::new(false));
    let a = w.add_actor(
        "open",
        Open {
            daemon,
            dn,
            got_none: got_none.clone(),
        },
    );
    w.send_now(a, Start);
    w.run();
    assert!(got_none.get());
}

//! Tests of §6 "Compatibility with VM Migration": daemons rehash and
//! remount when a datanode VM moves; in-flight descriptors fail cleanly
//! and clients recover.

use vread_core::daemon::{migrate_vm_with_vread, RemoteTransport};
use vread_core::{deploy_vread, VreadPath};
use vread_hdfs::client::{add_client, DfsRead, DfsReadDone};
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::{deploy_hdfs, HdfsMeta};
use vread_host::cluster::{Cluster, HostIx, VmId};
use vread_host::costs::Costs;
use vread_host::with_cluster;
use vread_sim::prelude::*;

struct Bed {
    w: World,
    client_vm: VmId,
    dn_vm: VmId,
    h1: HostIx,
    h2: HostIx,
}

fn bed() -> Bed {
    let mut w = World::new(29);
    let mut cl = Cluster::new(Costs::default());
    let h1 = cl.add_host(&mut w, "h1", 4, 3.2);
    let h2 = cl.add_host(&mut w, "h2", 4, 3.2);
    let client_vm = cl.add_vm(&mut w, h1, "client");
    let dn_vm = cl.add_vm(&mut w, h1, "dn");
    w.ext.insert(cl);
    let (_, dns) = deploy_hdfs(&mut w, client_vm, &[dn_vm]);
    populate_file(&mut w, "/f", 16 << 20, &Placement::One(dns[0]));
    deploy_vread(&mut w, RemoteTransport::Rdma);
    Bed {
        w,
        client_vm,
        dn_vm,
        h1,
        h2,
    }
}

struct Rd {
    client: ActorId,
    offset: u64,
    len: u64,
    got: std::rc::Rc<std::cell::Cell<u64>>,
}
impl Actor for Rd {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let me = ctx.me();
            ctx.send(
                self.client,
                DfsRead {
                    req: 1,
                    reply_to: me,
                    path: "/f".into(),
                    offset: self.offset,
                    len: self.len,
                    pread: false,
                },
            );
        } else if let Ok(d) = downcast::<DfsReadDone>(msg) {
            self.got.set(self.got.get() + d.bytes);
        }
    }
}

fn read(b: &mut Bed, offset: u64, len: u64) -> u64 {
    let client = add_client(&mut b.w, b.client_vm, Box::new(VreadPath::new()));
    let got = std::rc::Rc::new(std::cell::Cell::new(0));
    let a = b.w.add_actor(
        "rd",
        Rd {
            client,
            offset,
            len,
            got: got.clone(),
        },
    );
    b.w.send_now(a, Start);
    b.w.run();
    got.get()
}

#[test]
fn reads_work_before_and_after_migration() {
    let mut b = bed();
    // local read before migration
    assert_eq!(read(&mut b, 0, 4 << 20), 4 << 20);
    assert_eq!(b.w.metrics.counter("vread_fallbacks"), 0.0);

    // migrate the datanode VM to host2
    let (dn_vm, h2) = (b.dn_vm, b.h2);
    migrate_vm_with_vread(&mut b.w, dn_vm, h2);
    b.w.run();

    // topology updated
    {
        let cl = b.w.ext.get::<Cluster>().unwrap();
        assert_eq!(cl.vm(dn_vm).host, h2);
        assert!(cl.hosts[b.h1.0].vms.iter().all(|&v| v != dn_vm));
    }

    // reads now go through the remote daemon path — still exact
    b.w.metrics.reset();
    assert_eq!(read(&mut b, 4 << 20, 4 << 20), 4 << 20);
    assert_eq!(b.w.metrics.counter("vread_fallbacks"), 0.0);
    // payload crossed host2's NIC (RDMA push from the new home)
    let nic2 = {
        let cl = b.w.ext.get::<Cluster>().unwrap();
        cl.hosts[b.h2.0].nic
    };
    assert!(b.w.link(nic2).bytes_total >= 4 << 20);
}

#[test]
fn migrating_back_restores_local_reads() {
    let mut b = bed();
    let (dn_vm, h1, h2) = (b.dn_vm, b.h1, b.h2);
    migrate_vm_with_vread(&mut b.w, dn_vm, h2);
    b.w.run();
    migrate_vm_with_vread(&mut b.w, dn_vm, h1);
    b.w.run();
    let nic2_before = {
        let cl = b.w.ext.get::<Cluster>().unwrap();
        b.w.link(cl.hosts[h2.0].nic).bytes_total
    };
    assert_eq!(read(&mut b, 0, 8 << 20), 8 << 20);
    let nic2_after = {
        let cl = b.w.ext.get::<Cluster>().unwrap();
        b.w.link(cl.hosts[h2.0].nic).bytes_total
    };
    assert_eq!(nic2_before, nic2_after, "local read must not touch the LAN");
}

#[test]
fn stale_descriptor_is_retried_transparently() {
    let mut b = bed();
    // Open a descriptor by reading a little, keep the client (and its
    // cached vfd for the 64MB block) alive across the migration.
    let client = add_client(&mut b.w, b.client_vm, Box::new(VreadPath::new()));
    let got = std::rc::Rc::new(std::cell::Cell::new(0));
    let a = b.w.add_actor(
        "rd1",
        Rd {
            client,
            offset: 0,
            len: 1 << 20,
            got: got.clone(),
        },
    );
    b.w.send_now(a, Start);
    b.w.run();
    assert_eq!(got.get(), 1 << 20);

    let (dn_vm, h2) = (b.dn_vm, b.h2);
    migrate_vm_with_vread(&mut b.w, dn_vm, h2);
    b.w.run();

    // The next read reuses the (now stale) descriptor, gets a failure
    // from the daemon, and transparently reopens through the new route.
    let got2 = std::rc::Rc::new(std::cell::Cell::new(0));
    let a2 = b.w.add_actor(
        "rd2",
        Rd {
            client,
            offset: 1 << 20,
            len: 2 << 20,
            got: got2.clone(),
        },
    );
    b.w.send_now(a2, Start);
    b.w.run();
    assert_eq!(got2.get(), 2 << 20, "read recovered after migration");
    assert!(
        b.w.metrics.counter("vread_read_retries") >= 1.0,
        "the stale descriptor was retried"
    );
    assert_eq!(b.w.metrics.counter("vread_fallbacks"), 0.0);
}

#[test]
fn daemon_hash_table_updates_both_sides() {
    let mut b = bed();
    let (dn_vm, h2) = (b.dn_vm, b.h2);
    // New blocks written after migration become visible through the NEW
    // host's daemon (its mount), not the old one.
    migrate_vm_with_vread(&mut b.w, dn_vm, h2);
    b.w.run();
    // materialize a new file directly + remount via namenode-style notify:
    populate_file(
        &mut b.w,
        "/late",
        2 << 20,
        &Placement::One(vread_hdfs::DatanodeIx(0)),
    );
    // trigger the refresh path through a block-added notification
    let observers = b.w.ext.get::<HdfsMeta>().unwrap().observers.clone();
    let block = {
        let meta = b.w.ext.get::<HdfsMeta>().unwrap();
        meta.file("/late").unwrap().blocks[0].block
    };
    for obs in observers {
        b.w.send_now(
            obs,
            vread_hdfs::namenode::BlockAdded {
                dn: vread_hdfs::DatanodeIx(0),
                block,
            },
        );
    }
    b.w.run();
    b.w.metrics.reset();
    let client = add_client(&mut b.w, b.client_vm, Box::new(VreadPath::new()));
    let got = std::rc::Rc::new(std::cell::Cell::new(0));
    struct Rd2 {
        client: ActorId,
        got: std::rc::Rc<std::cell::Cell<u64>>,
    }
    impl Actor for Rd2 {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() {
                let me = ctx.me();
                ctx.send(
                    self.client,
                    DfsRead {
                        req: 1,
                        reply_to: me,
                        path: "/late".into(),
                        offset: 0,
                        len: 2 << 20,
                        pread: false,
                    },
                );
            } else if let Ok(d) = downcast::<DfsReadDone>(msg) {
                self.got.set(d.bytes);
            }
        }
    }
    let a = b.w.add_actor(
        "rd",
        Rd2 {
            client,
            got: got.clone(),
        },
    );
    b.w.send_now(a, Start);
    b.w.run();
    assert_eq!(got.get(), 2 << 20);
    assert_eq!(
        b.w.metrics.counter("vread_fallbacks"),
        0.0,
        "served by vread through the migrated-to host's daemon"
    );
    let _ = with_cluster(&mut b.w, |cl, _| cl.vm(dn_vm).host);
}

//! A minimal, dependency-free subset of the `proptest` crate.
//!
//! The real proptest cannot be vendored in this offline workspace, so this
//! shim reimplements exactly the surface our test-suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`Strategy`] with `prop_map`, [`Just`], `prop_oneof!`,
//! * integer-range, tuple and simple-regex string strategies,
//! * `proptest::collection::{vec, hash_set}`.
//!
//! Cases are generated from a deterministic per-case RNG (SplitMix64), so
//! failures are reproducible; there is no shrinking — the failing inputs
//! are printed verbatim instead.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case number `case` of a test run.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x5EED_0BAD_F00D_4242 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Test-run configuration (`cases` = number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The shim generates eagerly (no value trees, no
/// shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.0.len() as u64) as usize;
        self.0[ix].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $ix:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// `&str` patterns are interpreted as a tiny regex subset — sequences of
/// literal characters and character classes `[a-z0-9]`, each optionally
/// repeated `{m,n}`/`{n}` — enough for patterns like `"[a-z]{1,6}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // one atom: class or literal
            let atom: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated char class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("char range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // optional {m,n} / {n} repetition
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<u64>().expect("bad repetition"),
                        n.parse::<u64>().expect("bad repetition"),
                    ),
                    None => {
                        let n = body.parse::<u64>().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                out.push(atom[rng.below(atom.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::fmt::Debug;
    use std::hash::Hash;
    use std::ops::Range;

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `HashSet` aiming for `size.start..size.end` distinct elements
    /// (duplicates are retried a bounded number of times).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash + Debug,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash + Debug,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let want = self.size.start + rng.below(span.max(1)) as usize;
            let mut out = HashSet::new();
            let mut tries = 0;
            while out.len() < want.max(self.size.start.max(1)) && tries < want * 20 + 20 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Everything a test module needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => {{
        let (l, r) = (&$l, &$r);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assert_eq failed: {:?} != {:?}",
                l,
                r
            ));
        }
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$l, &$r);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assert_eq failed: {:?} != {:?} — {}",
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        $crate::Union(::std::vec![$($crate::Strategy::boxed($s)),+])
    }};
}

/// Declares deterministic randomized tests. Supports the subset of the
/// real macro's grammar used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u8..2, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest case #{case} failed: {e}\n  inputs: {inputs}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let u = (1usize..3).generate(&mut rng);
            assert!((1..3).contains(&u));
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..100 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 6, "bad len: {s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase()),
                "bad chars: {s:?}"
            );
        }
    }

    #[test]
    fn oneof_and_map_work() {
        let mut rng = TestRng::for_case(2);
        let s = prop_oneof![Just(1u32), Just(2), Just(3)].prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_case(5);
        for _ in 0..50 {
            let v = collection::vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let h = collection::hash_set("[a-c]{1,2}", 1..4).generate(&mut rng);
            assert!(!h.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_runs(x in 0u64..100, pair in (0u8..2, 1u32..5)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 2 && (1..5).contains(&pair.1));
        }
    }
}

//! A minimal, dependency-free subset of the `criterion` benchmark crate.
//!
//! The real criterion cannot be vendored in this offline workspace, so this
//! shim reimplements the surface our benches use — `Criterion`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `criterion_group!`, `criterion_main!` — with real wall-clock
//! measurement:
//!
//! * each bench takes `sample_size` samples after a short warm-up;
//! * `iter` auto-calibrates an inner loop so one sample spans ≥ ~1 ms;
//! * per-bench median / mean / min / max are printed, and a JSON record is
//!   written to `target/criterion-lite/<name>.json` so successive runs can
//!   be diffed by tooling.
//!
//! Positional command-line arguments act as substring filters (matching
//! `cargo bench -- <filter>`); flags (`--bench`, `--exact`, …) are
//! accepted and ignored.

#![forbid(unsafe_code)]

use std::time::Instant;

/// How `iter_batched` amortizes setup. The shim always re-runs setup per
/// sample; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Setup re-run every iteration.
    PerIteration,
}

/// An opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One measured benchmark (all durations in nanoseconds per iteration).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark id as given to `bench_function`.
    pub name: String,
    /// Median ns/iteration.
    pub median_ns: f64,
    /// Mean ns/iteration.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_size: 20,
            filters,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark (unless filtered out) and records the result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|flt| name.contains(flt.as_str())) {
            return self;
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let mut s = b.samples_ns;
        if s.is_empty() {
            return self;
        }
        s.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let median = if s.len() % 2 == 1 {
            s[s.len() / 2]
        } else {
            (s[s.len() / 2 - 1] + s[s.len() / 2]) / 2.0
        };
        // vread-lint: allow(float-accum, "sorted samples slice; iteration order is fixed")
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let rec = BenchRecord {
            name: name.to_owned(),
            median_ns: median,
            mean_ns: mean,
            min_ns: s[0],
            max_ns: s[s.len() - 1],
            samples: s.len(),
        };
        println!(
            "{:<44} time: [{} {} {}]",
            rec.name,
            fmt_ns(rec.min_ns),
            fmt_ns(rec.median_ns),
            fmt_ns(rec.max_ns)
        );
        write_record(&rec);
        self.records.push(rec);
        self
    }

    /// All records measured so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Prints the closing summary (called by `criterion_group!`).
    pub fn final_summary(&self) {
        if !self.records.is_empty() {
            println!(
                "criterion-lite: {} benchmark(s), JSON in target/criterion-lite/",
                self.records.len()
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn write_record(r: &BenchRecord) {
    let dir = std::path::Path::new("target").join("criterion-lite");
    if std::fs::create_dir_all(&dir).is_err() {
        return; // benches must not fail on a read-only tree
    }
    let json = format!(
        "{{\n  \"name\": \"{}\",\n  \"median_ns\": {},\n  \"mean_ns\": {},\n  \"min_ns\": {},\n  \"max_ns\": {},\n  \"samples\": {}\n}}\n",
        r.name, r.median_ns, r.mean_ns, r.min_ns, r.max_ns, r.samples
    );
    let _ = std::fs::write(dir.join(format!("{}.json", sanitize(&r.name))), json);
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f` directly, auto-calibrating an inner loop so that one
    /// sample spans at least ~1 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up + calibration
        // vread-lint: allow(wall-clock, "criterion shim: benchmarking measures real host time by definition")
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        let iters = (1_000_000 / once).clamp(1, 1_000_000);
        for _ in 0..3 {
            for _ in 0..iters {
                black_box(f());
            }
        }
        for _ in 0..self.sample_size {
            // vread-lint: allow(wall-clock, "criterion shim: benchmarking measures real host time by definition")
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // warm-up
        for _ in 0..2 {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            // vread-lint: allow(wall-clock, "criterion shim: benchmarking measures real host time by definition")
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut c = Criterion {
            sample_size: 5,
            filters: vec![],
            records: vec![],
        };
        c.bench_function("shim/smoke_batched", |b| {
            b.iter_batched(
                || vec![1u64; 1024],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(c.records().len(), 1);
        assert!(c.records()[0].median_ns > 0.0);
    }

    #[test]
    fn filters_skip_benches() {
        let mut c = Criterion {
            sample_size: 5,
            filters: vec!["nomatch".into()],
            records: vec![],
        };
        c.bench_function("shim/filtered_out", |b| b.iter(|| 1 + 1));
        assert!(c.records().is_empty());
    }

    #[test]
    fn iter_calibrates() {
        let mut c = Criterion {
            sample_size: 3,
            filters: vec![],
            records: vec![],
        };
        c.bench_function("shim/smoke_iter", |b| b.iter(|| black_box(7u64) * 3));
        assert_eq!(c.records().len(), 1);
    }
}

//! Bidirectional, windowed, in-order connections.
//!
//! A [`Conn`] is an actor standing between two [`Endpoint`]s. Each
//! direction carries a FIFO of messages, split into streaming chunks; at
//! most `window_chunks` chunks are in flight per direction, and each chunk
//! is a [`Stage`] chain across the threads of the chosen transport
//! [`Flavor`]. Chunks complete in order (per-thread work queues and links
//! are FIFO), so delivery is in order without sequence numbers.

use std::collections::VecDeque;

use vread_host::cluster::{Cluster, VmId};
use vread_host::costs::Costs;
use vread_sim::prelude::*;

/// Which side of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first endpoint passed to [`add_conn`].
    A,
    /// The second endpoint.
    B,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }

    fn ix(self) -> usize {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }
}

/// How an endpoint attaches to the network.
#[derive(Debug, Clone, Copy)]
pub enum Flavor {
    /// An application inside a VM: guest TCP stack + virtio-net/vhost.
    Guest(VmId),
    /// A user-space process on the host kernel's TCP stack (the vRead
    /// daemon's TCP fallback). `cat` is the accounting category for its
    /// network work (the paper's "vRead-net").
    HostUser {
        /// The host thread running the process.
        thread: ThreadId,
        /// Accounting category for socket work.
        cat: CpuCategory,
    },
    /// RDMA verbs on a RoCE NIC: per-work-request CPU only, NIC DMAs the
    /// payload.
    Rdma {
        /// The host thread posting/polling verbs.
        thread: ThreadId,
    },
}

/// One end of a connection.
#[derive(Debug, Clone, Copy)]
pub struct Endpoint {
    /// The actor that receives [`ConnRecv`] deliveries for this side.
    pub actor: ActorId,
    /// Transport attachment.
    pub flavor: Flavor,
}

/// Ask the connection to transmit `bytes` from `dir` to the other side.
#[derive(Debug, Clone, Copy)]
pub struct ConnSend {
    /// The sending side.
    pub dir: Side,
    /// Payload size.
    pub bytes: u64,
    /// Caller-chosen tag, echoed in [`ConnRecv`]/[`ConnSent`].
    pub tag: u64,
    /// Whether to deliver a [`ConnSent`] ack to the sender when the whole
    /// message has been delivered.
    pub notify: bool,
    /// Span the transfer's CPU work and copies are attributed to
    /// ([`SpanId::NONE`] for untraced traffic).
    pub span: SpanId,
}

/// Delivered to the receiving endpoint when a whole message has arrived.
#[derive(Debug, Clone, Copy)]
pub struct ConnRecv {
    /// The connection actor (reply address).
    pub conn: ActorId,
    /// The side that received (i.e. *this* endpoint's side).
    pub side: Side,
    /// Payload size.
    pub bytes: u64,
    /// Sender's tag.
    pub tag: u64,
}

/// Delivered to the sending endpoint when its message finished arriving
/// (requested via [`ConnSend::notify`]).
#[derive(Debug, Clone, Copy)]
pub struct ConnSent {
    /// The connection actor.
    pub conn: ActorId,
    /// Sender's tag.
    pub tag: u64,
}

/// Connection tuning.
#[derive(Debug, Clone, Copy)]
pub struct ConnSpec {
    /// Max streaming chunks in flight per direction.
    pub window_chunks: usize,
    /// Chunk size in bytes (0 = use `Costs::stream_chunk_bytes`).
    pub chunk_bytes: u64,
    /// SR-IOV / VT-d device assignment (paper §6): guests talk to the
    /// physical NIC directly, skipping the vhost-net copies on
    /// *inter-host* paths. Has no effect on the intra-host (inter-VM)
    /// path — which is exactly the paper's point that SR-IOV does not
    /// help the co-located case vRead targets.
    pub sriov: bool,
}

impl Default for ConnSpec {
    fn default() -> Self {
        ConnSpec {
            window_chunks: 8,
            chunk_bytes: 0,
            sriov: false,
        }
    }
}

/// Resolved per-side transport data (threads, NIC, host).
#[derive(Debug, Clone, Copy)]
struct End {
    actor: ActorId,
    flavor: Flavor,
    host: usize,
    nic: LinkId,
    vcpu: ThreadId,
    vhost: ThreadId,
}

#[derive(Debug)]
struct OutMsg {
    bytes_left: u64,
    span: SpanId,
}

#[derive(Debug)]
struct InMsg {
    tag: u64,
    bytes: u64,
    chunks_left: u64,
    notify: bool,
}

#[derive(Debug, Default)]
struct DirState {
    to_send: VecDeque<OutMsg>,
    arriving: VecDeque<InMsg>,
    inflight: usize,
    connected: bool,
}

/// Internal chunk-completion message.
struct ChunkDone {
    side_ix: usize,
}

/// The connection actor. Create with [`add_conn`].
pub struct Conn {
    ends: [End; 2],
    dirs: [DirState; 2],
    costs: Costs,
    spec: ConnSpec,
    inter_host: bool,
}

/// Creates a connection between `a` and `b` and registers it with the
/// world. Returns the connection's actor id, which both endpoints use as
/// the destination for [`ConnSend`] messages.
///
/// # Panics
///
/// Panics if an endpoint references an unknown VM.
pub fn add_conn(w: &mut World, cl: &Cluster, a: Endpoint, b: Endpoint, spec: ConnSpec) -> ActorId {
    let resolve = |e: Endpoint| -> End {
        match e.flavor {
            Flavor::Guest(vm) => {
                let v = cl.vm(vm);
                let hw = &cl.hosts[v.host.0];
                End {
                    actor: e.actor,
                    flavor: e.flavor,
                    host: v.host.0,
                    nic: hw.nic,
                    vcpu: v.vcpu,
                    vhost: v.vhost,
                }
            }
            Flavor::HostUser { thread, .. } | Flavor::Rdma { thread } => {
                let hix = cl
                    .hosts
                    .iter()
                    .position(|h| h.host == w.thread_host(thread))
                    .expect("endpoint thread not on a cluster host");
                End {
                    actor: e.actor,
                    flavor: e.flavor,
                    host: hix,
                    nic: cl.hosts[hix].nic,
                    vcpu: thread,
                    vhost: thread,
                }
            }
        }
    };
    let ea = resolve(a);
    let eb = resolve(b);
    let mut spec = spec;
    if spec.chunk_bytes == 0 {
        spec.chunk_bytes = cl.costs.stream_chunk_bytes;
    }
    let conn = Conn {
        inter_host: ea.host != eb.host,
        ends: [ea, eb],
        dirs: [DirState::default(), DirState::default()],
        costs: cl.costs.clone(),
        spec,
    };
    w.add_actor("conn", conn)
}

impl Conn {
    /// Builds the stage chain for one chunk travelling `from` → `to`.
    fn chunk_stages(&self, from: usize, bytes: u64) -> Vec<Stage> {
        let to = 1 - from;
        let c = &self.costs;
        let snd = &self.ends[from];
        let rcv = &self.ends[to];
        let mut st = Vec::with_capacity(10);

        // --- sender side ---
        let sriov_direct = self.spec.sriov && self.inter_host;
        match snd.flavor {
            Flavor::Guest(_) => {
                // guest TCP tx: syscall, user->skb copy, stack work
                st.push(Stage::copy(
                    snd.vcpu,
                    c.syscall_cycles + c.copy_cycles(bytes) + c.tcp_tx_cycles(bytes),
                    CpuCategory::GuestTcp,
                    bytes,
                ));
                if sriov_direct {
                    // SR-IOV VF: the NIC DMAs straight out of guest
                    // memory — no vhost, no host stack.
                } else {
                    // vhost: kick handling + guest->host vqueue copy
                    st.push(Stage::cpu(
                        snd.vhost,
                        c.vhost_kick_cycles,
                        CpuCategory::VhostNet,
                    ));
                    st.push(Stage::copy(
                        snd.vhost,
                        c.copy_cycles(bytes),
                        CpuCategory::CopyVirtioVqueue,
                        bytes,
                    ));
                    if self.inter_host {
                        st.push(Stage::cpu(
                            snd.vhost,
                            c.host_tcp_cycles(bytes),
                            CpuCategory::HostTcp,
                        ));
                    }
                }
            }
            Flavor::HostUser { thread, cat } => {
                st.push(Stage::copy(
                    thread,
                    c.syscall_cycles + c.copy_cycles(bytes) + c.host_tcp_cycles(bytes),
                    cat,
                    bytes,
                ));
            }
            Flavor::Rdma { thread } => {
                st.push(Stage::cpu(thread, c.rdma_post_cycles, CpuCategory::Rdma));
            }
        }

        // --- wire ---
        if self.inter_host {
            st.push(Stage::link(snd.nic, bytes));
        }

        // --- receiver side ---
        match rcv.flavor {
            Flavor::Guest(_) => {
                if sriov_direct {
                    // VF delivers into guest memory; only the interrupt
                    // (posted via the IOMMU) costs anything.
                    st.push(Stage::cpu(
                        rcv.vcpu,
                        c.irq_inject_cycles / 2,
                        CpuCategory::Other,
                    ));
                } else {
                    if self.inter_host {
                        st.push(Stage::cpu(
                            rcv.vhost,
                            c.host_tcp_cycles(bytes),
                            CpuCategory::HostTcp,
                        ));
                    }
                    // host->guest vqueue copy + interrupt injection
                    st.push(Stage::copy(
                        rcv.vhost,
                        c.copy_cycles(bytes),
                        CpuCategory::CopyVirtioVqueue,
                        bytes,
                    ));
                    st.push(Stage::cpu(
                        rcv.vhost,
                        c.irq_inject_cycles,
                        CpuCategory::VhostNet,
                    ));
                }
                // guest TCP rx + kernel->app copy
                st.push(Stage::cpu(
                    rcv.vcpu,
                    c.tcp_rx_cycles(bytes),
                    CpuCategory::GuestTcp,
                ));
                let app_cat = self.rx_copy_cat(to);
                st.push(Stage::copy(
                    rcv.vcpu,
                    c.syscall_cycles + c.copy_cycles(bytes),
                    app_cat,
                    bytes,
                ));
            }
            Flavor::HostUser { thread, cat } => {
                st.push(Stage::copy(
                    thread,
                    c.syscall_cycles + c.copy_cycles(bytes) + c.host_tcp_cycles(bytes),
                    cat,
                    bytes,
                ));
            }
            Flavor::Rdma { thread } => {
                st.push(Stage::cpu(thread, c.rdma_cqe_cycles, CpuCategory::Rdma));
            }
        }
        st
    }

    /// The category for the receiver's kernel→application copy: the paper
    /// charges it to the application ("client-application" in Fig 6a).
    fn rx_copy_cat(&self, side_ix: usize) -> CpuCategory {
        // Heuristic: side A is conventionally the client in our builders;
        // both get ClientApp unless the endpoint is the datanode VM, which
        // scenario code distinguishes by using DatanodeApp work of its own.
        let _ = side_ix;
        CpuCategory::ClientApp
    }

    fn pump(&mut self, side_ix: usize, ctx: &mut Ctx<'_>) {
        while self.dirs[side_ix].inflight < self.spec.window_chunks {
            let (chunk, span) = {
                let d = &mut self.dirs[side_ix];
                let Some(front) = d.to_send.front_mut() else {
                    break;
                };
                let take = front.bytes_left.min(self.spec.chunk_bytes).max(1);
                front.bytes_left -= take.min(front.bytes_left);
                let span = front.span;
                let exhausted = front.bytes_left == 0;
                if exhausted {
                    d.to_send.pop_front();
                }
                (take, span)
            };
            self.dirs[side_ix].inflight += 1;
            let stages = self.chunk_stages(side_ix, chunk);
            let me = ctx.me();
            ctx.chain_on(stages, me, ChunkDone { side_ix }, span);
        }
    }
}

impl Actor for Conn {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        let msg = match downcast::<ConnSend>(msg) {
            Ok(send) => {
                let six = send.dir.ix();
                let chunk = self.spec.chunk_bytes;
                let chunks = send.bytes.div_ceil(chunk).max(1);
                let d = &mut self.dirs[six];
                if !d.connected {
                    // Lazy three-way handshake: charged once per direction.
                    d.connected = true;
                    // Handshake CPU charged on both ends' primary threads.
                    let setup = self.costs.tcp_conn_setup_cycles;
                    if !matches!(self.ends[six].flavor, Flavor::Rdma { .. }) {
                        let me = ctx.me();
                        ctx.chain(
                            vec![
                                Stage::cpu(self.ends[six].vcpu, setup, CpuCategory::GuestTcp),
                                Stage::cpu(self.ends[1 - six].vcpu, setup, CpuCategory::GuestTcp),
                            ],
                            me,
                            (),
                        );
                    }
                }
                let d = &mut self.dirs[six];
                d.to_send.push_back(OutMsg {
                    bytes_left: send.bytes,
                    span: send.span,
                });
                d.arriving.push_back(InMsg {
                    tag: send.tag,
                    bytes: send.bytes,
                    chunks_left: chunks,
                    notify: send.notify,
                });
                self.pump(six, ctx);
                return;
            }
            Err(m) => m,
        };
        if let Ok(done) = downcast::<ChunkDone>(msg) {
            let six = done.side_ix;
            self.dirs[six].inflight -= 1;
            let mut deliver: Option<InMsg> = None;
            {
                let d = &mut self.dirs[six];
                if let Some(front) = d.arriving.front_mut() {
                    front.chunks_left -= 1;
                    if front.chunks_left == 0 {
                        deliver = d.arriving.pop_front();
                    }
                }
            }
            if let Some(m) = deliver {
                let me = ctx.me();
                let rcv_side = if six == 0 { Side::B } else { Side::A };
                ctx.send(
                    self.ends[1 - six].actor,
                    ConnRecv {
                        conn: me,
                        side: rcv_side,
                        bytes: m.bytes,
                        tag: m.tag,
                    },
                );
                if m.notify {
                    ctx.send(
                        self.ends[six].actor,
                        ConnSent {
                            conn: me,
                            tag: m.tag,
                        },
                    );
                }
            }
            self.pump(six, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_host::costs::Costs;
    use vread_host::with_cluster;

    struct Probe {
        echo: bool,
        recvd: Vec<(u64, u64)>, // (tag, bytes)
        acks: Vec<u64>,
    }

    impl Actor for Probe {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            let msg = match downcast::<ConnRecv>(msg) {
                Ok(r) => {
                    self.recvd.push((r.tag, r.bytes));
                    let ms = ctx.now().as_secs_f64() * 1e3;
                    ctx.metrics().sample("recv_ms", ms);
                    if self.echo {
                        ctx.send(
                            r.conn,
                            ConnSend {
                                dir: r.side,
                                bytes: r.bytes,
                                tag: r.tag,
                                notify: false,
                                span: SpanId::NONE,
                            },
                        );
                    }
                    return;
                }
                Err(m) => m,
            };
            if let Ok(s) = downcast::<ConnSent>(msg) {
                self.acks.push(s.tag);
            }
        }
    }

    fn two_vm_world() -> (World, VmId, VmId) {
        let mut w = World::new(7);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 3.2);
        let a = cl.add_vm(&mut w, h, "vmA");
        let b = cl.add_vm(&mut w, h, "vmB");
        w.ext.insert(cl);
        (w, a, b)
    }

    #[test]
    fn intra_host_delivery_and_categories() {
        let (mut w, vma, vmb) = two_vm_world();
        let pa = w.add_actor(
            "pa",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let pb = w.add_actor(
            "pb",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let conn = with_cluster(&mut w, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: pa,
                    flavor: Flavor::Guest(vma),
                },
                Endpoint {
                    actor: pb,
                    flavor: Flavor::Guest(vmb),
                },
                ConnSpec::default(),
            )
        });
        w.send_now(
            conn,
            ConnSend {
                dir: Side::A,
                bytes: 1 << 20,
                tag: 42,
                notify: true,
                span: SpanId::NONE,
            },
        );
        w.run();
        // delivered + acked
        let (vma_vhost, vmb_vhost) = {
            let cl = w.ext.get::<Cluster>().unwrap();
            (cl.vm(vma).vhost, cl.vm(vmb).vhost)
        };
        // vqueue copies charged on both vhost threads
        assert!(
            w.acct
                .cycles(vma_vhost.index(), CpuCategory::CopyVirtioVqueue)
                > 0.0
        );
        assert!(
            w.acct
                .cycles(vmb_vhost.index(), CpuCategory::CopyVirtioVqueue)
                > 0.0
        );
        // no physical-NIC TCP on the intra-host path
        assert_eq!(w.acct.cycles(vma_vhost.index(), CpuCategory::HostTcp), 0.0);
        assert_eq!(w.metrics.samples("recv_ms").unwrap().count(), 1);
    }

    #[test]
    fn receiver_sees_whole_message_once() {
        let (mut w, vma, vmb) = two_vm_world();
        struct Collect {
            got: std::rc::Rc<std::cell::RefCell<Vec<(u64, u64)>>>,
        }
        impl Actor for Collect {
            fn handle(&mut self, msg: BoxMsg, _ctx: &mut Ctx<'_>) {
                if let Ok(r) = downcast::<ConnRecv>(msg) {
                    self.got.borrow_mut().push((r.tag, r.bytes));
                }
            }
        }
        let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        let pa = w.add_actor("pa", Collect { got: got.clone() });
        let pb = w.add_actor("pb", Collect { got: got.clone() });
        let conn = with_cluster(&mut w, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: pa,
                    flavor: Flavor::Guest(vma),
                },
                Endpoint {
                    actor: pb,
                    flavor: Flavor::Guest(vmb),
                },
                ConnSpec::default(),
            )
        });
        // several messages, including one spanning many chunks
        for (tag, bytes) in [(1u64, 100u64), (2, 5 << 20), (3, 4096)] {
            w.send_now(
                conn,
                ConnSend {
                    dir: Side::A,
                    bytes,
                    tag,
                    notify: false,
                    span: SpanId::NONE,
                },
            );
        }
        w.run();
        assert_eq!(*got.borrow(), vec![(1, 100), (2, 5 << 20), (3, 4096)]);
    }

    #[test]
    fn rpc_round_trip_echo() {
        let (mut w, vma, vmb) = two_vm_world();
        let pa = w.add_actor(
            "pa",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let pb = w.add_actor(
            "pb",
            Probe {
                echo: true,
                recvd: vec![],
                acks: vec![],
            },
        );
        let conn = with_cluster(&mut w, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: pa,
                    flavor: Flavor::Guest(vma),
                },
                Endpoint {
                    actor: pb,
                    flavor: Flavor::Guest(vmb),
                },
                ConnSpec::default(),
            )
        });
        w.send_now(
            conn,
            ConnSend {
                dir: Side::A,
                bytes: 32 * 1024,
                tag: 9,
                notify: false,
                span: SpanId::NONE,
            },
        );
        w.run();
        // Two receive events: B got the request, A got the echo.
        assert_eq!(w.metrics.samples("recv_ms").unwrap().count(), 2);
        // An intra-host 32KB round trip completes within a few hundred us.
        let rtt = w.metrics.samples("recv_ms").unwrap().max();
        assert!(rtt < 0.5, "RTT {rtt}ms too slow for idle host");
    }

    #[test]
    fn inter_host_path_uses_link_and_host_tcp() {
        let mut w = World::new(7);
        let mut cl = Cluster::new(Costs::default());
        let h1 = cl.add_host(&mut w, "h1", 4, 3.2);
        let h2 = cl.add_host(&mut w, "h2", 4, 3.2);
        let vma = cl.add_vm(&mut w, h1, "vmA");
        let vmb = cl.add_vm(&mut w, h2, "vmB");
        let nic1 = cl.hosts[h1.0].nic;
        w.ext.insert(cl);
        let pa = w.add_actor(
            "pa",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let pb = w.add_actor(
            "pb",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let conn = with_cluster(&mut w, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: pa,
                    flavor: Flavor::Guest(vma),
                },
                Endpoint {
                    actor: pb,
                    flavor: Flavor::Guest(vmb),
                },
                ConnSpec::default(),
            )
        });
        w.send_now(
            conn,
            ConnSend {
                dir: Side::A,
                bytes: 1 << 20,
                tag: 1,
                notify: false,
                span: SpanId::NONE,
            },
        );
        w.run();
        assert!(
            w.link(nic1).bytes_total >= 1 << 20,
            "payload crossed the NIC"
        );
        let cl = w.ext.get::<Cluster>().unwrap();
        let vhost_a = cl.vm(vma).vhost;
        assert!(w.acct.cycles(vhost_a.index(), CpuCategory::HostTcp) > 0.0);
    }

    #[test]
    fn rdma_transfers_with_minimal_cpu() {
        let mut w = World::new(7);
        let mut cl = Cluster::new(Costs::default());
        let h1 = cl.add_host(&mut w, "h1", 4, 3.2);
        let h2 = cl.add_host(&mut w, "h2", 4, 3.2);
        let d1 = w.add_thread(cl.hosts[h1.0].host, "daemon1");
        let d2 = w.add_thread(cl.hosts[h2.0].host, "daemon2");
        w.ext.insert(cl);
        let pa = w.add_actor(
            "pa",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let pb = w.add_actor(
            "pb",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let conn = with_cluster(&mut w, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: pa,
                    flavor: Flavor::Rdma { thread: d1 },
                },
                Endpoint {
                    actor: pb,
                    flavor: Flavor::Rdma { thread: d2 },
                },
                ConnSpec::default(),
            )
        });
        w.send_now(
            conn,
            ConnSend {
                dir: Side::A,
                bytes: 16 << 20,
                tag: 5,
                notify: false,
                span: SpanId::NONE,
            },
        );
        w.run();
        // 16 MB over RDMA: tiny CPU (only per-WR costs, no per-byte work)
        let cpu = w.acct.total_cycles(d1.index()) + w.acct.total_cycles(d2.index());
        let per_byte = cpu / (16u64 << 20) as f64;
        assert!(per_byte < 0.05, "RDMA burned {per_byte} cyc/B");
        assert_eq!(w.metrics.samples("recv_ms").unwrap().count(), 1);
    }

    #[test]
    fn sriov_skips_vhost_on_inter_host_paths() {
        let mut w = World::new(7);
        let mut cl = Cluster::new(Costs::default());
        let h1 = cl.add_host(&mut w, "h1", 4, 3.2);
        let h2 = cl.add_host(&mut w, "h2", 4, 3.2);
        let vma = cl.add_vm(&mut w, h1, "vmA");
        let vmb = cl.add_vm(&mut w, h2, "vmB");
        w.ext.insert(cl);
        let pa = w.add_actor(
            "pa",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let pb = w.add_actor(
            "pb",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let conn = with_cluster(&mut w, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: pa,
                    flavor: Flavor::Guest(vma),
                },
                Endpoint {
                    actor: pb,
                    flavor: Flavor::Guest(vmb),
                },
                ConnSpec {
                    sriov: true,
                    ..Default::default()
                },
            )
        });
        w.send_now(
            conn,
            ConnSend {
                dir: Side::A,
                bytes: 4 << 20,
                tag: 1,
                notify: false,
                span: SpanId::NONE,
            },
        );
        w.run();
        let cl = w.ext.get::<Cluster>().unwrap();
        let (vhost_a, vhost_b, nic1) = (cl.vm(vma).vhost, cl.vm(vmb).vhost, cl.hosts[0].nic);
        // no vhost copies or host TCP on either side; payload still
        // crossed the physical link
        assert_eq!(
            w.acct
                .cycles(vhost_a.index(), CpuCategory::CopyVirtioVqueue),
            0.0
        );
        assert_eq!(
            w.acct
                .cycles(vhost_b.index(), CpuCategory::CopyVirtioVqueue),
            0.0
        );
        assert_eq!(w.acct.cycles(vhost_a.index(), CpuCategory::HostTcp), 0.0);
        assert!(w.link(nic1).bytes_total >= 4 << 20);
        assert_eq!(w.metrics.samples("recv_ms").unwrap().count(), 1);
    }

    #[test]
    fn sriov_does_not_change_the_intra_host_path() {
        let (mut w, vma, vmb) = two_vm_world();
        let pa = w.add_actor(
            "pa",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let pb = w.add_actor(
            "pb",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let conn = with_cluster(&mut w, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: pa,
                    flavor: Flavor::Guest(vma),
                },
                Endpoint {
                    actor: pb,
                    flavor: Flavor::Guest(vmb),
                },
                ConnSpec {
                    sriov: true,
                    ..Default::default()
                },
            )
        });
        w.send_now(
            conn,
            ConnSend {
                dir: Side::A,
                bytes: 1 << 20,
                tag: 1,
                notify: false,
                span: SpanId::NONE,
            },
        );
        w.run();
        // the paper's §6 point: device assignment does not help inter-VM
        // traffic on the same host — the vhost copies remain
        let cl = w.ext.get::<Cluster>().unwrap();
        let vhost_a = cl.vm(vma).vhost;
        assert!(
            w.acct
                .cycles(vhost_a.index(), CpuCategory::CopyVirtioVqueue)
                > 0.0
        );
    }

    #[test]
    fn window_limits_inflight_chunks() {
        let (mut w, vma, vmb) = two_vm_world();
        let pa = w.add_actor(
            "pa",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let pb = w.add_actor(
            "pb",
            Probe {
                echo: false,
                recvd: vec![],
                acks: vec![],
            },
        );
        let conn = with_cluster(&mut w, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: pa,
                    flavor: Flavor::Guest(vma),
                },
                Endpoint {
                    actor: pb,
                    flavor: Flavor::Guest(vmb),
                },
                ConnSpec {
                    window_chunks: 2,
                    chunk_bytes: 64 * 1024,
                    sriov: false,
                },
            )
        });
        w.send_now(
            conn,
            ConnSend {
                dir: Side::A,
                bytes: 10 << 20,
                tag: 1,
                notify: true,
                span: SpanId::NONE,
            },
        );
        // Run a tiny bit and check we didn't schedule all 160 chunks at once:
        // at most window(2) chains exist besides the handshake.
        w.run_for(SimDuration::from_micros(1));
        w.run();
        assert_eq!(w.metrics.samples("recv_ms").unwrap().count(), 1);
    }
}

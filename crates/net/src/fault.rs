//! Network fault actions: transient link degradation (the paper's RDMA
//! link flap).
//!
//! A flap is modelled as a bounded bandwidth divisor plus an additive
//! latency penalty for a fixed window, then full restoration — *not* as
//! bandwidth ≈ 0, because the link's free-at queueing would then push
//! completions (and the restore) absurdly far into the future instead of
//! dropping traffic. Retransmission/stall behaviour therefore emerges as
//! severe queueing delay, which is what the vRead client's timeout
//! machinery reacts to.

use vread_sim::fault::FaultAction;
use vread_sim::prelude::*;

/// Divides a link's bandwidth by `factor` and adds `extra_latency` for
/// `duration`, then restores both (a link flap / congestion window).
pub struct DegradeLink {
    /// Link to degrade.
    pub link: LinkId,
    /// Bandwidth divisor (> 1; bounded — see module docs).
    pub factor: f64,
    /// Additional propagation latency while degraded.
    pub extra_latency: SimDuration,
    /// How long the degradation lasts.
    pub duration: SimDuration,
}

impl FaultAction for DegradeLink {
    fn label(&self) -> &'static str {
        "fault_link_flap"
    }

    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)> {
        let link = ctx.world.link_mut(self.link);
        let saved_bw = link.bandwidth_bps;
        let saved_lat = link.latency;
        link.bandwidth_bps = saved_bw / self.factor.max(1.0);
        link.latency = saved_lat + self.extra_latency;
        Some((
            self.duration,
            Box::new(RestoreLink {
                link: self.link,
                bandwidth_bps: saved_bw,
                latency: saved_lat,
            }),
        ))
    }
}

/// Follow-up to [`DegradeLink`]: restore the saved parameters.
struct RestoreLink {
    link: LinkId,
    bandwidth_bps: f64,
    latency: SimDuration,
}

impl FaultAction for RestoreLink {
    fn label(&self) -> &'static str {
        "fault_link_restore"
    }

    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)> {
        let link = ctx.world.link_mut(self.link);
        link.bandwidth_bps = self.bandwidth_bps;
        link.latency = self.latency;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_sim::fault::schedule_faults;
    use vread_sim::resources::Link;
    use vread_sim::time::SimTime;

    #[test]
    fn degrade_then_restore() {
        let mut w = World::new(3);
        let link = w.add_link(Link::from_gbps(10.0, SimDuration::from_micros(30)));
        schedule_faults(
            &mut w,
            vec![(
                SimTime::ZERO + SimDuration::from_millis(5),
                Box::new(DegradeLink {
                    link,
                    factor: 100.0,
                    extra_latency: SimDuration::from_millis(2),
                    duration: SimDuration::from_millis(40),
                }) as Box<dyn FaultAction>,
            )],
        );
        w.run_until(SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(w.link(link).bandwidth_bps, 10.0 * 1e9 / 8.0 / 100.0);
        assert_eq!(w.link(link).latency, SimDuration::from_micros(2030));
        w.run();
        assert_eq!(w.link(link).bandwidth_bps, 10.0 * 1e9 / 8.0);
        assert_eq!(w.link(link).latency, SimDuration::from_micros(30));
    }
}

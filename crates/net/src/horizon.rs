//! Link-horizon export for the conservative parallel engine.
//!
//! A sharded run (see `vread_sim::par`) may only execute events up to
//! `min(next event) + lookahead` between barriers, where the lookahead is
//! the smallest delay any cross-shard interaction can incur. In this
//! codebase cross-host traffic travels exclusively over [`Link`]s, whose
//! one-way propagation `latency` is exactly that bound: nothing a shard
//! does at time `t` can affect a remote shard before `t + latency`. This
//! module computes the fleet-wide horizon from a set of inter-shard links.

use vread_sim::resources::Link;
use vread_sim::{LinkId, SimDuration, World};

/// The conservative lookahead granted by a set of inter-shard links: the
/// minimum one-way latency among them. Returns `None` for an empty set
/// (fully isolated shards — the engine then runs each shard to the cap in
/// a single window).
pub fn link_horizon<'a>(links: impl IntoIterator<Item = &'a Link>) -> Option<SimDuration> {
    links
        .into_iter()
        .map(Link::lookahead)
        .min()
        .filter(|la| *la > SimDuration::ZERO)
}

/// [`link_horizon`] over link ids resolved against a [`World`] — the
/// common case when a deploy plan knows which NIC links cross shard
/// boundaries.
pub fn world_horizon(w: &World, ids: &[LinkId]) -> Option<SimDuration> {
    link_horizon(ids.iter().map(|id| w.link(*id)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_is_min_latency() {
        let a = Link::from_gbps(10.0, SimDuration::from_micros(30));
        let b = Link::from_gbps(40.0, SimDuration::from_micros(5));
        assert_eq!(link_horizon([&a, &b]), Some(SimDuration::from_micros(5)));
        assert_eq!(link_horizon([]), None);
    }

    #[test]
    fn zero_latency_link_yields_no_horizon() {
        // A zero-latency link means the hosts are causally fused: no
        // positive lookahead exists and they must share a shard.
        let a = Link::from_gbps(10.0, SimDuration::ZERO);
        let b = Link::from_gbps(10.0, SimDuration::from_micros(30));
        assert_eq!(link_horizon([&a, &b]), None);
    }

    #[test]
    fn world_horizon_resolves_ids() {
        let mut w = World::new(1);
        let l1 = w.add_link(Link::from_gbps(10.0, SimDuration::from_micros(30)));
        let l2 = w.add_link(Link::from_gbps(10.0, SimDuration::from_micros(12)));
        assert_eq!(
            world_horizon(&w, &[l1, l2]),
            Some(SimDuration::from_micros(12))
        );
        assert_eq!(world_horizon(&w, &[]), None);
    }
}

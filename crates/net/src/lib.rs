//! # vread-net — the network substrate
//!
//! Models every transport the paper's evaluation exercises, as costed
//! stage chains over the [`vread_sim`] scheduler:
//!
//! * **guest TCP over virtio-net/vhost** between two VMs on one host —
//!   the vanilla HDFS inter-VM path of Figure 1, with the guest TCP stack
//!   work on each vCPU, the vqueue copies and kick/interrupt handling on
//!   each VM's vhost-net I/O thread;
//! * **guest TCP across hosts** — the same plus host kernel TCP processing
//!   and serialization on the 10 GbE link;
//! * **host user-space TCP** — the vRead daemon's TCP fallback (the
//!   paper's "vRead-net", measured in Figure 8);
//! * **RDMA verbs over RoCE** — zero-copy daemon↔daemon transfer with
//!   per-work-request CPU only (Figure 7).
//!
//! The central type is the [`conn::Conn`] actor: a bidirectional,
//! windowed, in-order byte stream between two [`conn::Endpoint`]s whose
//! [`conn::Flavor`] selects which stages a chunk traverses. Because the
//! stages run on real scheduler threads, connection throughput and latency
//! degrade under CPU contention exactly as in the paper's Figure 3.

#![forbid(unsafe_code)]

pub mod conn;
pub mod fault;
pub mod horizon;

pub use conn::{add_conn, Conn, ConnRecv, ConnSend, ConnSent, ConnSpec, Endpoint, Flavor, Side};
pub use fault::DegradeLink;
pub use horizon::{link_horizon, world_horizon};

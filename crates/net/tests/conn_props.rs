//! Additional connection tests: bidirectional traffic, mixed endpoints,
//! and property-based delivery exactness.

use proptest::prelude::*;
use vread_host::cluster::{Cluster, VmId};
use vread_host::costs::Costs;
use vread_host::with_cluster;
use vread_net::conn::{add_conn, ConnRecv, ConnSend, ConnSpec, Endpoint, Flavor, Side};
use vread_sim::prelude::*;

struct Collect {
    got: std::rc::Rc<std::cell::RefCell<Vec<(Side, u64, u64)>>>,
}
impl Actor for Collect {
    fn handle(&mut self, msg: BoxMsg, _ctx: &mut Ctx<'_>) {
        if let Ok(r) = downcast::<ConnRecv>(msg) {
            self.got.borrow_mut().push((r.side, r.tag, r.bytes));
        }
    }
}

fn world2() -> (World, VmId, VmId) {
    let mut w = World::new(5);
    let mut cl = Cluster::new(Costs::default());
    let h = cl.add_host(&mut w, "h", 4, 3.2);
    let a = cl.add_vm(&mut w, h, "a");
    let b = cl.add_vm(&mut w, h, "b");
    w.ext.insert(cl);
    (w, a, b)
}

#[test]
fn bidirectional_traffic_does_not_interfere() {
    let (mut w, vma, vmb) = world2();
    let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let pa = w.add_actor("pa", Collect { got: got.clone() });
    let pb = w.add_actor("pb", Collect { got: got.clone() });
    let conn = with_cluster(&mut w, |cl, w| {
        add_conn(
            w,
            cl,
            Endpoint {
                actor: pa,
                flavor: Flavor::Guest(vma),
            },
            Endpoint {
                actor: pb,
                flavor: Flavor::Guest(vmb),
            },
            ConnSpec::default(),
        )
    });
    // simultaneous full-duplex streams
    w.send_now(
        conn,
        ConnSend {
            dir: Side::A,
            bytes: 3 << 20,
            tag: 1,
            notify: false,
            span: SpanId::NONE,
        },
    );
    w.send_now(
        conn,
        ConnSend {
            dir: Side::B,
            bytes: 2 << 20,
            tag: 2,
            notify: false,
            span: SpanId::NONE,
        },
    );
    w.send_now(
        conn,
        ConnSend {
            dir: Side::A,
            bytes: 1 << 20,
            tag: 3,
            notify: false,
            span: SpanId::NONE,
        },
    );
    w.run();
    let got = got.borrow();
    // B received A's two messages in order; A received B's one
    let to_b: Vec<_> = got.iter().filter(|(s, ..)| *s == Side::B).collect();
    let to_a: Vec<_> = got.iter().filter(|(s, ..)| *s == Side::A).collect();
    assert_eq!(
        to_b.iter().map(|(_, t, b)| (*t, *b)).collect::<Vec<_>>(),
        vec![(1, 3 << 20), (3, 1 << 20)]
    );
    assert_eq!(
        to_a.iter().map(|(_, t, b)| (*t, *b)).collect::<Vec<_>>(),
        vec![(2, 2 << 20)]
    );
}

#[test]
fn guest_to_hostuser_endpoint_works() {
    let (mut w, vma, _) = world2();
    let host_id = w.ext.get::<Cluster>().unwrap().hosts[0].host;
    let host_thread = w.add_thread(host_id, "hostproc");
    let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let pa = w.add_actor("pa", Collect { got: got.clone() });
    let pb = w.add_actor("pb", Collect { got: got.clone() });
    let conn = with_cluster(&mut w, |cl, w| {
        add_conn(
            w,
            cl,
            Endpoint {
                actor: pa,
                flavor: Flavor::Guest(vma),
            },
            Endpoint {
                actor: pb,
                flavor: Flavor::HostUser {
                    thread: host_thread,
                    cat: CpuCategory::VreadNet,
                },
            },
            ConnSpec::default(),
        )
    });
    w.send_now(
        conn,
        ConnSend {
            dir: Side::A,
            bytes: 1 << 20,
            tag: 7,
            notify: false,
            span: SpanId::NONE,
        },
    );
    w.run();
    assert_eq!(got.borrow().len(), 1);
    assert!(w.acct.cycles(host_thread.index(), CpuCategory::VreadNet) > 0.0);
}

#[test]
fn handshake_charged_once_per_direction() {
    let (mut w, vma, vmb) = world2();
    let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let pa = w.add_actor("pa", Collect { got: got.clone() });
    let pb = w.add_actor("pb", Collect { got: got.clone() });
    let conn = with_cluster(&mut w, |cl, w| {
        add_conn(
            w,
            cl,
            Endpoint {
                actor: pa,
                flavor: Flavor::Guest(vma),
            },
            Endpoint {
                actor: pb,
                flavor: Flavor::Guest(vmb),
            },
            ConnSpec::default(),
        )
    });
    // 1-byte messages isolate fixed costs
    w.send_now(
        conn,
        ConnSend {
            dir: Side::A,
            bytes: 1,
            tag: 1,
            notify: false,
            span: SpanId::NONE,
        },
    );
    w.run();
    let (vcpu_a, setup) = {
        let cl = w.ext.get::<Cluster>().unwrap();
        (cl.vm(vma).vcpu, cl.costs.tcp_conn_setup_cycles as f64)
    };
    let after_first = w.acct.cycles(vcpu_a.index(), CpuCategory::GuestTcp);
    assert!(after_first >= setup, "first send pays the handshake");
    w.send_now(
        conn,
        ConnSend {
            dir: Side::A,
            bytes: 1,
            tag: 2,
            notify: false,
            span: SpanId::NONE,
        },
    );
    w.run();
    let after_second = w.acct.cycles(vcpu_a.index(), CpuCategory::GuestTcp);
    assert!(
        after_second - after_first < setup,
        "second send must not pay the handshake again"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of message sizes is delivered exactly, in order, with
    /// matching tags, under any window/chunk configuration.
    #[test]
    fn delivery_is_exact_and_ordered(
        sizes in proptest::collection::vec(1u64..6_000_000, 1..12),
        window in 1usize..12,
        chunk_kb in 16u64..512,
    ) {
        let (mut w, vma, vmb) = world2();
        let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        let pa = w.add_actor("pa", Collect { got: got.clone() });
        let pb = w.add_actor("pb", Collect { got: got.clone() });
        let conn = with_cluster(&mut w, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint { actor: pa, flavor: Flavor::Guest(vma) },
                Endpoint { actor: pb, flavor: Flavor::Guest(vmb) },
                ConnSpec { window_chunks: window, chunk_bytes: chunk_kb << 10, sriov: false },
            )
        });
        for (i, &bytes) in sizes.iter().enumerate() {
            w.send_now(conn, ConnSend { dir: Side::A, bytes, tag: i as u64, notify: false, span: SpanId::NONE });
        }
        w.run();
        let got = got.borrow();
        let received: Vec<(u64, u64)> = got.iter().map(|(_, t, b)| (*t, *b)).collect();
        let expected: Vec<(u64, u64)> =
            sizes.iter().enumerate().map(|(i, &b)| (i as u64, b)).collect();
        prop_assert_eq!(received, expected);
    }
}

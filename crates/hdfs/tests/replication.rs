//! Tests of the replicated write pipeline (HDFS-style datanode
//! forwarding).

use vread_hdfs::client::{add_client, DfsRead, DfsReadDone, DfsWrite, DfsWriteDone, VanillaPath};
use vread_hdfs::{deploy_hdfs, HdfsMeta};
use vread_host::cluster::{Cluster, VmId};
use vread_host::costs::Costs;
use vread_sim::prelude::*;

struct App {
    client: ActorId,
    wrote: bool,
    read_bytes: std::rc::Rc<std::cell::Cell<u64>>,
}

impl Actor for App {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        if msg.is::<Start>() {
            ctx.send(
                self.client,
                DfsWrite {
                    req: 1,
                    reply_to: me,
                    path: "/r".into(),
                    bytes: 5 << 20,
                },
            );
        } else if msg.is::<DfsWriteDone>() {
            self.wrote = true;
            ctx.send(
                self.client,
                DfsRead {
                    req: 2,
                    reply_to: me,
                    path: "/r".into(),
                    offset: 0,
                    len: 5 << 20,
                    pread: false,
                },
            );
        } else if let Ok(d) = downcast::<DfsReadDone>(msg) {
            self.read_bytes.set(d.bytes);
        }
    }
}

fn setup(replication: usize) -> (World, VmId, VmId, VmId) {
    let mut w = World::new(13);
    let mut cl = Cluster::new(Costs::default());
    let h1 = cl.add_host(&mut w, "h1", 4, 3.2);
    let h2 = cl.add_host(&mut w, "h2", 4, 3.2);
    let client_vm = cl.add_vm(&mut w, h1, "client");
    let dn1_vm = cl.add_vm(&mut w, h1, "dn1");
    let dn2_vm = cl.add_vm(&mut w, h2, "dn2");
    w.ext.insert(cl);
    deploy_hdfs(&mut w, client_vm, &[dn1_vm, dn2_vm]);
    let meta = w.ext.get_mut::<HdfsMeta>().unwrap();
    meta.replication = replication;
    meta.block_bytes = 2 << 20; // several blocks per write
    (w, client_vm, dn1_vm, dn2_vm)
}

fn run(replication: usize) -> (World, u64, VmId, VmId) {
    let (mut w, client_vm, dn1, dn2) = setup(replication);
    let client = add_client(&mut w, client_vm, Box::new(VanillaPath::new()));
    let read_bytes = std::rc::Rc::new(std::cell::Cell::new(0));
    let app = w.add_actor(
        "app",
        App {
            client,
            wrote: false,
            read_bytes: read_bytes.clone(),
        },
    );
    w.send_now(app, Start);
    w.run();
    let b = read_bytes.get();
    (w, b, dn1, dn2)
}

#[test]
fn replicated_write_lands_on_both_datanodes() {
    let (w, read_bytes, dn1, dn2) = run(2);
    assert_eq!(read_bytes, 5 << 20, "write-then-read roundtrip");
    let meta = w.ext.get::<HdfsMeta>().unwrap();
    let f = meta.file("/r").unwrap();
    assert_eq!(f.blocks.len(), 3);
    for b in &f.blocks {
        assert_eq!(b.replicas.len(), 2, "every block has two replicas");
        assert_ne!(b.replicas[0], b.replicas[1]);
    }
    // the block files physically exist on both datanode VMs, same size
    let cl = w.ext.get::<Cluster>().unwrap();
    for b in &f.blocks {
        for vm in [dn1, dn2] {
            let fs = &cl.vm(vm).fs;
            let file = fs
                .lookup(&b.block.path())
                .unwrap_or_else(|| panic!("replica of {:?} missing on {:?}", b.block, vm));
            assert_eq!(fs.size(file), b.len, "replica size mismatch");
        }
    }
}

#[test]
fn single_replica_write_stays_local() {
    let (w, read_bytes, dn1, dn2) = run(1);
    assert_eq!(read_bytes, 5 << 20);
    let meta = w.ext.get::<HdfsMeta>().unwrap();
    let f = meta.file("/r").unwrap();
    for b in &f.blocks {
        assert_eq!(b.replicas.len(), 1);
    }
    // with HVE on, everything lands on the co-located datanode
    let cl = w.ext.get::<Cluster>().unwrap();
    let fs2 = &cl.vm(dn2).fs;
    for b in &f.blocks {
        assert!(fs2.lookup(&b.block.path()).is_none(), "no stray replica");
        assert!(cl.vm(dn1).fs.lookup(&b.block.path()).is_some());
    }
}

#[test]
fn replication_crosses_the_physical_network() {
    let (w, _, _, _) = run(2);
    // pipeline traffic dn1 -> dn2 crossed host1's NIC
    let cl = w.ext.get::<Cluster>().unwrap();
    let nic1 = cl.hosts[0].nic;
    assert!(
        w.link(nic1).bytes_total >= 5 << 20,
        "forwarded replicas must traverse the LAN ({} bytes seen)",
        w.link(nic1).bytes_total
    );
}

#[test]
fn reads_can_use_either_replica() {
    let (mut w, _, _dn1, dn2) = run(2);
    // force reads to the second replica by disabling topology awareness
    // and reversing primaries
    {
        let meta = w.ext.get_mut::<HdfsMeta>().unwrap();
        meta.topology_aware = false;
        let paths: Vec<String> = meta.files.keys().cloned().collect();
        for p in paths {
            let fm = meta.files.get_mut(&p).unwrap();
            for b in &mut fm.blocks {
                b.replicas.reverse();
            }
        }
    }
    let client_vm = VmId(0);
    let client = add_client(&mut w, client_vm, Box::new(VanillaPath::new()));
    let read_bytes = std::rc::Rc::new(std::cell::Cell::new(0));
    struct Rd {
        client: ActorId,
        read_bytes: std::rc::Rc<std::cell::Cell<u64>>,
    }
    impl Actor for Rd {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() {
                let me = ctx.me();
                ctx.send(
                    self.client,
                    DfsRead {
                        req: 9,
                        reply_to: me,
                        path: "/r".into(),
                        offset: 0,
                        len: 5 << 20,
                        pread: false,
                    },
                );
            } else if let Ok(d) = downcast::<DfsReadDone>(msg) {
                self.read_bytes.set(d.bytes);
            }
        }
    }
    let app = w.add_actor(
        "rd",
        Rd {
            client,
            read_bytes: read_bytes.clone(),
        },
    );
    w.send_now(app, Start);
    w.run();
    assert_eq!(
        read_bytes.get(),
        5 << 20,
        "read served from the second replica"
    );
    // dn2's VM did datanode work this time
    let cl = w.ext.get::<Cluster>().unwrap();
    let dn2_vcpu = cl.vm(dn2).vcpu;
    assert!(w.acct.cycles(dn2_vcpu.index(), CpuCategory::DatanodeApp) > 0.0);
}

//! End-to-end tests of the vanilla HDFS data path on the simulated
//! virtualization stack.

use vread_hdfs::client::{add_client, DfsRead, DfsReadDone, DfsWrite, DfsWriteDone, VanillaPath};
use vread_hdfs::populate::{populate_file, warm_file, Placement};
use vread_hdfs::{deploy_hdfs, DatanodeIx, HdfsMeta};
use vread_host::cluster::{Cluster, VmId};
use vread_host::costs::Costs;
use vread_sim::prelude::*;

/// A test harness app: fires DFS requests and records completions.
struct App {
    client: ActorId,
    script: Vec<Req>,
    next: usize,
    done: std::rc::Rc<std::cell::RefCell<Vec<(u64, u64, f64)>>>, // (req, bytes, ms)
    issued_at: SimTime,
}

#[derive(Clone)]
enum Req {
    Read { path: String, offset: u64, len: u64 },
    Write { path: String, bytes: u64 },
}

impl App {
    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        if self.next >= self.script.len() {
            return;
        }
        self.issued_at = ctx.now();
        let me = ctx.me();
        let req = self.next as u64;
        match self.script[self.next].clone() {
            Req::Read { path, offset, len } => ctx.send(
                self.client,
                DfsRead {
                    req,
                    reply_to: me,
                    path,
                    offset,
                    len,
                    pread: false,
                },
            ),
            Req::Write { path, bytes } => ctx.send(
                self.client,
                DfsWrite {
                    req,
                    reply_to: me,
                    path,
                    bytes,
                },
            ),
        }
        self.next += 1;
    }
}

impl Actor for App {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            self.issue(ctx);
            return;
        }
        let msg = match downcast::<DfsReadDone>(msg) {
            Ok(d) => {
                let ms = ctx.now().since(self.issued_at).as_millis_f64();
                self.done.borrow_mut().push((d.req, d.bytes, ms));
                self.issue(ctx);
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = downcast::<DfsWriteDone>(msg) {
            let ms = ctx.now().since(self.issued_at).as_millis_f64();
            self.done.borrow_mut().push((d.req, 0, ms));
            self.issue(ctx);
        }
    }
}

struct TestBed {
    w: World,
    client_vm: VmId,
    dn_local: DatanodeIx,
    dn_remote: DatanodeIx,
}

fn testbed(block_mb: u64) -> TestBed {
    let mut w = World::new(11);
    let mut cl = Cluster::new(Costs::default());
    let h1 = cl.add_host(&mut w, "host1", 4, 3.2);
    let h2 = cl.add_host(&mut w, "host2", 4, 3.2);
    let client_vm = cl.add_vm(&mut w, h1, "client");
    let dn1_vm = cl.add_vm(&mut w, h1, "datanode1");
    let dn2_vm = cl.add_vm(&mut w, h2, "datanode2");
    w.ext.insert(cl);
    let (_nn, dns) = deploy_hdfs(&mut w, client_vm, &[dn1_vm, dn2_vm]);
    w.ext.get_mut::<HdfsMeta>().unwrap().block_bytes = block_mb * 1024 * 1024;
    TestBed {
        w,
        client_vm,
        dn_local: dns[0],
        dn_remote: dns[1],
    }
}

fn run_script(tb: &mut TestBed, script: Vec<Req>) -> Vec<(u64, u64, f64)> {
    let done = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
    let client = add_client(&mut tb.w, tb.client_vm, Box::new(VanillaPath::new()));
    let app = tb.w.add_actor(
        "app",
        App {
            client,
            script,
            next: 0,
            done: done.clone(),
            issued_at: SimTime::ZERO,
        },
    );
    tb.w.send_now(app, Start);
    tb.w.run();
    let out = done.borrow().clone();
    out
}

#[test]
fn colocated_read_delivers_exact_bytes() {
    let mut tb = testbed(64);
    populate_file(&mut tb.w, "/f", 8 << 20, &Placement::One(tb.dn_local));
    let done = run_script(
        &mut tb,
        vec![Req::Read {
            path: "/f".into(),
            offset: 0,
            len: 8 << 20,
        }],
    );
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1, 8 << 20);
    assert!(done[0].2 > 0.0);
}

#[test]
fn read_beyond_eof_truncates() {
    let mut tb = testbed(64);
    populate_file(&mut tb.w, "/f", 1 << 20, &Placement::One(tb.dn_local));
    let done = run_script(
        &mut tb,
        vec![Req::Read {
            path: "/f".into(),
            offset: 512 << 10,
            len: 10 << 20,
        }],
    );
    assert_eq!(done[0].1, 512 << 10);
}

#[test]
fn missing_file_reads_zero_bytes() {
    let mut tb = testbed(64);
    let done = run_script(
        &mut tb,
        vec![Req::Read {
            path: "/nope".into(),
            offset: 0,
            len: 1024,
        }],
    );
    assert_eq!(done[0].1, 0);
}

#[test]
fn read_spans_multiple_blocks_and_datanodes() {
    let mut tb = testbed(1); // 1 MB blocks
    populate_file(
        &mut tb.w,
        "/f",
        4 << 20,
        &Placement::RoundRobin(vec![tb.dn_local, tb.dn_remote]),
    );
    // read [0.5MB, 3.5MB): touches blocks 0..=3 on both datanodes
    let done = run_script(
        &mut tb,
        vec![Req::Read {
            path: "/f".into(),
            offset: 512 << 10,
            len: 3 << 20,
        }],
    );
    assert_eq!(done[0].1, 3 << 20);
}

#[test]
fn reread_is_faster_than_cold_read() {
    let mut tb = testbed(64);
    populate_file(&mut tb.w, "/f", 16 << 20, &Placement::One(tb.dn_local));
    let done = run_script(
        &mut tb,
        vec![
            Req::Read {
                path: "/f".into(),
                offset: 0,
                len: 16 << 20,
            },
            Req::Read {
                path: "/f".into(),
                offset: 0,
                len: 16 << 20,
            },
        ],
    );
    let cold = done[0].2;
    let warm = done[1].2;
    assert!(
        warm < cold * 0.8,
        "re-read ({warm}ms) should beat cold read ({cold}ms)"
    );
}

#[test]
fn warmed_file_reads_like_reread() {
    let mut tb = testbed(64);
    populate_file(&mut tb.w, "/f", 16 << 20, &Placement::One(tb.dn_local));
    warm_file(&mut tb.w, "/f");
    let done = run_script(
        &mut tb,
        vec![Req::Read {
            path: "/f".into(),
            offset: 0,
            len: 16 << 20,
        }],
    );
    // 16MB from guest cache: no disk time at all; at 300MB/s the disk
    // alone would need ~53ms
    assert!(done[0].2 < 53.0, "warm read took {}ms", done[0].2);
}

#[test]
fn remote_read_slower_than_colocated() {
    let mut tb = testbed(64);
    populate_file(&mut tb.w, "/local", 8 << 20, &Placement::One(tb.dn_local));
    populate_file(&mut tb.w, "/remote", 8 << 20, &Placement::One(tb.dn_remote));
    let done = run_script(
        &mut tb,
        vec![
            Req::Read {
                path: "/local".into(),
                offset: 0,
                len: 8 << 20,
            },
            Req::Read {
                path: "/remote".into(),
                offset: 0,
                len: 8 << 20,
            },
        ],
    );
    assert!(
        done[1].2 > done[0].2,
        "remote ({}ms) should be slower than co-located ({}ms)",
        done[1].2,
        done[0].2
    );
}

#[test]
fn write_then_read_roundtrip() {
    let mut tb = testbed(1); // 1 MB blocks => the write spans 5 blocks
    let done = run_script(
        &mut tb,
        vec![
            Req::Write {
                path: "/out".into(),
                bytes: (4 << 20) + 123,
            },
            Req::Read {
                path: "/out".into(),
                offset: 0,
                len: 8 << 20,
            },
        ],
    );
    assert_eq!(done.len(), 2);
    // the read sees everything the write produced
    assert_eq!(done[1].1, (4 << 20) + 123);
    // metadata matches
    let meta = tb.w.ext.get::<HdfsMeta>().unwrap();
    assert_eq!(meta.file("/out").unwrap().size(), (4 << 20) + 123);
    assert_eq!(meta.file("/out").unwrap().blocks.len(), 5);
}

#[test]
fn topology_aware_write_lands_on_colocated_datanode() {
    let mut tb = testbed(1);
    let _ = run_script(
        &mut tb,
        vec![Req::Write {
            path: "/out".into(),
            bytes: 3 << 20,
        }],
    );
    let meta = tb.w.ext.get::<HdfsMeta>().unwrap();
    for b in &meta.file("/out").unwrap().blocks {
        assert_eq!(
            b.replicas[0], tb.dn_local,
            "HVE placement prefers co-located"
        );
    }
}

#[test]
fn vanilla_read_charges_expected_categories() {
    let mut tb = testbed(64);
    populate_file(&mut tb.w, "/f", 4 << 20, &Placement::One(tb.dn_local));
    let _ = run_script(
        &mut tb,
        vec![Req::Read {
            path: "/f".into(),
            offset: 0,
            len: 4 << 20,
        }],
    );
    let (client_vcpu, dn_vcpu, dn_vhost) = {
        let cl = tb.w.ext.get::<Cluster>().unwrap();
        let meta = tb.w.ext.get::<HdfsMeta>().unwrap();
        let dn_vm = meta.datanodes[tb.dn_local.0].vm;
        (
            cl.vm(tb.client_vm).vcpu,
            cl.vm(dn_vm).vcpu,
            cl.vm(dn_vm).vhost,
        )
    };
    let a = &tb.w.acct;
    assert!(a.cycles(client_vcpu.index(), CpuCategory::ClientApp) > 0.0);
    assert!(a.cycles(client_vcpu.index(), CpuCategory::GuestTcp) > 0.0);
    assert!(a.cycles(dn_vcpu.index(), CpuCategory::DatanodeApp) > 0.0);
    assert!(a.cycles(dn_vhost.index(), CpuCategory::CopyVirtioVqueue) > 0.0);
    assert!(a.cycles(dn_vcpu.index(), CpuCategory::DiskRead) > 0.0);
    // no vRead machinery on the vanilla path
    assert_eq!(
        a.cycles(client_vcpu.index(), CpuCategory::CopyVreadBuffer),
        0.0
    );
}

//! Fault injection: datanode crashes and client failover.

use vread_hdfs::client::{add_client, DfsRead, DfsReadDone, VanillaPath};
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::{deploy_hdfs, HdfsMeta};
use vread_host::cluster::{Cluster, VmId};
use vread_host::costs::Costs;
use vread_sim::prelude::*;

struct Rd {
    client: ActorId,
    len: u64,
    got: std::rc::Rc<std::cell::Cell<u64>>,
}
impl Actor for Rd {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let me = ctx.me();
            ctx.send(
                self.client,
                DfsRead {
                    req: 1,
                    reply_to: me,
                    path: "/f".into(),
                    offset: 0,
                    len: self.len,
                    pread: false,
                },
            );
        } else if let Ok(d) = downcast::<DfsReadDone>(msg) {
            self.got.set(d.bytes);
        }
    }
}

fn bed() -> (World, VmId, ActorId, ActorId) {
    let mut w = World::new(31);
    let mut cl = Cluster::new(Costs::default());
    let h1 = cl.add_host(&mut w, "h1", 4, 3.2);
    let h2 = cl.add_host(&mut w, "h2", 4, 3.2);
    let client_vm = cl.add_vm(&mut w, h1, "client");
    let dn1_vm = cl.add_vm(&mut w, h1, "dn1");
    let dn2_vm = cl.add_vm(&mut w, h2, "dn2");
    w.ext.insert(cl);
    deploy_hdfs(&mut w, client_vm, &[dn1_vm, dn2_vm]);
    let meta = w.ext.get::<HdfsMeta>().unwrap();
    let (a1, a2) = (meta.datanodes[0].actor, meta.datanodes[1].actor);
    (w, client_vm, a1, a2)
}

fn read(w: &mut World, client_vm: VmId, len: u64) -> u64 {
    let client = add_client(w, client_vm, Box::new(VanillaPath::new()));
    let got = std::rc::Rc::new(std::cell::Cell::new(u64::MAX));
    let a = w.add_actor(
        "rd",
        Rd {
            client,
            len,
            got: got.clone(),
        },
    );
    w.send_now(a, Start);
    w.run();
    got.get()
}

#[test]
fn crashed_primary_fails_over_to_replica() {
    let (mut w, client_vm, dn1_actor, _) = bed();
    // both datanodes hold the data
    populate_file(
        &mut w,
        "/f",
        8 << 20,
        &Placement::Replicated(vec![vread_hdfs::DatanodeIx(0), vread_hdfs::DatanodeIx(1)]),
    );
    // kill the co-located (preferred) datanode before the read
    w.remove_actor(dn1_actor);
    let got = read(&mut w, client_vm, 8 << 20);
    assert_eq!(got, 8 << 20, "read served by the surviving replica");
    assert!(
        w.metrics.counter("dfs_read_failovers") >= 1.0,
        "the dead primary triggered a failover"
    );
}

#[test]
fn crash_with_no_replica_returns_partial() {
    let (mut w, client_vm, dn1_actor, _) = bed();
    populate_file(
        &mut w,
        "/f",
        4 << 20,
        &Placement::One(vread_hdfs::DatanodeIx(0)),
    );
    w.remove_actor(dn1_actor);
    let got = read(&mut w, client_vm, 4 << 20);
    // all replicas exhausted: the read completes with what arrived (0)
    assert_eq!(got, 0, "unreachable data yields an empty read, not a hang");
    assert!(w.metrics.counter("dfs_read_failovers") >= 1.0);
}

#[test]
fn healthy_cluster_never_fails_over() {
    let (mut w, client_vm, _, _) = bed();
    populate_file(
        &mut w,
        "/f",
        8 << 20,
        &Placement::Replicated(vec![vread_hdfs::DatanodeIx(0), vread_hdfs::DatanodeIx(1)]),
    );
    let got = read(&mut w, client_vm, 8 << 20);
    assert_eq!(got, 8 << 20);
    assert_eq!(w.metrics.counter("dfs_read_failovers"), 0.0);
}

#[test]
fn mid_stream_crash_recovers_remaining_blocks() {
    let (mut w, client_vm, dn1_actor, _) = bed();
    {
        let meta = w.ext.get_mut::<HdfsMeta>().unwrap();
        meta.block_bytes = 2 << 20;
    }
    populate_file(
        &mut w,
        "/f",
        8 << 20,
        &Placement::Replicated(vec![vread_hdfs::DatanodeIx(0), vread_hdfs::DatanodeIx(1)]),
    );
    let client = add_client(&mut w, client_vm, Box::new(VanillaPath::new()));
    let got = std::rc::Rc::new(std::cell::Cell::new(u64::MAX));
    let a = w.add_actor(
        "rd",
        Rd {
            client,
            len: 8 << 20,
            got: got.clone(),
        },
    );
    w.send_now(a, Start);
    // let the first block stream, then crash the primary
    w.run_until(SimTime::from_nanos(8_000_000));
    w.remove_actor(dn1_actor);
    w.run();
    assert_eq!(got.get(), 8 << 20, "later blocks served by the replica");
    assert!(w.metrics.counter("dfs_read_failovers") >= 1.0);
}

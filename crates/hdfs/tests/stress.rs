//! Stress: concurrent readers and writers over a replicated cluster —
//! exactness and determinism under heavy interleaving.

use vread_hdfs::client::{add_client, DfsRead, DfsReadDone, DfsWrite, DfsWriteDone, VanillaPath};
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::{deploy_hdfs, DatanodeIx, HdfsMeta};
use vread_host::cluster::Cluster;
use vread_host::costs::Costs;
use vread_sim::prelude::*;

/// A looping reader that scans its file `laps` times.
struct LoopReader {
    client: ActorId,
    path: String,
    len: u64,
    laps: u32,
    done_laps: std::rc::Rc<std::cell::Cell<u32>>,
    total: std::rc::Rc<std::cell::Cell<u64>>,
}
impl Actor for LoopReader {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        match downcast::<DfsReadDone>(msg) {
            Ok(d) => {
                self.total.set(self.total.get() + d.bytes);
                self.done_laps.set(self.done_laps.get() + 1);
            }
            Err(m) => {
                if !m.is::<Start>() {
                    return;
                }
            }
        }
        if self.done_laps.get() >= self.laps {
            return;
        }
        let me = ctx.me();
        ctx.send(
            self.client,
            DfsRead {
                req: self.done_laps.get() as u64,
                reply_to: me,
                path: self.path.clone(),
                offset: 0,
                len: self.len,
                pread: false,
            },
        );
    }
}

/// A writer producing several files back to back.
struct LoopWriter {
    client: ActorId,
    files: u32,
    bytes: u64,
    written: std::rc::Rc<std::cell::Cell<u32>>,
}
impl Actor for LoopWriter {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        match downcast::<DfsWriteDone>(msg) {
            Ok(_) => self.written.set(self.written.get() + 1),
            Err(m) => {
                if !m.is::<Start>() {
                    return;
                }
            }
        }
        let n = self.written.get();
        if n >= self.files {
            return;
        }
        let me = ctx.me();
        ctx.send(
            self.client,
            DfsWrite {
                req: n as u64,
                reply_to: me,
                path: format!("/w/{n}"),
                bytes: self.bytes,
            },
        );
    }
}

fn run_stress(seed: u64) -> (u64, u32, u64, SimTime) {
    let mut w = World::new(seed);
    let mut cl = Cluster::new(Costs::default());
    let h1 = cl.add_host(&mut w, "h1", 4, 3.2);
    let h2 = cl.add_host(&mut w, "h2", 4, 3.2);
    let cvm1 = cl.add_vm(&mut w, h1, "client1");
    let cvm2 = cl.add_vm(&mut w, h2, "client2");
    let dn1 = cl.add_vm(&mut w, h1, "dn1");
    let dn2 = cl.add_vm(&mut w, h2, "dn2");
    w.ext.insert(cl);
    deploy_hdfs(&mut w, cvm1, &[dn1, dn2]);
    {
        let meta = w.ext.get_mut::<HdfsMeta>().unwrap();
        meta.replication = 2;
        meta.block_bytes = 4 << 20;
    }
    populate_file(
        &mut w,
        "/shared",
        12 << 20,
        &Placement::Replicated(vec![DatanodeIx(0), DatanodeIx(1)]),
    );

    let read_total = std::rc::Rc::new(std::cell::Cell::new(0u64));
    // three readers across two client VMs
    for (i, vm) in [cvm1, cvm2, cvm1].iter().enumerate() {
        let client = add_client(&mut w, *vm, Box::new(VanillaPath::new()));
        let laps = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let r = LoopReader {
            client,
            path: "/shared".into(),
            len: 12 << 20,
            laps: 3,
            done_laps: laps.clone(),
            total: read_total.clone(),
        };
        let _ = laps;
        let a = w.add_actor(&format!("reader{i}"), r);
        w.send_now(a, Start);
    }
    // one writer on client2
    let wr_client = add_client(&mut w, cvm2, Box::new(VanillaPath::new()));
    let written = std::rc::Rc::new(std::cell::Cell::new(0u32));
    let wr = LoopWriter {
        client: wr_client,
        files: 4,
        bytes: 6 << 20,
        written: written.clone(),
    };
    let a = w.add_actor("writer", wr);
    w.send_now(a, Start);

    w.run();
    let meta = w.ext.get::<HdfsMeta>().unwrap();
    let written_bytes: u64 = (0..4)
        .map(|n| meta.file(&format!("/w/{n}")).map_or(0, |f| f.size()))
        .sum();
    (read_total.get(), written.get(), written_bytes, w.now())
}

#[test]
fn concurrent_readers_and_writers_are_exact() {
    let (read_total, files_written, written_bytes, _) = run_stress(97);
    assert_eq!(read_total, 3 * 3 * (12 << 20), "3 readers x 3 laps x 12MB");
    assert_eq!(files_written, 4);
    assert_eq!(written_bytes, 4 * (6 << 20));
}

#[test]
fn stress_is_deterministic() {
    assert_eq!(run_stress(123), run_stress(123));
}

#[test]
fn different_seeds_still_exact() {
    for seed in [1, 2, 3] {
        let (read_total, files, bytes, _) = run_stress(seed);
        assert_eq!(read_total, 3 * 3 * (12 << 20), "seed {seed}");
        assert_eq!((files, bytes), (4, 4 * (6 << 20)), "seed {seed}");
    }
}

#[test]
fn written_replicas_exist_on_both_datanodes() {
    let mut w = World::new(5);
    let mut cl = Cluster::new(Costs::default());
    let h1 = cl.add_host(&mut w, "h1", 4, 3.2);
    let h2 = cl.add_host(&mut w, "h2", 4, 3.2);
    let cvm = cl.add_vm(&mut w, h1, "client");
    let dn1 = cl.add_vm(&mut w, h1, "dn1");
    let dn2 = cl.add_vm(&mut w, h2, "dn2");
    w.ext.insert(cl);
    deploy_hdfs(&mut w, cvm, &[dn1, dn2]);
    w.ext.get_mut::<HdfsMeta>().unwrap().replication = 2;
    let client = add_client(&mut w, cvm, Box::new(VanillaPath::new()));
    let written = std::rc::Rc::new(std::cell::Cell::new(0u32));
    let a = w.add_actor(
        "writer",
        LoopWriter {
            client,
            files: 2,
            bytes: 3 << 20,
            written: written.clone(),
        },
    );
    w.send_now(a, Start);
    w.run();
    assert_eq!(written.get(), 2);
    let meta = w.ext.get::<HdfsMeta>().unwrap();
    let cl = w.ext.get::<Cluster>().unwrap();
    for n in 0..2 {
        for b in &meta.file(&format!("/w/{n}")).unwrap().blocks {
            assert_eq!(b.replicas.len(), 2);
            for &dn in &b.replicas {
                let vm = meta.datanodes[dn.0].vm;
                assert!(
                    cl.vm(vm).fs.lookup(&b.block.path()).is_some(),
                    "replica file present on {:?}",
                    vm
                );
            }
        }
    }
}

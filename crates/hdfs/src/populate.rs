//! Direct data layout for experiments: create HDFS files on datanodes
//! without simulating the ingest.
//!
//! The paper's read experiments pre-load 1–5 GB of data and control
//! exactly which datanode holds it (co-located, remote, or a hybrid mix).
//! [`populate_file`] writes block files straight into the datanode VMs'
//! filesystems and registers the metadata, optionally warming the page
//! caches (for re-read experiments the harness instead performs a first
//! read pass, which warms caches the same way the paper does).

use vread_host::cluster::Cluster;
use vread_host::store::{BlockStore, ContentId};
use vread_sim::prelude::*;

use crate::meta::{DatanodeIx, HdfsMeta, LocatedBlock};

/// Which datanode gets each block of a populated file.
#[derive(Debug, Clone)]
pub enum Placement {
    /// All blocks on one datanode.
    One(DatanodeIx),
    /// Blocks alternate round-robin over the listed datanodes (the
    /// paper's *hybrid* scenario with a co-located and a remote datanode).
    RoundRobin(Vec<DatanodeIx>),
    /// Every block is replicated on all listed datanodes; the primary
    /// rotates (for replica-choice / HVE experiments).
    Replicated(Vec<DatanodeIx>),
}

impl Placement {
    fn replicas(&self, block_index: usize) -> Vec<DatanodeIx> {
        match self {
            Placement::One(d) => vec![*d],
            Placement::RoundRobin(ds) => vec![ds[block_index % ds.len()]],
            Placement::Replicated(ds) => {
                let mut v = ds.clone();
                v.rotate_left(block_index % ds.len());
                v
            }
        }
    }
}

/// Creates `path` with `bytes` of data placed per `placement`, directly
/// materializing block files on the datanode VMs and the metadata in
/// [`HdfsMeta`]. Caches are *not* warmed.
///
/// # Panics
///
/// Panics if the cluster/metadata extensions are missing or a datanode
/// index is unknown.
pub fn populate_file(w: &mut World, path: &str, bytes: u64, placement: &Placement) {
    let mut cl = w.ext.remove::<Cluster>().expect("Cluster not installed");
    let mut meta = w.ext.remove::<HdfsMeta>().expect("HdfsMeta not installed");

    let block_size = meta.block_bytes;
    let mut off = 0u64;
    let mut index = 0usize;
    while off < bytes {
        let len = block_size.min(bytes - off);
        let replicas = placement.replicas(index);
        let block = meta.alloc_block();
        // Replicas of one block are byte-identical on every datanode, so
        // the block path names their shared content; binding each
        // replica's extents lets a content-addressed host store dedup
        // them (an LRU store ignores the bindings).
        let content = ContentId::from_path(&block.path());
        for &dn in &replicas {
            let vm = meta.datanodes[dn.0].vm;
            let fs = &mut cl.vm_mut(vm).fs;
            let file = fs.create(&block.path()).expect("fresh block path collided");
            fs.append(file, len);
            let extents = fs.resolve(file, 0, len).expect("fresh block resolves");
            let mut coff = 0u64;
            for e in extents {
                cl.bind_content(vm, e.image_offset, e.len, content, coff);
                coff += e.len;
            }
        }
        meta.add_block(
            path,
            LocatedBlock {
                block,
                offset: off,
                len,
                replicas,
            },
        );
        off += len;
        index += 1;
    }

    w.ext.insert(cl);
    w.ext.insert(meta);
}

/// Warms every cache along the read path for `path` (guest cache of each
/// holding datanode VM and its host's page cache), as if the file had
/// just been read.
///
/// # Panics
///
/// Panics if the file is unknown.
pub fn warm_file(w: &mut World, path: &str) {
    let mut cl = w.ext.remove::<Cluster>().expect("Cluster not installed");
    let meta = w.ext.remove::<HdfsMeta>().expect("HdfsMeta not installed");
    let file = meta.file(path).expect("unknown file");
    for lb in &file.blocks {
        for &dn in &lb.replicas {
            let vm = meta.datanodes[dn.0].vm;
            let (obj, extents) = {
                let fs = &cl.vm(vm).fs;
                let f = fs.lookup(&lb.block.path()).expect("block file missing");
                (fs.image(), fs.resolve(f, 0, lb.len).expect("block intact"))
            };
            let host = cl.vm(vm).host;
            for e in &extents {
                cl.vm_mut(vm).cache.admit(obj, e.image_offset, e.len);
                cl.hosts[host.0].cache.admit(obj, e.image_offset, e.len);
            }
        }
    }
    w.ext.insert(cl);
    w.ext.insert(meta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datanode::add_datanode;
    use crate::namenode::add_namenode;
    use vread_host::costs::Costs;

    #[test]
    fn populate_creates_blocks_and_metadata() {
        let mut w = World::new(5);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let client_vm = cl.add_vm(&mut w, h, "client");
        let dn_vm = cl.add_vm(&mut w, h, "dn");
        w.ext.insert(cl);
        let mut meta = HdfsMeta::new();
        meta.namenode_vm = Some(client_vm);
        meta.block_bytes = 1 << 20; // 1 MB blocks for the test
        w.ext.insert(meta);
        add_namenode(&mut w);
        let (_, dn) = add_datanode(&mut w, dn_vm);

        populate_file(&mut w, "/data/f1", (3 << 20) + 100, &Placement::One(dn));

        let meta = w.ext.get::<HdfsMeta>().unwrap();
        let f = meta.file("/data/f1").unwrap();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.size(), (3 << 20) + 100);
        assert_eq!(f.blocks[3].len, 100);
        // block files exist on the datanode VM
        let cl = w.ext.get::<Cluster>().unwrap();
        for lb in &f.blocks {
            let fs = &cl.vm(dn_vm).fs;
            let file = fs.lookup(&lb.block.path()).expect("block file");
            assert_eq!(fs.size(file), lb.len);
        }
    }

    #[test]
    fn round_robin_alternates_datanodes() {
        let mut w = World::new(5);
        let mut cl = Cluster::new(Costs::default());
        let h1 = cl.add_host(&mut w, "h1", 4, 2.0);
        let h2 = cl.add_host(&mut w, "h2", 4, 2.0);
        let client_vm = cl.add_vm(&mut w, h1, "client");
        let dn1_vm = cl.add_vm(&mut w, h1, "dn1");
        let dn2_vm = cl.add_vm(&mut w, h2, "dn2");
        w.ext.insert(cl);
        let mut meta = HdfsMeta::new();
        meta.namenode_vm = Some(client_vm);
        meta.block_bytes = 1 << 20;
        w.ext.insert(meta);
        add_namenode(&mut w);
        let (_, d1) = add_datanode(&mut w, dn1_vm);
        let (_, d2) = add_datanode(&mut w, dn2_vm);

        populate_file(&mut w, "/f", 4 << 20, &Placement::RoundRobin(vec![d1, d2]));
        let meta = w.ext.get::<HdfsMeta>().unwrap();
        let f = meta.file("/f").unwrap();
        let dns: Vec<usize> = f.blocks.iter().map(|b| b.replicas[0].0).collect();
        assert_eq!(dns, vec![0, 1, 0, 1]);
    }

    #[test]
    fn warm_file_fills_caches() {
        let mut w = World::new(5);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let client_vm = cl.add_vm(&mut w, h, "client");
        let dn_vm = cl.add_vm(&mut w, h, "dn");
        w.ext.insert(cl);
        let mut meta = HdfsMeta::new();
        meta.namenode_vm = Some(client_vm);
        w.ext.insert(meta);
        add_namenode(&mut w);
        let (_, dn) = add_datanode(&mut w, dn_vm);
        populate_file(&mut w, "/f", 1 << 20, &Placement::One(dn));
        warm_file(&mut w, "/f");
        let cl = w.ext.get::<Cluster>().unwrap();
        assert!(cl.vm(dn_vm).cache.used_bytes() >= 1 << 20);
        assert!(cl.hosts[h.0].cache.used_bytes() >= 1 << 20);
    }
}

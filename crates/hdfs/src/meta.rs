//! HDFS metadata: blocks, file→block maps, the datanode registry.
//!
//! The metadata lives in [`HdfsMeta`] on the world's extension blackboard,
//! owned logically by the namenode actor (which mediates all mutations at
//! runtime) but directly writable by scenario builders via
//! [`crate::populate`], so experiments can lay out data without simulating
//! hours of ingest.

use std::collections::BTreeMap;

use vread_host::cluster::VmId;
use vread_sim::prelude::*;

/// A globally unique HDFS block id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The on-datanode file path of this block (all datanodes store blocks
    /// under the same path, as the paper notes in §3.1).
    pub fn path(self) -> String {
        format!("/hdfs/data/blk_{}", self.0)
    }
}

/// Index of a datanode in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatanodeIx(pub usize);

/// A datanode's registration record.
#[derive(Debug, Clone, Copy)]
pub struct DnInfo {
    /// The datanode server actor.
    pub actor: ActorId,
    /// The VM the datanode runs in.
    pub vm: VmId,
}

/// One block of a file, with its locations.
#[derive(Debug, Clone)]
pub struct LocatedBlock {
    /// Block id.
    pub block: BlockId,
    /// Offset of this block within the file.
    pub offset: u64,
    /// Bytes in this block.
    pub len: u64,
    /// Datanodes holding replicas, primary first.
    pub replicas: Vec<DatanodeIx>,
}

/// File metadata.
#[derive(Debug, Clone, Default)]
pub struct FileMeta {
    /// Blocks in file order.
    pub blocks: Vec<LocatedBlock>,
}

impl FileMeta {
    /// Total file size.
    pub fn size(&self) -> u64 {
        self.blocks.iter().map(|b| b.len).sum()
    }

    /// The blocks overlapping `[offset, offset+len)` (Algorithm 2's
    /// `getRangeBlock`).
    pub fn range_blocks(&self, offset: u64, len: u64) -> Vec<LocatedBlock> {
        let end = offset + len;
        self.blocks
            .iter()
            .filter(|b| b.offset < end && b.offset + b.len > offset)
            .cloned()
            .collect()
    }
}

/// Cluster-wide HDFS metadata and configuration.
#[derive(Debug, Default)]
pub struct HdfsMeta {
    /// File namespace.
    pub files: BTreeMap<String, FileMeta>,
    /// Registered datanodes.
    pub datanodes: Vec<DnInfo>,
    /// The namenode actor (RPC endpoint).
    pub namenode: Option<ActorId>,
    /// The VM hosting the namenode (the paper co-locates it with the
    /// client VM).
    pub namenode_vm: Option<VmId>,
    /// Actors notified when a block is finalized (vRead daemons register
    /// here; this is the paper's namenode-triggered mount refresh).
    pub observers: Vec<ActorId>,
    /// HVE-style topology awareness: prefer a co-located replica.
    pub topology_aware: bool,
    /// Replication factor for new blocks.
    pub replication: usize,
    /// When set, new blocks are always placed on this datanode first
    /// (experiment control for the paper's remote-write scenarios).
    pub forced_primary: Option<DatanodeIx>,
    /// Block size for new blocks.
    pub block_bytes: u64,
    next_block: u64,
}

impl HdfsMeta {
    /// Creates metadata with Hadoop-1.2.1-like defaults.
    pub fn new() -> Self {
        HdfsMeta {
            topology_aware: true,
            replication: 1,
            block_bytes: 64 * 1024 * 1024,
            ..Default::default()
        }
    }

    /// Registers a datanode, returning its index.
    pub fn register_datanode(&mut self, actor: ActorId, vm: VmId) -> DatanodeIx {
        self.datanodes.push(DnInfo { actor, vm });
        DatanodeIx(self.datanodes.len() - 1)
    }

    /// Mints a fresh block id.
    pub fn alloc_block(&mut self) -> BlockId {
        self.next_block += 1;
        BlockId(self.next_block)
    }

    /// Appends a located block to a file's metadata (creating the file).
    pub fn add_block(&mut self, path: &str, block: LocatedBlock) {
        self.files
            .entry(path.to_owned())
            .or_default()
            .blocks
            .push(block);
    }

    /// File metadata, if the file exists.
    pub fn file(&self, path: &str) -> Option<&FileMeta> {
        self.files.get(path)
    }

    /// Picks the replica to read from: with topology awareness, a replica
    /// co-located with `reader_host` wins; otherwise the primary.
    pub fn choose_replica(
        &self,
        block: &LocatedBlock,
        co_located: impl Fn(DatanodeIx) -> bool,
    ) -> DatanodeIx {
        if self.topology_aware {
            if let Some(&dn) = block.replicas.iter().find(|&&dn| co_located(dn)) {
                return dn;
            }
        }
        block.replicas[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lb(block: u64, offset: u64, len: u64, replicas: Vec<usize>) -> LocatedBlock {
        LocatedBlock {
            block: BlockId(block),
            offset,
            len,
            replicas: replicas.into_iter().map(DatanodeIx).collect(),
        }
    }

    #[test]
    fn block_path_format() {
        assert_eq!(BlockId(17).path(), "/hdfs/data/blk_17");
    }

    #[test]
    fn range_blocks_selects_overlaps() {
        let mut f = FileMeta::default();
        f.blocks.push(lb(1, 0, 100, vec![0]));
        f.blocks.push(lb(2, 100, 100, vec![0]));
        f.blocks.push(lb(3, 200, 100, vec![0]));
        assert_eq!(f.size(), 300);
        let r = f.range_blocks(50, 100); // [50,150): blocks 1 and 2
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].block, BlockId(1));
        assert_eq!(r[1].block, BlockId(2));
        let r = f.range_blocks(100, 100); // exactly block 2
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].block, BlockId(2));
        assert!(f.range_blocks(300, 10).is_empty());
    }

    #[test]
    fn choose_replica_prefers_co_located_when_aware() {
        let mut m = HdfsMeta::new();
        assert!(m.topology_aware);
        let b = lb(1, 0, 10, vec![0, 1]);
        assert_eq!(m.choose_replica(&b, |dn| dn.0 == 1), DatanodeIx(1));
        assert_eq!(m.choose_replica(&b, |_| false), DatanodeIx(0));
        m.topology_aware = false;
        assert_eq!(m.choose_replica(&b, |dn| dn.0 == 1), DatanodeIx(0));
    }

    #[test]
    fn alloc_blocks_unique() {
        let mut m = HdfsMeta::new();
        let a = m.alloc_block();
        let b = m.alloc_block();
        assert_ne!(a, b);
    }
}

//! The HDFS client (`DFSClient`): file reads and the write output stream.
//!
//! Reads follow the paper's Algorithms 1 and 2: an application request is
//! mapped onto the file's located blocks (`getRangeBlock`), each block
//! part is fetched from a chosen replica (co-located preferred, as in
//! HVE), and the client charges its DFSInputStream processing per arriving
//! chunk. *How* a block part is fetched is delegated to a
//! [`BlockReadPath`]: [`VanillaPath`] streams through the datanode over
//! virtio-net TCP (Figure 1), while `vread-core` provides the vRead path
//! that replaces `read_buffer`/`fetchBlocks` with `vRead_read` and falls
//! back to vanilla when no descriptor can be opened.

use std::collections::{HashMap, HashSet};

use vread_host::cluster::{with_cluster, Cluster, VmId};
use vread_net::conn::{add_conn, ConnRecv, ConnSend, ConnSpec, Endpoint, Flavor, Side};
use vread_sim::prelude::*;

use crate::datanode::{DnReadReq, DnWriteChunk};
use crate::meta::{BlockId, DatanodeIx, HdfsMeta, LocatedBlock};
use crate::namenode::{NnAddBlock, NnBlockAllocated, NnGetLocations, NnLocations};

/// Size of a block-read request header on the wire.
const READ_REQUEST_BYTES: u64 = 256;
/// Write pipeline window (chunks in flight).
const WRITE_WINDOW: usize = 4;

// ---------------------------------------------------------------------------
// Application-facing messages
// ---------------------------------------------------------------------------

/// Application request: read `len` bytes at `offset` of `path`.
#[derive(Debug, Clone)]
pub struct DfsRead {
    /// Caller-chosen request id, echoed in [`DfsReadDone`].
    pub req: u64,
    /// Where to deliver the completion.
    pub reply_to: ActorId,
    /// File path.
    pub path: String,
    /// Byte offset.
    pub offset: u64,
    /// Bytes to read.
    pub len: u64,
    /// Positional read (the paper's `read2`): forces a fresh block
    /// stream (BlockReader/DataXceiver setup) instead of continuing a
    /// sequential stream (`read1`).
    pub pread: bool,
}

/// Completion of a [`DfsRead`].
#[derive(Debug, Clone, Copy)]
pub struct DfsReadDone {
    /// Caller's request id.
    pub req: u64,
    /// Bytes actually delivered (less than requested at end of file; 0 if
    /// the file does not exist).
    pub bytes: u64,
}

/// Application request: append `bytes` to `path` (creating it), then
/// close — partial blocks are finalized.
#[derive(Debug, Clone)]
pub struct DfsWrite {
    /// Caller-chosen request id, echoed in [`DfsWriteDone`].
    pub req: u64,
    /// Where to deliver the completion.
    pub reply_to: ActorId,
    /// File path.
    pub path: String,
    /// Bytes to append.
    pub bytes: u64,
}

/// Completion of a [`DfsWrite`] (all chunks acked by the datanode).
#[derive(Debug, Clone, Copy)]
pub struct DfsWriteDone {
    /// Caller's request id.
    pub req: u64,
}

// ---------------------------------------------------------------------------
// Block read-path plug-in interface
// ---------------------------------------------------------------------------

/// Context the read path needs about its client.
#[derive(Debug, Clone, Copy)]
pub struct ClientShared {
    /// The client actor (destination for the path's async messages).
    pub me: ActorId,
    /// The client VM.
    pub vm: VmId,
}

/// One block-part fetch issued by the client.
#[derive(Debug, Clone, Copy)]
pub struct BlockReq {
    /// Client-unique token for this fetch.
    pub token: u64,
    /// Replica to read from.
    pub dn: DatanodeIx,
    /// The block.
    pub block: BlockId,
    /// Offset within the block.
    pub offset: u64,
    /// Bytes to fetch.
    pub len: u64,
    /// Positional read: a fresh stream must be set up.
    pub pread: bool,
    /// The `block_fetch` span this fetch works under ([`SpanId::NONE`]
    /// when spans are off). Paths thread it into every chain and wire
    /// message they issue for the fetch.
    pub span: SpanId,
}

/// Events a [`BlockReadPath`] reports back to the client.
#[derive(Debug, Clone, Copy)]
pub enum PathEvent {
    /// `bytes` of payload arrived for fetch `token`.
    Chunk {
        /// Fetch token.
        token: u64,
        /// Chunk size.
        bytes: u64,
    },
    /// Fetch `token` delivered all its bytes.
    Done {
        /// Fetch token.
        token: u64,
    },
}

/// What the client should do about a stalled fetch, as diagnosed by the
/// active [`BlockReadPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutAdvice {
    /// The replica itself is suspect: mark it and fail over to another
    /// replica (vanilla HDFS semantics).
    TryReplica,
    /// The transfer path — not the replica — is degraded (e.g. the vRead
    /// daemon died mid-stream): retry the *same* replica and let the
    /// path fall back internally. Crucially this never abandons a block
    /// whose only replica is healthy.
    PathDegraded,
}

/// Strategy for fetching one block part. Implemented by [`VanillaPath`]
/// (datanode TCP streaming) and by `vread-core`'s vRead path.
pub trait BlockReadPath: 'static {
    /// Short name for diagnostics ("vanilla", "vread").
    fn name(&self) -> &'static str;

    /// Client-side (DFSInputStream) processing cost per byte for data
    /// fetched through this path. The vanilla path pays the full HDFS
    /// packet/checksum machinery; vRead bypasses it.
    fn client_cyc_per_byte(&self, costs: &vread_host::Costs) -> f64 {
        costs.client_cyc_per_byte
    }

    /// Begins fetching `req`, pushing any immediately-available events.
    fn start(
        &mut self,
        ctx: &mut Ctx<'_>,
        shared: &ClientShared,
        req: BlockReq,
        out: &mut Vec<PathEvent>,
    );

    /// Offers the path a message addressed to the client actor. Returns
    /// `Err(msg)` if the message is not for this path.
    ///
    /// # Errors
    ///
    /// The unconsumed message is handed back for other handlers.
    fn on_msg(
        &mut self,
        ctx: &mut Ctx<'_>,
        shared: &ClientShared,
        msg: BoxMsg,
        out: &mut Vec<PathEvent>,
    ) -> Result<(), BoxMsg>;

    /// Abandons an in-flight fetch (timeout / failover). Late data for
    /// the token must be dropped, not reported.
    fn cancel(&mut self, token: u64) {
        let _ = token;
    }

    /// Diagnoses a stalled fetch before the client reacts. The default
    /// blames the replica; paths with their own transfer machinery
    /// (vRead) override this to blame the path when the replica's data
    /// is still reachable.
    fn on_timeout(
        &mut self,
        ctx: &mut Ctx<'_>,
        shared: &ClientShared,
        token: u64,
    ) -> TimeoutAdvice {
        let _ = (ctx, shared, token);
        TimeoutAdvice::TryReplica
    }
}

// ---------------------------------------------------------------------------
// The vanilla path: stream from the datanode over virtio-net TCP
// ---------------------------------------------------------------------------

struct VStream {
    expected: u64,
    got: u64,
}

/// The unmodified HDFS read path of Figure 1.
#[derive(Default)]
pub struct VanillaPath {
    conns: HashMap<usize, ActorId>,
    streams: HashMap<u64, VStream>,
    /// Sequential-stream positions per `(datanode, block)`: a fetch that
    /// continues where the previous one ended rides the existing
    /// DataXceiver stream (read1); anything else pays stream setup.
    positions: HashMap<(usize, u64), u64>,
}

impl VanillaPath {
    /// Creates the path with no open connections.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_conn(&mut self, ctx: &mut Ctx<'_>, shared: &ClientShared, dn: DatanodeIx) -> ActorId {
        if let Some(&c) = self.conns.get(&dn.0) {
            return c;
        }
        let (dn_actor, dn_vm) = {
            let meta = ctx.world.ext.get::<HdfsMeta>().expect("HdfsMeta missing");
            let d = meta.datanodes[dn.0];
            (d.actor, d.vm)
        };
        let me = shared.me;
        let vm = shared.vm;
        let conn = with_cluster(ctx.world, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: me,
                    flavor: Flavor::Guest(vm),
                },
                Endpoint {
                    actor: dn_actor,
                    flavor: Flavor::Guest(dn_vm),
                },
                ConnSpec {
                    sriov: cl.costs.sriov_nics,
                    ..Default::default()
                },
            )
        });
        self.conns.insert(dn.0, conn);
        conn
    }
}

impl BlockReadPath for VanillaPath {
    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn cancel(&mut self, token: u64) {
        self.streams.remove(&token);
    }

    fn start(
        &mut self,
        ctx: &mut Ctx<'_>,
        shared: &ClientShared,
        req: BlockReq,
        _out: &mut Vec<PathEvent>,
    ) {
        let conn = self.ensure_conn(ctx, shared, req.dn);
        let dn_actor = ctx.world.ext.get::<HdfsMeta>().expect("meta").datanodes[req.dn.0].actor;
        let key = (req.dn.0, req.block.0);
        let setup = req.pread || self.positions.get(&key) != Some(&req.offset);
        self.positions.insert(key, req.offset + req.len);
        self.streams.insert(
            req.token,
            VStream {
                expected: req.len,
                got: 0,
            },
        );
        // Out-of-band header + costed request bytes on the wire.
        ctx.send(
            dn_actor,
            DnReadReq {
                conn,
                tag: req.token,
                block: req.block,
                offset: req.offset,
                len: req.len,
                setup,
                span: req.span,
            },
        );
        let send = ConnSend {
            dir: Side::A,
            bytes: READ_REQUEST_BYTES,
            tag: req.token,
            notify: false,
            span: req.span,
        };
        if setup {
            // New BlockReader: client-side stream setup before the wire
            // request goes out.
            let (vcpu, cycles) = {
                let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                (cl.vm(shared.vm).vcpu, cl.costs.client_stream_setup_cycles)
            };
            ctx.chain_on(
                vec![Stage::cpu(vcpu, cycles, CpuCategory::ClientApp)],
                conn,
                send,
                req.span,
            );
        } else {
            ctx.send(conn, send);
        }
    }

    fn on_msg(
        &mut self,
        _ctx: &mut Ctx<'_>,
        _shared: &ClientShared,
        msg: BoxMsg,
        out: &mut Vec<PathEvent>,
    ) -> Result<(), BoxMsg> {
        match downcast::<ConnRecv>(msg) {
            Ok(r) => {
                let Some(st) = self.streams.get_mut(&r.tag) else {
                    return Err(Box::new(*r));
                };
                st.got += r.bytes;
                out.push(PathEvent::Chunk {
                    token: r.tag,
                    bytes: r.bytes,
                });
                if st.got >= st.expected {
                    self.streams.remove(&r.tag);
                    out.push(PathEvent::Done { token: r.tag });
                }
                Ok(())
            }
            Err(m) => Err(m),
        }
    }
}

// ---------------------------------------------------------------------------
// The client actor
// ---------------------------------------------------------------------------

struct ReadReq {
    app: ActorId,
    req: u64,
    offset: u64,
    len: u64,
    pread: bool,
    blocks: Vec<LocatedBlock>,
    cur_block: usize,
    expected: u64,
    bytes_done: u64,
    processing: u64,
    all_sent: bool,
    path: String,
    /// Active fetch (for timeout tracking).
    cur_token: Option<u64>,
    /// The replica the active fetch targets (so a timeout knows exactly
    /// whom to blame instead of re-deriving the choice).
    cur_dn: Option<DatanodeIx>,
    /// Replicas already tried for the current block.
    tried: Vec<DatanodeIx>,
    /// Bytes of the *current block part* already delivered (failover
    /// retries resume after them instead of re-reading the part).
    part_received: u64,
    /// Consecutive timeouts without a completed part (drives the
    /// exponential retry backoff; reset when a part completes).
    timeouts: u32,
    /// Root `read` span for this request.
    span: SpanId,
    /// `block_fetch` child span of the active fetch.
    cur_span: SpanId,
    /// When the request arrived (timeline read-latency observation).
    started: SimTime,
}

/// Internal watchdog for a block fetch.
struct FetchTimeout {
    rid: u64,
    token: u64,
    progress_mark: u64,
}

/// Internal timer: retry a stalled read after its backoff expires.
struct RetryFetch {
    rid: u64,
}

struct CurBlock {
    block: BlockId,
    conn: ActorId,
    dn: DatanodeIx,
    pipeline: Vec<DatanodeIx>,
    tag: u64,
    written: u64,
    capacity: u64,
}

struct WriteReq {
    app: ActorId,
    req: u64,
    path: String,
    remaining: u64,
    block: Option<CurBlock>,
    inflight: usize,
    awaiting_alloc: bool,
}

struct ChunkCpu {
    rid: u64,
    token: u64,
    bytes: u64,
}

struct WriteCpu {
    rid: u64,
    bytes: u64,
    last_of_block: bool,
    conn: ActorId,
    tag: u64,
    block: BlockId,
    dn: DatanodeIx,
    pipeline: Vec<DatanodeIx>,
}

/// The DFSClient actor. Create with [`add_client`].
pub struct DfsClient {
    vm: VmId,
    path_impl: Box<dyn BlockReadPath>,
    next_id: u64,
    loc_cache: HashMap<String, Vec<LocatedBlock>>,
    reads: HashMap<u64, ReadReq>,
    tokens: std::collections::BTreeMap<u64, u64>,
    nn_tokens: HashMap<u64, u64>,
    writes: HashMap<u64, WriteReq>,
    write_tags: HashMap<u64, u64>,
    write_conns: HashMap<usize, ActorId>,
    /// Datanodes that timed out on us (crashed or unreachable). Replica
    /// selection avoids them while any alternative exists, but still
    /// retries them as a last resort — never silently dropping data.
    dead_nodes: HashSet<usize>,
    m_bytes_read: LazyCounter,
    /// Level gauge of in-flight `DfsRead` requests (timeline source).
    m_outstanding: LazyGauge,
}

/// Creates a DFSClient in `vm` using the given block read path.
pub fn add_client(w: &mut World, vm: VmId, path_impl: Box<dyn BlockReadPath>) -> ActorId {
    w.add_actor(
        "dfs-client",
        DfsClient {
            vm,
            path_impl,
            next_id: 0,
            loc_cache: HashMap::new(),
            reads: HashMap::new(),
            tokens: std::collections::BTreeMap::new(),
            nn_tokens: HashMap::new(),
            writes: HashMap::new(),
            write_tags: HashMap::new(),
            write_conns: HashMap::new(),
            dead_nodes: HashSet::new(),
            m_bytes_read: LazyCounter::new("hdfs_bytes_read"),
            m_outstanding: LazyGauge::new("hdfs.outstanding_reads"),
        },
    )
}

impl DfsClient {
    fn alloc_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn shared(&self, ctx: &Ctx<'_>) -> ClientShared {
        ClientShared {
            me: ctx.me(),
            vm: self.vm,
        }
    }

    fn vcpu(&self, ctx: &Ctx<'_>) -> ThreadId {
        ctx.world
            .ext
            .get::<Cluster>()
            .expect("Cluster missing")
            .vm(self.vm)
            .vcpu
    }

    fn client_cycles(&self, ctx: &Ctx<'_>, bytes: u64) -> u64 {
        let c = &ctx
            .world
            .ext
            .get::<Cluster>()
            .expect("Cluster missing")
            .costs;
        (bytes as f64 * self.path_impl.client_cyc_per_byte(c)).round() as u64
            + bytes.div_ceil(c.hdfs_packet_bytes).max(1) * 2_000
    }

    /// Write-side client cost (always the vanilla stack).
    fn write_cycles(ctx: &Ctx<'_>, bytes: u64) -> u64 {
        let c = &ctx
            .world
            .ext
            .get::<Cluster>()
            .expect("Cluster missing")
            .costs;
        (bytes as f64 * c.client_cyc_per_byte).round() as u64
            + bytes.div_ceil(c.hdfs_packet_bytes).max(1) * 2_000
    }

    /// Starts the fetch of the current block part of read `rid`.
    fn start_block(&mut self, ctx: &mut Ctx<'_>, rid: u64) {
        let shared = self.shared(ctx);
        let (req, done) = {
            let r = self.reads.get_mut(&rid).expect("read vanished");
            if r.cur_block >= r.blocks.len() {
                r.all_sent = true;
                (None, true)
            } else {
                let lb = &r.blocks[r.cur_block];
                // resume after any bytes the previous attempt delivered
                let start = r.offset.max(lb.offset) + r.part_received;
                let end = (r.offset + r.len).min(lb.offset + lb.len);
                debug_assert!(start <= end, "part resume past its end");
                let token = {
                    // allocate inline to avoid double borrow
                    self.next_id += 1;
                    self.next_id
                };
                let r = self.reads.get_mut(&rid).expect("read vanished");
                let lb = &r.blocks[r.cur_block];
                // pick a replica not yet tried for this block (co-located
                // preferred, known-dead nodes last); if every replica
                // timed out, give the part up.
                let dn = {
                    let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
                    let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                    let my_host = cl.vm(self.vm).host;
                    let tried = &r.tried;
                    let dead = &self.dead_nodes;
                    let mut candidates: Vec<DatanodeIx> = lb
                        .replicas
                        .iter()
                        .copied()
                        .filter(|d| !tried.contains(d))
                        .collect();
                    candidates.sort_by_key(|&d| {
                        let remote = cl.vm(meta.datanodes[d.0].vm).host != my_host;
                        (dead.contains(&d.0), meta.topology_aware && remote)
                    });
                    candidates.first().copied()
                };
                let Some(dn) = dn else {
                    // no replica left: abandon this block part
                    r.part_received = 0;
                    r.cur_block += 1;
                    let give_up = r.cur_block >= r.blocks.len();
                    if give_up {
                        r.all_sent = true;
                        let _ = r;
                        self.maybe_finish_read(ctx, rid);
                        return;
                    }
                    r.tried.clear();
                    let _ = r;
                    self.start_block(ctx, rid);
                    return;
                };
                self.tokens.insert(token, rid);
                let pread = r.pread;
                r.cur_token = Some(token);
                r.cur_dn = Some(dn);
                let parent = r.span;
                let now = ctx.now();
                let bspan = ctx.world.spans.start("block_fetch", parent, now);
                r.cur_span = bspan;
                let mark = r.bytes_done;
                let timeout_ms = {
                    let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                    cl.costs.client_read_timeout_ms
                };
                ctx.timer(
                    FetchTimeout {
                        rid,
                        token,
                        progress_mark: mark,
                    },
                    vread_sim::SimDuration::from_millis(timeout_ms),
                );
                let lb = &r.blocks[r.cur_block];
                (
                    Some(BlockReq {
                        token,
                        dn,
                        block: lb.block,
                        offset: start - lb.offset,
                        len: end - start,
                        pread,
                        span: bspan,
                    }),
                    false,
                )
            }
        };
        if let Some(req) = req {
            let mut out = Vec::new();
            self.path_impl.start(ctx, &shared, req, &mut out);
            self.process_events(ctx, out);
        } else if done {
            self.maybe_finish_read(ctx, rid);
        }
    }

    fn process_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<PathEvent>) {
        for ev in events {
            match ev {
                PathEvent::Chunk { token, bytes } => {
                    let Some(&rid) = self.tokens.get(&token) else {
                        continue;
                    };
                    let mut span = SpanId::NONE;
                    if let Some(r) = self.reads.get_mut(&rid) {
                        r.processing += 1;
                        span = r.span;
                    }
                    let vcpu = self.vcpu(ctx);
                    let cycles = self.client_cycles(ctx, bytes);
                    let me = ctx.me();
                    ctx.chain_on(
                        vec![Stage::cpu(vcpu, cycles, CpuCategory::ClientApp)],
                        me,
                        ChunkCpu { rid, token, bytes },
                        span,
                    );
                }
                PathEvent::Done { token } => {
                    let Some(&rid) = self.tokens.get(&token) else {
                        continue;
                    };
                    let (advance, bspan) = {
                        let r = self.reads.get_mut(&rid).expect("read vanished");
                        r.cur_token = None;
                        r.cur_dn = None;
                        r.tried.clear();
                        r.part_received = 0;
                        r.timeouts = 0;
                        r.cur_block += 1;
                        let bspan = std::mem::replace(&mut r.cur_span, SpanId::NONE);
                        (r.cur_block < r.blocks.len(), bspan)
                    };
                    let now = ctx.now();
                    ctx.world.spans.end(bspan, now);
                    if advance {
                        self.start_block(ctx, rid);
                    } else {
                        let r = self.reads.get_mut(&rid).expect("read vanished");
                        r.all_sent = true;
                        self.maybe_finish_read(ctx, rid);
                    }
                }
            }
        }
    }

    fn maybe_finish_read(&mut self, ctx: &mut Ctx<'_>, rid: u64) {
        let finished = {
            let Some(r) = self.reads.get(&rid) else {
                return;
            };
            r.all_sent && r.processing == 0
        };
        if finished {
            let r = self.reads.remove(&rid).expect("just checked");
            // release tokens for this read
            self.tokens.retain(|_, v| *v != rid);
            let now = ctx.now();
            // ledger denominator: the bytes actually delivered
            ctx.world.spans.payload(r.span, r.bytes_done);
            ctx.world.spans.end(r.cur_span, now);
            ctx.world.spans.end(r.span, now);
            self.m_bytes_read.add(ctx.metrics(), r.bytes_done as f64);
            self.m_outstanding.add(ctx.metrics(), -1.0);
            ctx.world.timeline.observe_read(r.started, now);
            ctx.send(
                r.app,
                DfsReadDone {
                    req: r.req,
                    bytes: r.bytes_done,
                },
            );
        }
    }

    fn begin_read(&mut self, ctx: &mut Ctx<'_>, rid: u64) {
        let (blocks, offset, len) = {
            let r = self.reads.get(&rid).expect("read vanished");
            let blocks = self.loc_cache.get(&r.path).cloned().unwrap_or_default();
            (blocks, r.offset, r.len)
        };
        let mut selected: Vec<LocatedBlock> = Vec::new();
        let mut expected = 0u64;
        let end = offset + len;
        for b in &blocks {
            if b.offset < end && b.offset + b.len > offset {
                let s = offset.max(b.offset);
                let e = end.min(b.offset + b.len);
                expected += e - s;
                selected.push(b.clone());
            }
        }
        {
            let r = self.reads.get_mut(&rid).expect("read vanished");
            r.blocks = selected;
            r.expected = expected;
        }
        if expected == 0 {
            let r = self.reads.get_mut(&rid).expect("read vanished");
            r.all_sent = true;
            self.maybe_finish_read(ctx, rid);
        } else {
            self.start_block(ctx, rid);
        }
    }

    // -- write path ---------------------------------------------------------

    fn ensure_write_conn(&mut self, ctx: &mut Ctx<'_>, dn: DatanodeIx) -> ActorId {
        if let Some(&c) = self.write_conns.get(&dn.0) {
            return c;
        }
        let (dn_actor, dn_vm) = {
            let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
            let d = meta.datanodes[dn.0];
            (d.actor, d.vm)
        };
        let me = ctx.me();
        let vm = self.vm;
        let conn = with_cluster(ctx.world, |cl, w| {
            add_conn(
                w,
                cl,
                Endpoint {
                    actor: me,
                    flavor: Flavor::Guest(vm),
                },
                Endpoint {
                    actor: dn_actor,
                    flavor: Flavor::Guest(dn_vm),
                },
                ConnSpec {
                    sriov: cl.costs.sriov_nics,
                    ..Default::default()
                },
            )
        });
        self.write_conns.insert(dn.0, conn);
        conn
    }

    fn pump_write(&mut self, ctx: &mut Ctx<'_>, rid: u64) {
        loop {
            enum Next {
                Alloc,
                Chunk(WriteCpu),
                Wait,
                Finish,
            }
            let action = {
                let Some(wr) = self.writes.get_mut(&rid) else {
                    return;
                };
                if wr.remaining == 0 && wr.inflight == 0 {
                    Next::Finish
                } else if wr.remaining == 0 || wr.inflight >= WRITE_WINDOW {
                    Next::Wait
                } else if wr.block.is_none() {
                    if wr.awaiting_alloc {
                        Next::Wait
                    } else {
                        wr.awaiting_alloc = true;
                        Next::Alloc
                    }
                } else {
                    let chunk_bytes = {
                        let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                        cl.costs.stream_chunk_bytes
                    };
                    let b = wr.block.as_mut().expect("just checked");
                    let take = wr.remaining.min(chunk_bytes).min(b.capacity - b.written);
                    b.written += take;
                    wr.remaining -= take;
                    let last_of_block = b.written == b.capacity || wr.remaining == 0;
                    wr.inflight += 1;
                    let cpu = WriteCpu {
                        rid,
                        bytes: take,
                        last_of_block,
                        conn: b.conn,
                        tag: b.tag,
                        block: b.block,
                        dn: b.dn,
                        pipeline: b.pipeline.clone(),
                    };
                    if last_of_block {
                        // roll over: the next chunk allocates a fresh block
                        wr.block = None;
                    }
                    Next::Chunk(cpu)
                }
            };
            match action {
                Next::Finish => {
                    let wr = self.writes.remove(&rid).expect("write vanished");
                    ctx.send(wr.app, DfsWriteDone { req: wr.req });
                    return;
                }
                Next::Wait => return,
                Next::Alloc => {
                    let token = self.alloc_id();
                    self.nn_tokens.insert(token, rid);
                    let (nn, path) = {
                        let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
                        let wr = self.writes.get(&rid).expect("write vanished");
                        (meta.namenode.expect("no namenode"), wr.path.clone())
                    };
                    let me = ctx.me();
                    ctx.send(
                        nn,
                        NnAddBlock {
                            reply_to: me,
                            token,
                            path,
                            client_vm: self.vm,
                        },
                    );
                    return;
                }
                Next::Chunk(cpu) => {
                    let vcpu = self.vcpu(ctx);
                    let cycles = Self::write_cycles(ctx, cpu.bytes);
                    let me = ctx.me();
                    ctx.chain(
                        vec![Stage::cpu(vcpu, cycles, CpuCategory::ClientApp)],
                        me,
                        cpu,
                    );
                }
            }
        }
    }
}

impl Actor for DfsClient {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        // -- application requests ------------------------------------------
        let msg = match downcast::<DfsRead>(msg) {
            Ok(rd) => {
                let rid = self.alloc_id();
                let now = ctx.now();
                let span = ctx.world.spans.start("read", SpanId::NONE, now);
                self.reads.insert(
                    rid,
                    ReadReq {
                        app: rd.reply_to,
                        req: rd.req,
                        offset: rd.offset,
                        len: rd.len,
                        pread: rd.pread,
                        blocks: Vec::new(),
                        cur_block: 0,
                        expected: 0,
                        bytes_done: 0,
                        processing: 0,
                        all_sent: false,
                        path: rd.path.clone(),
                        cur_token: None,
                        cur_dn: None,
                        tried: Vec::new(),
                        part_received: 0,
                        timeouts: 0,
                        span,
                        cur_span: SpanId::NONE,
                        started: now,
                    },
                );
                self.m_outstanding.add(ctx.metrics(), 1.0);
                if self.loc_cache.contains_key(&rd.path) {
                    self.begin_read(ctx, rid);
                } else {
                    let token = self.alloc_id();
                    self.nn_tokens.insert(token, rid);
                    let nn = ctx
                        .world
                        .ext
                        .get::<HdfsMeta>()
                        .expect("meta")
                        .namenode
                        .expect("no namenode");
                    let me = ctx.me();
                    ctx.send(
                        nn,
                        NnGetLocations {
                            reply_to: me,
                            token,
                            path: rd.path,
                        },
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<DfsWrite>(msg) {
            Ok(wr) => {
                let rid = self.alloc_id();
                self.writes.insert(
                    rid,
                    WriteReq {
                        app: wr.reply_to,
                        req: wr.req,
                        path: wr.path,
                        remaining: wr.bytes,
                        block: None,
                        inflight: 0,
                        awaiting_alloc: false,
                    },
                );
                self.pump_write(ctx, rid);
                return;
            }
            Err(m) => m,
        };

        // -- namenode replies --------------------------------------------------
        let msg = match downcast::<NnLocations>(msg) {
            Ok(loc) => {
                if let Some(rid) = self.nn_tokens.remove(&loc.token) {
                    let path = self.reads.get(&rid).expect("read vanished").path.clone();
                    self.loc_cache.insert(path, loc.blocks.unwrap_or_default());
                    self.begin_read(ctx, rid);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<NnBlockAllocated>(msg) {
            Ok(alloc) => {
                if let Some(rid) = self.nn_tokens.remove(&alloc.token) {
                    let dn = alloc.replicas[0];
                    let conn = self.ensure_write_conn(ctx, dn);
                    let tag = self.alloc_id();
                    self.write_tags.insert(tag, rid);
                    if let Some(wr) = self.writes.get_mut(&rid) {
                        wr.awaiting_alloc = false;
                        wr.block = Some(CurBlock {
                            block: alloc.block,
                            conn,
                            dn,
                            pipeline: alloc.replicas.clone(),
                            tag,
                            written: 0,
                            capacity: alloc.capacity,
                        });
                    }
                    self.pump_write(ctx, rid);
                }
                return;
            }
            Err(m) => m,
        };

        // -- internal CPU completions -------------------------------------------
        let msg = match downcast::<ChunkCpu>(msg) {
            Ok(cc) => {
                let live = self.tokens.get(&cc.token) == Some(&cc.rid);
                if let Some(r) = self.reads.get_mut(&cc.rid) {
                    r.processing -= 1;
                    if live {
                        r.bytes_done += cc.bytes;
                        if r.cur_token == Some(cc.token) {
                            r.part_received += cc.bytes;
                        }
                    }
                }
                if live
                    && ctx
                        .world
                        .ext
                        .get::<vread_sim::fault::FaultTrace>()
                        .is_some()
                {
                    // fault runs record a per-chunk delivery trace so the
                    // report can compute throughput during the outage
                    let now = ctx.now().as_secs_f64();
                    ctx.metrics().sample("read_chunk_at_s", now);
                    ctx.metrics().sample("read_chunk_bytes", cc.bytes as f64);
                }
                self.maybe_finish_read(ctx, cc.rid);
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<WriteCpu>(msg) {
            Ok(wc) => {
                let path = match self.writes.get(&wc.rid) {
                    Some(wr) => wr.path.clone(),
                    None => return,
                };
                let dn_actor =
                    ctx.world.ext.get::<HdfsMeta>().expect("meta").datanodes[wc.dn.0].actor;
                ctx.send(
                    dn_actor,
                    DnWriteChunk {
                        conn: wc.conn,
                        tag: wc.tag,
                        path,
                        block: wc.block,
                        bytes: wc.bytes,
                        last_of_block: wc.last_of_block,
                        pipeline: wc.pipeline.clone(),
                    },
                );
                ctx.send(
                    wc.conn,
                    ConnSend {
                        dir: Side::A,
                        bytes: wc.bytes,
                        tag: wc.tag,
                        notify: false,
                        span: SpanId::NONE,
                    },
                );
                return;
            }
            Err(m) => m,
        };

        // -- fetch watchdog -----------------------------------------------------
        let msg = match downcast::<FetchTimeout>(msg) {
            Ok(t) => {
                let Some(r) = self.reads.get_mut(&t.rid) else {
                    return;
                };
                if r.cur_token != Some(t.token) {
                    return; // fetch completed; stale watchdog
                }
                if r.bytes_done > t.progress_mark {
                    // progress since the last check: re-arm
                    let mark = r.bytes_done;
                    let timeout_ms = {
                        let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                        cl.costs.client_read_timeout_ms
                    };
                    ctx.timer(
                        FetchTimeout {
                            rid: t.rid,
                            token: t.token,
                            progress_mark: mark,
                        },
                        vread_sim::SimDuration::from_millis(timeout_ms),
                    );
                    return;
                }
                // stalled: let the path diagnose before reacting
                let shared = self.shared(ctx);
                let advice = self.path_impl.on_timeout(ctx, &shared, t.token);
                let (dn, timeouts, bspan) = {
                    let r = self.reads.get_mut(&t.rid).expect("read vanished");
                    r.timeouts += 1;
                    r.cur_token = None;
                    let dn = r.cur_dn.take();
                    let bspan = std::mem::replace(&mut r.cur_span, SpanId::NONE);
                    (dn, r.timeouts, bspan)
                };
                // close the stalled fetch's span at the timeout instant
                let now = ctx.now();
                ctx.world.spans.end(bspan, now);
                match advice {
                    TimeoutAdvice::TryReplica => {
                        // abandon this replica and fail over
                        ctx.metrics().incr("dfs_read_failovers");
                        if let Some(dn) = dn {
                            self.dead_nodes.insert(dn.0);
                            self.reads
                                .get_mut(&t.rid)
                                .expect("read vanished")
                                .tried
                                .push(dn);
                        }
                    }
                    TimeoutAdvice::PathDegraded => {
                        // the replica is fine; retry it (the path falls
                        // back internally on the next start)
                        ctx.metrics().incr("dfs_read_path_retries");
                    }
                }
                self.tokens.remove(&t.token);
                self.path_impl.cancel(t.token);
                let backoff_ms = {
                    let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                    cl.costs.client_retry_backoff_ms
                };
                if backoff_ms == 0 {
                    self.start_block(ctx, t.rid);
                } else {
                    let delay = backoff_ms << (timeouts as u64 - 1).min(5);
                    ctx.timer(
                        RetryFetch { rid: t.rid },
                        vread_sim::SimDuration::from_millis(delay),
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<RetryFetch>(msg) {
            Ok(rf) => {
                // Only live if the read still exists and nothing else
                // (completion, another retry) superseded the wait.
                let waiting = self
                    .reads
                    .get(&rf.rid)
                    .is_some_and(|r| r.cur_token.is_none() && !r.all_sent);
                if waiting {
                    self.start_block(ctx, rf.rid);
                }
                return;
            }
            Err(m) => m,
        };

        // -- connection arrivals: write acks first, then the read path ----------
        let msg = match downcast::<ConnRecv>(msg) {
            Ok(r) => {
                if let Some(&rid) = self.write_tags.get(&r.tag) {
                    if let Some(wr) = self.writes.get_mut(&rid) {
                        wr.inflight -= 1;
                    }
                    self.pump_write(ctx, rid);
                    return;
                }
                Box::new(*r) as BoxMsg
            }
            Err(m) => m,
        };

        // -- everything else belongs to the read path ----------------------------
        let shared = self.shared(ctx);
        let mut out = Vec::new();
        if self.path_impl.on_msg(ctx, &shared, msg, &mut out).is_ok() {
            self.process_events(ctx, out);
        }
    }
}

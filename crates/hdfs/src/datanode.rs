//! The HDFS datanode: serves block reads over TCP, accepts the write
//! pipeline, stores blocks as files in its VM's filesystem.
//!
//! The read path is the paper's Figure 1 vanilla flow: each streamed
//! packet is read from the VM's virtual disk through virtio-blk (guest
//! cache → host cache → SSD), processed by the datanode (checksums,
//! packetization — the Java `DataXceiver` costs), and sent back through
//! the virtio-net/vhost connection. Every copy happens on the thread that
//! performs it in a real KVM host, which is what makes the CPU breakdowns
//! of Figure 6 and the 4-VM scheduling collapse of Figure 9 reproducible.

use std::collections::{HashMap, VecDeque};

use vread_host::cluster::{with_cluster, Cluster, VmId};
use vread_host::virtio::{guest_disk_read, guest_disk_write};
use vread_net::conn::{ConnRecv, ConnSend, ConnSent, Side};
use vread_sim::prelude::*;

use crate::meta::{BlockId, DatanodeIx, HdfsMeta};
use crate::namenode::NnFinalizeBlock;

/// How many chunks a datanode keeps in flight per read stream.
const READ_WINDOW: usize = 4;

/// Control message announcing a block read request about to arrive on
/// `conn` with `tag` (HDFS sends this header inside the TCP stream; we
/// carry it out-of-band next to the costed bytes).
#[derive(Debug, Clone)]
pub struct DnReadReq {
    /// The connection the request (and the response data) travels on.
    pub conn: ActorId,
    /// Stream tag chosen by the client.
    pub tag: u64,
    /// Block to read.
    pub block: BlockId,
    /// Offset within the block.
    pub offset: u64,
    /// Bytes to read.
    pub len: u64,
    /// Whether a new DataXceiver stream must be set up.
    pub setup: bool,
    /// The client's `block_fetch` span; the datanode parents its
    /// `dn_read` span under it so server-side work lands in the read's
    /// causal tree.
    pub span: SpanId,
}

/// Control message announcing a write chunk about to arrive.
#[derive(Debug, Clone)]
pub struct DnWriteChunk {
    /// The connection the chunk travels on.
    pub conn: ActorId,
    /// Stream tag chosen by the client.
    pub tag: u64,
    /// The file the block belongs to (for namenode finalization).
    pub path: String,
    /// Block being written.
    pub block: BlockId,
    /// Chunk size.
    pub bytes: u64,
    /// Whether this chunk completes the block.
    pub last_of_block: bool,
    /// The full replica pipeline, primary first. Each datanode forwards
    /// the chunk to the replica after itself (HDFS write pipeline).
    pub pipeline: Vec<DatanodeIx>,
}

struct ReadStream {
    conn: ActorId,
    side: Side,
    block: BlockId,
    next_offset: u64,
    remaining: u64,
    inflight: usize,
    setup_pending: bool,
    /// This stream's `dn_read` span.
    span: SpanId,
}

struct WriteStream {
    side: Side,
    queued: VecDeque<DnWriteChunk>,
}

struct ChunkRead {
    key: (u32, u64),
    bytes: u64,
}

struct ChunkWritten {
    key: (u32, u64),
    meta: DnWriteChunk,
}

/// The datanode server actor. Create with [`add_datanode`].
pub struct Datanode {
    ix: DatanodeIx,
    vm: VmId,
    pending_reads: HashMap<(u32, u64), DnReadReq>,
    reads: HashMap<(u32, u64), ReadStream>,
    writes: HashMap<(u32, u64), WriteStream>,
    /// Cached pipeline connections to downstream datanodes.
    fwd_conns: HashMap<usize, ActorId>,
    /// Forward-stream tags: (upstream conn, upstream tag) -> downstream tag.
    fwd_tags: HashMap<(u32, u64), u64>,
    next_tag: u64,
}

/// Creates a datanode actor serving from `vm` and registers it in the
/// [`HdfsMeta`] datanode table.
///
/// # Panics
///
/// Panics if [`HdfsMeta`] is not installed.
pub fn add_datanode(w: &mut World, vm: VmId) -> (ActorId, DatanodeIx) {
    // Reserve the index first so the actor can know its own registration.
    let ix = {
        let meta = w.ext.get_mut::<HdfsMeta>().expect("HdfsMeta not installed");
        DatanodeIx(meta.datanodes.len())
    };
    let actor = w.add_actor(
        "datanode",
        Datanode {
            ix,
            vm,
            pending_reads: HashMap::new(),
            reads: HashMap::new(),
            writes: HashMap::new(),
            fwd_conns: HashMap::new(),
            fwd_tags: HashMap::new(),
            next_tag: 0,
        },
    );
    let meta = w.ext.get_mut::<HdfsMeta>().expect("HdfsMeta not installed");
    let got = meta.register_datanode(actor, vm);
    debug_assert_eq!(got, ix);
    (actor, ix)
}

impl Datanode {
    /// Datanode-side per-chunk processing cost (checksum, packetization,
    /// Java stream machinery).
    fn dn_cycles(cl: &Cluster, bytes: u64) -> u64 {
        let c = &cl.costs;
        (bytes as f64 * c.datanode_cyc_per_byte).round() as u64
            + bytes.div_ceil(c.hdfs_packet_bytes).max(1) * c.datanode_packet_cycles
    }

    /// Connection to the next datanode in a write pipeline.
    fn ensure_fwd_conn(&mut self, ctx: &mut Ctx<'_>, next: DatanodeIx) -> ActorId {
        if let Some(&c) = self.fwd_conns.get(&next.0) {
            return c;
        }
        let me = ctx.me();
        let my_vm = self.vm;
        let (next_actor, next_vm) = {
            let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
            let d = meta.datanodes[next.0];
            (d.actor, d.vm)
        };
        let conn = with_cluster(ctx.world, |cl, w| {
            vread_net::conn::add_conn(
                w,
                cl,
                vread_net::conn::Endpoint {
                    actor: me,
                    flavor: vread_net::conn::Flavor::Guest(my_vm),
                },
                vread_net::conn::Endpoint {
                    actor: next_actor,
                    flavor: vread_net::conn::Flavor::Guest(next_vm),
                },
                vread_net::conn::ConnSpec {
                    sriov: cl.costs.sriov_nics,
                    ..Default::default()
                },
            )
        });
        self.fwd_conns.insert(next.0, conn);
        conn
    }

    fn pump_read(&mut self, key: (u32, u64), ctx: &mut Ctx<'_>) {
        let me = ctx.me();
        loop {
            let (offset, chunk) = {
                let Some(st) = self.reads.get(&key) else {
                    return;
                };
                if st.inflight >= READ_WINDOW || st.remaining == 0 {
                    break;
                }
                (st.next_offset, 0u64)
            };
            let _ = chunk;
            let (stages, take) = with_cluster(ctx.world, |cl, _w| {
                let st = self.reads.get(&key).expect("stream vanished");
                let take = st.remaining.min(cl.costs.stream_chunk_bytes);
                let vm = self.vm;
                let fs_file =
                    cl.vm(vm).fs.lookup(&st.block.path()).unwrap_or_else(|| {
                        panic!("datanode missing block file {}", st.block.path())
                    });
                let extents = cl
                    .vm(vm)
                    .fs
                    .resolve(fs_file, offset, take)
                    .expect("block read past end");
                let mut stages = Vec::new();
                for e in extents {
                    stages.extend(guest_disk_read(
                        cl,
                        vm,
                        e.image_offset,
                        e.len,
                        CpuCategory::DatanodeApp,
                    ));
                }
                let vcpu = cl.vm(vm).vcpu;
                let setup = self.reads.get(&key).expect("stream").setup_pending;
                let setup_cycles = if setup {
                    cl.costs.dn_stream_setup_cycles
                } else {
                    0
                };
                stages.push(Stage::cpu(
                    vcpu,
                    Self::dn_cycles(cl, take) + setup_cycles,
                    CpuCategory::DatanodeApp,
                ));
                (stages, take)
            });
            let span = {
                let st = self.reads.get_mut(&key).expect("stream vanished");
                st.setup_pending = false;
                st.next_offset += take;
                st.remaining -= take;
                st.inflight += 1;
                st.span
            };
            ctx.chain_on(stages, me, ChunkRead { key, bytes: take }, span);
        }
    }
}

impl Actor for Datanode {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        // -- control side-channels -----------------------------------------
        let msg = match downcast::<DnReadReq>(msg) {
            Ok(req) => {
                self.pending_reads.insert((req.conn.raw(), req.tag), *req);
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<DnWriteChunk>(msg) {
            Ok(wc) => {
                let key = (wc.conn.raw(), wc.tag);
                self.writes
                    .entry(key)
                    .or_insert_with(|| WriteStream {
                        side: Side::B, // fixed up on first ConnRecv
                        queued: VecDeque::new(),
                    })
                    .queued
                    .push_back(*wc);
                return;
            }
            Err(m) => m,
        };

        // -- costed arrivals -------------------------------------------------
        let msg = match downcast::<ConnRecv>(msg) {
            Ok(r) => {
                let key = (r.conn.raw(), r.tag);
                if let Some(req) = self.pending_reads.remove(&key) {
                    // The read request header arrived: start streaming.
                    let now = ctx.now();
                    let span = ctx.world.spans.start("dn_read", req.span, now);
                    self.reads.insert(
                        key,
                        ReadStream {
                            conn: r.conn,
                            side: r.side,
                            block: req.block,
                            next_offset: req.offset,
                            remaining: req.len,
                            inflight: 0,
                            setup_pending: req.setup,
                            span,
                        },
                    );
                    self.pump_read(key, ctx);
                } else if self.writes.contains_key(&key) {
                    // A write chunk arrived: append + write through virtio-blk.
                    let me = ctx.me();
                    let (stages, meta) = {
                        let st = self.writes.get_mut(&key).expect("just checked");
                        st.side = r.side;
                        let meta = st
                            .queued
                            .pop_front()
                            .expect("write chunk arrived without header");
                        let vm = self.vm;
                        let stages = with_cluster(ctx.world, |cl, _w| {
                            let fs = &mut cl.vm_mut(vm).fs;
                            let path = meta.block.path();
                            let file = match fs.lookup(&path) {
                                Some(f) => f,
                                None => fs.create(&path).expect("fresh block file"),
                            };
                            let ext = fs.append(file, meta.bytes);
                            let mut stages = guest_disk_write(
                                cl,
                                vm,
                                ext.image_offset,
                                meta.bytes,
                                CpuCategory::DatanodeApp,
                            );
                            let vcpu = cl.vm(vm).vcpu;
                            stages.push(Stage::cpu(
                                vcpu,
                                Self::dn_cycles(cl, meta.bytes),
                                CpuCategory::DatanodeApp,
                            ));
                            stages
                        });
                        (stages, meta)
                    };
                    ctx.chain(stages, me, ChunkWritten { key, meta });
                }
                return;
            }
            Err(m) => m,
        };

        // -- chunk completions -------------------------------------------------
        let msg = match downcast::<ChunkRead>(msg) {
            Ok(cr) => {
                let st = self.reads.get(&cr.key).expect("stream vanished");
                ctx.send(
                    st.conn,
                    ConnSend {
                        dir: st.side,
                        bytes: cr.bytes,
                        tag: cr.key.1,
                        notify: true,
                        span: st.span,
                    },
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<ChunkWritten>(msg) {
            Ok(cw) => {
                let key = cw.key;
                let side = self.writes.get(&key).expect("write stream vanished").side;
                // Ack the chunk back upstream (small frame).
                ctx.send(
                    ActorId::from_raw(key.0),
                    ConnSend {
                        dir: side,
                        bytes: 64,
                        tag: key.1,
                        notify: false,
                        span: SpanId::NONE,
                    },
                );
                // Forward down the replica pipeline.
                let my_pos = cw.meta.pipeline.iter().position(|&d| d == self.ix);
                let next = my_pos.and_then(|p| cw.meta.pipeline.get(p + 1)).copied();
                if let Some(next) = next {
                    let conn = self.ensure_fwd_conn(ctx, next);
                    let fwd_tag = *self.fwd_tags.entry(key).or_insert_with(|| {
                        self.next_tag += 1;
                        // disambiguate streams from different upstreams
                        (self.ix.0 as u64) << 48 | self.next_tag
                    });
                    let next_actor =
                        ctx.world.ext.get::<HdfsMeta>().expect("meta").datanodes[next.0].actor;
                    ctx.send(
                        next_actor,
                        DnWriteChunk {
                            conn,
                            tag: fwd_tag,
                            path: cw.meta.path.clone(),
                            block: cw.meta.block,
                            bytes: cw.meta.bytes,
                            last_of_block: cw.meta.last_of_block,
                            pipeline: cw.meta.pipeline.clone(),
                        },
                    );
                    ctx.send(
                        conn,
                        ConnSend {
                            dir: Side::A,
                            bytes: cw.meta.bytes,
                            tag: fwd_tag,
                            notify: false,
                            span: SpanId::NONE,
                        },
                    );
                }
                // The primary reports finalization (with the whole
                // pipeline) once its local copy is complete.
                if cw.meta.last_of_block && my_pos == Some(0) {
                    let (len, nn) = with_cluster(ctx.world, |cl, w| {
                        let fs = &cl.vm(self.vm).fs;
                        let f = fs.lookup(&cw.meta.block.path()).expect("finalized block");
                        let meta = w.ext.get::<HdfsMeta>().expect("meta");
                        (fs.size(f), meta.namenode)
                    });
                    if let Some(nn) = nn {
                        ctx.send(
                            nn,
                            NnFinalizeBlock {
                                path: cw.meta.path.clone(),
                                block: cw.meta.block,
                                replicas: cw.meta.pipeline.clone(),
                                len,
                            },
                        );
                    }
                }
                return;
            }
            Err(m) => m,
        };

        // -- send-window acks ---------------------------------------------------
        if let Ok(sent) = downcast::<ConnSent>(msg) {
            let key = (sent.conn.raw(), sent.tag);
            let mut finished = false;
            if let Some(st) = self.reads.get_mut(&key) {
                st.inflight -= 1;
                finished = st.remaining == 0 && st.inflight == 0;
            }
            if finished {
                let st = self.reads.remove(&key).expect("just checked");
                let now = ctx.now();
                ctx.world.spans.end(st.span, now);
            } else {
                self.pump_read(key, ctx);
            }
        }
    }
}

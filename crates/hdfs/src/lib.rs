//! # vread-hdfs — the HDFS substrate
//!
//! A re-implementation of the Hadoop-1.2.1 HDFS data path the paper
//! evaluates against, running on the simulated virtualization stack:
//!
//! * [`namenode`] — metadata service: block lookup
//!   (`getBlockLocations`), allocation with HVE-style topology-aware
//!   placement, finalization, and the new-block notifications that drive
//!   the vRead daemon's mount refresh;
//! * [`datanode`] — block server: streams block files from its VM's
//!   virtual disk through virtio-blk and ships them over the virtio-net
//!   TCP connection (the Figure 1 vanilla flow), and accepts the write
//!   pipeline;
//! * [`client`] — `DFSClient` with the paper's `read1`/`read2`
//!   semantics and a pluggable [`client::BlockReadPath`], so the vanilla
//!   path and the vRead path differ only by configuration;
//! * [`populate`] — experiment helpers that lay out files block-by-block
//!   on chosen datanodes without simulating ingest;
//! * [`meta`] — shared metadata types ([`meta::HdfsMeta`] lives in the
//!   world's extension blackboard).
//!
//! # Example (assembled cluster)
//!
//! See `examples/hadoop_cluster.rs` at the workspace root, or the
//! end-to-end tests in `tests/`.

#![forbid(unsafe_code)]

pub mod client;
pub mod datanode;
pub mod meta;
pub mod namenode;
pub mod populate;

pub use client::{
    add_client, BlockReadPath, BlockReq, ClientShared, DfsClient, DfsRead, DfsReadDone, DfsWrite,
    DfsWriteDone, PathEvent, VanillaPath,
};
pub use datanode::{add_datanode, Datanode};
pub use meta::{BlockId, DatanodeIx, DnInfo, FileMeta, HdfsMeta, LocatedBlock};
pub use namenode::{add_namenode, BlockAdded, Namenode};
pub use populate::{populate_file, warm_file, Placement};

/// Installs a complete HDFS deployment: metadata, namenode (on
/// `namenode_vm`), and one datanode per entry of `datanode_vms`.
/// [`vread_host::Cluster`] must already be installed in `w.ext`.
///
/// Returns `(namenode actor, datanode indices)`.
pub fn deploy_hdfs(
    w: &mut vread_sim::World,
    namenode_vm: vread_host::VmId,
    datanode_vms: &[vread_host::VmId],
) -> (vread_sim::ActorId, Vec<DatanodeIx>) {
    let mut meta = HdfsMeta::new();
    meta.namenode_vm = Some(namenode_vm);
    w.ext.insert(meta);
    let nn = add_namenode(w);
    let dns = datanode_vms
        .iter()
        .map(|&vm| add_datanode(w, vm).1)
        .collect();
    (nn, dns)
}

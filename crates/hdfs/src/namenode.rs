//! The HDFS namenode: block lookups, allocation, finalization,
//! new-block notifications.
//!
//! The namenode is an actor whose state is the shared [`HdfsMeta`]. Every
//! RPC costs [`vread_host::Costs::namenode_rpc_cycles`] on the vCPU of the
//! VM hosting the namenode (the paper co-locates it with the client VM).
//! When a block is finalized it notifies all registered observers — this
//! is the hook the vRead daemon uses to refresh its mounted view of the
//! datanode's disk image (`vRead_update`, §3.2 of the paper).

use vread_host::cluster::Cluster;
use vread_sim::prelude::*;

use crate::meta::{BlockId, DatanodeIx, HdfsMeta, LocatedBlock};

/// RPC: fetch the located blocks of `path`.
#[derive(Debug, Clone)]
pub struct NnGetLocations {
    /// Where to deliver [`NnLocations`].
    pub reply_to: ActorId,
    /// Caller token, echoed back.
    pub token: u64,
    /// File path.
    pub path: String,
}

/// Reply to [`NnGetLocations`].
#[derive(Debug, Clone)]
pub struct NnLocations {
    /// Caller token.
    pub token: u64,
    /// The file's blocks, or `None` if the file does not exist.
    pub blocks: Option<Vec<LocatedBlock>>,
}

/// RPC: allocate a new block for an output stream on `path`.
#[derive(Debug, Clone)]
pub struct NnAddBlock {
    /// Where to deliver [`NnBlockAllocated`].
    pub reply_to: ActorId,
    /// Caller token, echoed back.
    pub token: u64,
    /// File being written.
    pub path: String,
    /// The writer's VM (for topology-aware placement).
    pub client_vm: vread_host::cluster::VmId,
}

/// Reply to [`NnAddBlock`].
#[derive(Debug, Clone)]
pub struct NnBlockAllocated {
    /// Caller token.
    pub token: u64,
    /// New block id.
    pub block: BlockId,
    /// Chosen replica datanodes, primary first.
    pub replicas: Vec<DatanodeIx>,
    /// Capacity of the block (the configured block size).
    pub capacity: u64,
}

/// Notification: a datanode finished writing `block` of `path`.
#[derive(Debug, Clone)]
pub struct NnFinalizeBlock {
    /// File the block belongs to.
    pub path: String,
    /// The finalized block.
    pub block: BlockId,
    /// The datanodes holding it, primary first (the write pipeline).
    pub replicas: Vec<DatanodeIx>,
    /// Final length.
    pub len: u64,
}

/// Broadcast to observers when a block becomes readable.
#[derive(Debug, Clone, Copy)]
pub struct BlockAdded {
    /// The datanode that stored the block.
    pub dn: DatanodeIx,
    /// The new block.
    pub block: BlockId,
}

/// The namenode actor. Register with [`add_namenode`].
pub struct Namenode {
    rr: usize,
}

/// Creates the namenode actor for the VM recorded in
/// [`HdfsMeta::namenode_vm`] and stores its address in the metadata.
///
/// # Panics
///
/// Panics if [`HdfsMeta`] is not installed in the world extensions.
pub fn add_namenode(w: &mut World) -> ActorId {
    let nn = w.add_actor("namenode", Namenode { rr: 0 });
    w.ext
        .get_mut::<HdfsMeta>()
        .expect("HdfsMeta not installed")
        .namenode = Some(nn);
    nn
}

impl Namenode {
    /// The vCPU thread the namenode's work runs on.
    fn vcpu(&self, ctx: &Ctx<'_>) -> ThreadId {
        let meta = ctx.world.ext.get::<HdfsMeta>().expect("HdfsMeta missing");
        let vm = meta.namenode_vm.expect("namenode VM not set");
        let cl = ctx.world.ext.get::<Cluster>().expect("Cluster missing");
        cl.vm(vm).vcpu
    }

    /// Chooses replicas for a new block: with topology awareness the
    /// primary is a datanode co-located with the writer; remaining
    /// replicas round-robin across the other datanodes.
    fn place(
        &mut self,
        meta: &HdfsMeta,
        cl: &Cluster,
        client_vm: vread_host::cluster::VmId,
    ) -> Vec<DatanodeIx> {
        let n = meta.datanodes.len();
        assert!(n > 0, "no datanodes registered");
        let client_host = cl.vm(client_vm).host;
        let mut order: Vec<DatanodeIx> = Vec::with_capacity(meta.replication.max(1));
        if let Some(forced) = meta.forced_primary {
            order.push(forced);
        }
        if order.is_empty() && meta.topology_aware {
            if let Some(ix) = meta
                .datanodes
                .iter()
                .position(|d| cl.vm(d.vm).host == client_host)
            {
                order.push(DatanodeIx(ix));
            }
        }
        let mut i = self.rr;
        while order.len() < meta.replication.max(1).min(n) {
            let cand = DatanodeIx(i % n);
            i += 1;
            if !order.contains(&cand) {
                order.push(cand);
            }
        }
        self.rr = i % n.max(1);
        order
    }
}

impl Actor for Namenode {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        let rpc_cycles = {
            let cl = ctx.world.ext.get::<Cluster>().expect("Cluster missing");
            cl.costs.namenode_rpc_cycles
        };
        let vcpu = self.vcpu(ctx);

        let msg = match downcast::<NnGetLocations>(msg) {
            Ok(req) => {
                let blocks = ctx
                    .world
                    .ext
                    .get::<HdfsMeta>()
                    .expect("HdfsMeta missing")
                    .file(&req.path)
                    .map(|f| f.blocks.clone());
                ctx.chain(
                    vec![Stage::cpu(vcpu, rpc_cycles, CpuCategory::Namenode)],
                    req.reply_to,
                    NnLocations {
                        token: req.token,
                        blocks,
                    },
                );
                return;
            }
            Err(m) => m,
        };

        let msg = match downcast::<NnAddBlock>(msg) {
            Ok(req) => {
                let (block, replicas, capacity) = {
                    // Immutable topology reads first, then the mutation.
                    let replicas = {
                        let meta = ctx.world.ext.get::<HdfsMeta>().expect("meta");
                        let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                        self.place(meta, cl, req.client_vm)
                    };
                    let meta = ctx.world.ext.get_mut::<HdfsMeta>().expect("meta");
                    (meta.alloc_block(), replicas, meta.block_bytes)
                };
                ctx.chain(
                    vec![Stage::cpu(vcpu, rpc_cycles, CpuCategory::Namenode)],
                    req.reply_to,
                    NnBlockAllocated {
                        token: req.token,
                        block,
                        replicas,
                        capacity,
                    },
                );
                return;
            }
            Err(m) => m,
        };

        if let Ok(fin) = downcast::<NnFinalizeBlock>(msg) {
            let observers = {
                let meta = ctx.world.ext.get_mut::<HdfsMeta>().expect("meta");
                let offset = meta.file(&fin.path).map(|f| f.size()).unwrap_or(0);
                meta.add_block(
                    &fin.path,
                    LocatedBlock {
                        block: fin.block,
                        offset,
                        len: fin.len,
                        replicas: fin.replicas.clone(),
                    },
                );
                meta.observers.clone()
            };
            // Namenode CPU for the block report, then fan out one
            // notification per replica location (the vRead daemons'
            // mount-refresh trigger).
            let me = ctx.me();
            ctx.chain(
                vec![Stage::cpu(vcpu, rpc_cycles, CpuCategory::Namenode)],
                me,
                (),
            );
            for obs in observers {
                for &dn in &fin.replicas {
                    ctx.send(
                        obs,
                        BlockAdded {
                            dn,
                            block: fin.block,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_host::costs::Costs;

    struct Capture {
        got: std::rc::Rc<std::cell::RefCell<Vec<String>>>,
    }
    impl Actor for Capture {
        fn handle(&mut self, msg: BoxMsg, _ctx: &mut Ctx<'_>) {
            let msg = match downcast::<NnLocations>(msg) {
                Ok(l) => {
                    self.got
                        .borrow_mut()
                        .push(format!("loc:{}", l.blocks.map(|b| b.len()).unwrap_or(0)));
                    return;
                }
                Err(m) => m,
            };
            let msg = match downcast::<NnBlockAllocated>(msg) {
                Ok(a) => {
                    self.got
                        .borrow_mut()
                        .push(format!("alloc:{}:{}", a.block.0, a.replicas.len()));
                    return;
                }
                Err(m) => m,
            };
            if let Ok(b) = downcast::<BlockAdded>(msg) {
                self.got.borrow_mut().push(format!("added:{}", b.block.0));
            }
        }
    }

    fn setup() -> (World, ActorId, std::rc::Rc<std::cell::RefCell<Vec<String>>>) {
        let mut w = World::new(3);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let client_vm = cl.add_vm(&mut w, h, "client");
        let dn_vm = cl.add_vm(&mut w, h, "dn");
        let mut meta = HdfsMeta::new();
        meta.namenode_vm = Some(client_vm);
        // a dummy datanode registration (actor id unused here)
        meta.register_datanode(ActorId::from_raw(999), dn_vm);
        w.ext.insert(cl);
        w.ext.insert(meta);
        let got = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        let cap = w.add_actor("cap", Capture { got: got.clone() });
        let nn = add_namenode(&mut w);
        let _ = (client_vm, dn_vm);
        (w, nn, got_with(cap, got))
    }

    fn got_with(
        _cap: ActorId,
        got: std::rc::Rc<std::cell::RefCell<Vec<String>>>,
    ) -> std::rc::Rc<std::cell::RefCell<Vec<String>>> {
        got
    }

    #[test]
    fn lookup_missing_file_returns_none() {
        let (mut w, nn, got) = setup();
        let cap = ActorId::from_raw(0); // Capture was the first actor added
        w.send_now(
            nn,
            NnGetLocations {
                reply_to: cap,
                token: 1,
                path: "/nope".into(),
            },
        );
        w.run();
        assert_eq!(got.borrow().as_slice(), ["loc:0"]);
    }

    #[test]
    fn allocate_finalize_then_lookup_and_notify() {
        let (mut w, nn, got) = setup();
        let cap = ActorId::from_raw(0);
        // vRead daemons subscribe as observers
        w.ext.get_mut::<HdfsMeta>().unwrap().observers.push(cap);
        let client_vm = vread_host::cluster::VmId(0);
        w.send_now(
            nn,
            NnAddBlock {
                reply_to: cap,
                token: 2,
                path: "/f".into(),
                client_vm,
            },
        );
        w.run();
        assert_eq!(got.borrow().as_slice(), ["alloc:1:1"]);
        w.send_now(
            nn,
            NnFinalizeBlock {
                path: "/f".into(),
                block: BlockId(1),
                replicas: vec![DatanodeIx(0)],
                len: 4096,
            },
        );
        w.send_now(
            nn,
            NnGetLocations {
                reply_to: cap,
                token: 3,
                path: "/f".into(),
            },
        );
        w.run();
        assert_eq!(got.borrow().as_slice(), ["alloc:1:1", "added:1", "loc:1"]);
        let meta = w.ext.get::<HdfsMeta>().unwrap();
        assert_eq!(meta.file("/f").unwrap().size(), 4096);
    }
}

//! Criterion micro-benchmarks of the simulation engine: event
//! throughput, scheduler churn, chain dispatch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vread_sim::prelude::*;

struct PingPong {
    peer: Option<ActorId>,
    left: u32,
}

struct Ball;

impl Actor for PingPong {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() || msg.is::<Ball>() {
            if self.left == 0 {
                return;
            }
            self.left -= 1;
            let to = self.peer.unwrap_or(ctx.me());
            ctx.send(to, Ball);
        }
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    c.bench_function("engine/message_pingpong_100k", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(1);
                let a = w.add_actor(
                    "a",
                    PingPong {
                        peer: None,
                        left: 100_000,
                    },
                );
                w.send_now(a, Start);
                w
            },
            |mut w| {
                w.run();
                w.events_processed()
            },
            BatchSize::SmallInput,
        );
    });
}

struct Burster {
    thread: ThreadId,
    left: u32,
}
struct Done;
impl Actor for Burster {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() || msg.is::<Done>() {
            if self.left == 0 {
                return;
            }
            self.left -= 1;
            let me = ctx.me();
            ctx.cpu(self.thread, 50_000, CpuCategory::Other, me, Done);
        }
    }
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("engine/sched_8threads_4cores_10k_bursts", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(1);
                let h = w.add_host("h", 4, 2.0);
                for i in 0..8 {
                    let t = w.add_thread(h, &format!("t{i}"));
                    let a = w.add_actor(
                        &format!("b{i}"),
                        Burster {
                            thread: t,
                            left: 10_000 / 8,
                        },
                    );
                    w.send_now(a, Start);
                }
                w
            },
            |mut w| {
                w.run();
                w.now()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_chains(c: &mut Criterion) {
    struct Fin;
    struct Sink;
    impl Actor for Sink {
        fn handle(&mut self, _msg: BoxMsg, _ctx: &mut Ctx<'_>) {}
    }
    c.bench_function("engine/chain_5stage_x2000", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(1);
                let h = w.add_host("h", 4, 2.0);
                let ts: Vec<ThreadId> = (0..5).map(|i| w.add_thread(h, &format!("t{i}"))).collect();
                let sink = w.add_actor("sink", Sink);
                for _ in 0..2000 {
                    let st: Vec<Stage> = ts
                        .iter()
                        .map(|&t| Stage::cpu(t, 10_000, CpuCategory::Other))
                        .collect();
                    w.start_chain(st, sink, Fin);
                }
                w
            },
            |mut w| {
                w.run();
                w.events_processed()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_chain_slab(c: &mut Criterion) {
    // Slab churn: many short-lived chains recycling the same slots, with
    // both inline (≤8 stages) and spilled (>8) stage lists.
    struct Fin;
    struct Sink;
    impl Actor for Sink {
        fn handle(&mut self, _msg: BoxMsg, _ctx: &mut Ctx<'_>) {}
    }
    c.bench_function("engine/chain_slab_churn_10k", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(1);
                let sink = w.add_actor("sink", Sink);
                (w, sink)
            },
            |(mut w, sink)| {
                for i in 0..10_000u32 {
                    // 6 inline stages or 10 spilled, alternating.
                    let n = if i % 2 == 0 { 6 } else { 10 };
                    let st: Vec<Stage> = (0..n)
                        .map(|_| Stage::Delay {
                            dur: SimDuration::from_nanos(1),
                        })
                        .collect();
                    w.start_chain(st, sink, Fin);
                    w.run();
                }
                w.events_processed()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_metrics(c: &mut Criterion) {
    // Interned-id hot path: 100k counter bumps + sample records through
    // pre-registered ids (what migrated call sites do per event).
    c.bench_function("engine/metrics_interned_100k", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(1);
                let c = w.metrics.register_counter("bytes");
                let s = w.metrics.register_sample("delay_ms");
                (w, c, s)
            },
            |(mut w, cid, sid)| {
                for i in 0..100_000u32 {
                    w.metrics.add_to(cid, 512.0);
                    w.metrics.record_to(sid, f64::from(i % 97));
                }
                w.metrics.counter_value(cid)
            },
            BatchSize::SmallInput,
        );
    });
    // String-keyed path for comparison (resolves the name every call).
    c.bench_function("engine/metrics_string_100k", |b| {
        b.iter_batched(
            || World::new(1),
            |mut w| {
                for i in 0..100_000u32 {
                    w.metrics.add("bytes", 512.0);
                    w.metrics.sample("delay_ms", f64::from(i % 97));
                }
                w.metrics.counter("bytes")
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_throughput, bench_scheduler, bench_chains, bench_chain_slab, bench_metrics
}
criterion_main!(benches);

//! Criterion benchmarks of the end-to-end simulated data paths — how
//! fast the *simulator* itself executes a full HDFS read scenario, per
//! path. (The paper-facing results come from `repro`; these track the
//! harness's own performance.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vread_bench::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};
use vread_core::VreadRegistry;
use vread_hdfs::client::{DfsRead, DfsReadDone};
use vread_sim::prelude::*;

struct OneShot {
    client: ActorId,
    bytes: u64,
}
impl Actor for OneShot {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let me = ctx.me();
            ctx.send(
                self.client,
                DfsRead {
                    req: 1,
                    reply_to: me,
                    path: "/bench".into(),
                    offset: 0,
                    len: self.bytes,
                    pread: false,
                },
            );
        } else if msg.is::<DfsReadDone>() {
            ctx.metrics().incr("done");
        }
    }
}

fn scenario(path: ReadPath) -> World {
    let mut tb = Testbed::build(TestbedOpts::new().path(path));
    tb.populate("/bench", 64 << 20, Locality::CoLocated);
    let client = tb.make_client();
    let a = tb.w.add_actor(
        "app",
        OneShot {
            client,
            bytes: 64 << 20,
        },
    );
    tb.w.send_now(a, Start);
    tb.w
}

fn bench_paths(c: &mut Criterion) {
    for (name, path) in [
        ("datapath/vanilla_64mb_read", ReadPath::Vanilla),
        ("datapath/vread_64mb_read", ReadPath::VreadRdma),
        ("datapath/vread_tcp_64mb_read", ReadPath::VreadTcp),
    ] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || scenario(path),
                |mut w| {
                    w.run();
                    assert_eq!(w.metrics.counter("done"), 1.0);
                    w.events_processed()
                },
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_ring_stage_build(c: &mut Criterion) {
    use vread_core::RingSpec;
    use vread_host::costs::Costs;
    let costs = Costs::default();
    let ring = RingSpec::from_costs(&costs);
    let t = ThreadId::from_raw(0);
    c.bench_function("datapath/ring_stage_build_256k", |b| {
        b.iter(|| {
            let mut st = ring.daemon_push_stages(&costs, t, 256 * 1024);
            st.extend(ring.guest_pop_stages(&costs, t, 256 * 1024));
            st.len()
        });
    });
}

fn bench_remote_setup(c: &mut Criterion) {
    // daemon-to-daemon connection establishment + registry lookups
    c.bench_function("datapath/testbed_build_with_vread", |b| {
        b.iter(|| {
            let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::VreadRdma));
            let _c = tb.make_client();
            assert!(tb.w.ext.get::<VreadRegistry>().is_some());
            tb.w.events_processed()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_paths, bench_ring_stage_build, bench_remote_setup
}
criterion_main!(benches);

//! Typed fault plans for scenarios: what breaks, when, and how the run
//! degraded.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`]s — each a simulated instant
//! plus a [`FaultKind`] naming its target symbolically (host/VM names
//! from the scenario). `ScenarioSpec::run` resolves the names against the
//! assembled cluster, lowers each kind to the matching
//! [`FaultAction`](vread_sim::fault::FaultAction) from the subsystem
//! crates, and arms them with
//! [`schedule_faults`](vread_sim::fault::schedule_faults). Because the
//! actions fire through ordinary timers, a fault run is exactly as
//! deterministic as a fault-free one.
//!
//! After the workload finishes, [`collect_fault_report`] condenses the
//! degradation metrics (fallback reads, replica failovers, recovery
//! latency, throughput inside the fault window) into a [`FaultReport`]
//! appended to the scenario report.

use std::collections::{HashMap, HashSet};

use crate::json::{n, obj, Json};
use crate::spec::{opt_u64, parse_err, req, req_str, req_u64, SpecError};

use vread_core::{CrashDaemon, CrashDatanodeVm, RestartDaemon};
use vread_host::cluster::{Cluster, HostIx, VmId};
use vread_host::fault::DropHostCache;
use vread_net::fault::DegradeLink;
use vread_sim::fault::{FaultAction, SlowDisk, StallThread};
use vread_sim::prelude::*;

/// What breaks. Targets are symbolic scenario names, resolved when the
/// scenario runs.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Kill the vRead daemon on a host (clients fall back to vanilla).
    DaemonCrash {
        /// Host name.
        host: String,
    },
    /// Restart a previously crashed daemon (re-registration +
    /// `RemountAll`).
    DaemonRestart {
        /// Host name.
        host: String,
    },
    /// Degrade a host's NIC: divide bandwidth by `factor` and add ~1 ms
    /// latency for `duration_ms` (RDMA/RoCE link flap).
    LinkFlap {
        /// Host name.
        host: String,
        /// Bandwidth divisor (≥ 1).
        factor: f64,
        /// Flap length in simulated milliseconds.
        duration_ms: u64,
    },
    /// Divide a host's disk bandwidth by `factor` for `duration_ms`.
    DiskSlow {
        /// Host name.
        host: String,
        /// Bandwidth divisor (≥ 1).
        factor: f64,
        /// Slowdown length in simulated milliseconds.
        duration_ms: u64,
    },
    /// Drop the host page cache (and the guest caches of its VMs).
    CacheDrop {
        /// Host name.
        host: String,
    },
    /// Monopolize a VM's vhost thread with a synthetic burst.
    VhostStall {
        /// VM name.
        vm: String,
        /// Stall length in simulated milliseconds.
        duration_ms: u64,
    },
    /// Crash a datanode VM's server process (vanilla readers fail over
    /// to replicas; vRead keeps serving through the host mounts).
    VmCrash {
        /// Datanode VM name.
        vm: String,
    },
}

impl FaultKind {
    /// The JSON `kind` string.
    pub fn kind_str(&self) -> &'static str {
        match self {
            FaultKind::DaemonCrash { .. } => "daemon-crash",
            FaultKind::DaemonRestart { .. } => "daemon-restart",
            FaultKind::LinkFlap { .. } => "link-flap",
            FaultKind::DiskSlow { .. } => "disk-slow",
            FaultKind::CacheDrop { .. } => "cache-drop",
            FaultKind::VhostStall { .. } => "vhost-stall",
            FaultKind::VmCrash { .. } => "vm-crash",
        }
    }

    /// For transient faults, how long until the restore fires.
    pub fn duration_ms(&self) -> Option<u64> {
        match self {
            FaultKind::LinkFlap { duration_ms, .. }
            | FaultKind::DiskSlow { duration_ms, .. }
            | FaultKind::VhostStall { duration_ms, .. } => Some(*duration_ms),
            FaultKind::DaemonCrash { .. }
            | FaultKind::DaemonRestart { .. }
            | FaultKind::CacheDrop { .. }
            | FaultKind::VmCrash { .. } => None,
        }
    }
}

/// One planned fault: a simulated instant plus what happens then.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Fire time in simulated milliseconds from scenario start.
    pub at_ms: u64,
    /// The fault.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Parses one entry of a scenario's `"faults"` array.
    pub(crate) fn from_json(j: &Json) -> Result<FaultSpec, SpecError> {
        let ctx = "fault";
        let at_ms = req_u64(j, "at_ms", ctx)?;
        let factor = |j: &Json| -> Result<f64, SpecError> {
            req(j, "factor", ctx)?
                .as_f64()
                .ok_or_else(|| parse_err("fault: field \"factor\" must be a number"))
        };
        let kind = match req_str(j, "kind", ctx)?.as_str() {
            "daemon-crash" => FaultKind::DaemonCrash {
                host: req_str(j, "host", ctx)?,
            },
            "daemon-restart" => FaultKind::DaemonRestart {
                host: req_str(j, "host", ctx)?,
            },
            "link-flap" => FaultKind::LinkFlap {
                host: req_str(j, "host", ctx)?,
                factor: factor(j)?,
                duration_ms: opt_u64(j, "duration_ms", 100, ctx)?,
            },
            "disk-slow" => FaultKind::DiskSlow {
                host: req_str(j, "host", ctx)?,
                factor: factor(j)?,
                duration_ms: opt_u64(j, "duration_ms", 100, ctx)?,
            },
            "cache-drop" => FaultKind::CacheDrop {
                host: req_str(j, "host", ctx)?,
            },
            "vhost-stall" => FaultKind::VhostStall {
                vm: req_str(j, "vm", ctx)?,
                duration_ms: opt_u64(j, "duration_ms", 100, ctx)?,
            },
            "vm-crash" => FaultKind::VmCrash {
                vm: req_str(j, "vm", ctx)?,
            },
            other => return Err(parse_err(format!("fault: unknown kind {other:?}"))),
        };
        Ok(FaultSpec { at_ms, kind })
    }
}

/// Name-resolution context handed to [`build_fault_actions`] by the
/// scenario runner.
pub(crate) struct FaultTargets<'a> {
    /// Host name → index.
    pub hosts: &'a HashMap<String, HostIx>,
    /// VM name → id.
    pub vms: &'a HashMap<String, VmId>,
    /// VMs that run a datanode (the only valid `vm-crash` targets).
    pub datanodes: &'a HashSet<VmId>,
}

/// Armed plan: instants paired with the action each fires.
pub(crate) type FaultSchedule = Vec<(SimTime, Box<dyn FaultAction>)>;

/// Resolves a plan against the assembled cluster, lowering each
/// [`FaultKind`] to the subsystem-level action it injects.
pub(crate) fn build_fault_actions(
    faults: &[FaultSpec],
    w: &World,
    targets: &FaultTargets<'_>,
) -> Result<FaultSchedule, SpecError> {
    let cl = w.ext.get::<Cluster>().expect("cluster");
    let host = |name: &str| -> Result<HostIx, SpecError> {
        targets
            .hosts
            .get(name)
            .copied()
            .ok_or_else(|| SpecError::Unresolved(format!("fault host {name}")))
    };
    let vm = |name: &str| -> Result<VmId, SpecError> {
        targets
            .vms
            .get(name)
            .copied()
            .ok_or_else(|| SpecError::Unresolved(format!("fault vm {name}")))
    };
    let check_factor = |factor: f64, kind: &str| -> Result<(), SpecError> {
        if !factor.is_finite() || !(1.0..=100_000.0).contains(&factor) {
            return Err(SpecError::Invalid(format!(
                "{kind} factor {factor} (must be in [1, 1e5])"
            )));
        }
        Ok(())
    };
    let mut plan: Vec<(SimTime, Box<dyn FaultAction>)> = Vec::with_capacity(faults.len());
    for f in faults {
        let at = SimTime::ZERO + SimDuration::from_millis(f.at_ms);
        let action: Box<dyn FaultAction> = match &f.kind {
            FaultKind::DaemonCrash { host: h } => Box::new(CrashDaemon { host: host(h)? }),
            FaultKind::DaemonRestart { host: h } => Box::new(RestartDaemon { host: host(h)? }),
            FaultKind::LinkFlap {
                host: h,
                factor,
                duration_ms,
            } => {
                check_factor(*factor, "link-flap")?;
                Box::new(DegradeLink {
                    link: cl.hosts[host(h)?.0].nic,
                    factor: *factor,
                    extra_latency: SimDuration::from_millis(1),
                    duration: SimDuration::from_millis(*duration_ms),
                })
            }
            FaultKind::DiskSlow {
                host: h,
                factor,
                duration_ms,
            } => {
                check_factor(*factor, "disk-slow")?;
                Box::new(SlowDisk {
                    dev: cl.hosts[host(h)?.0].dev,
                    factor: *factor,
                    duration: SimDuration::from_millis(*duration_ms),
                })
            }
            FaultKind::CacheDrop { host: h } => Box::new(DropHostCache { host: host(h)? }),
            FaultKind::VhostStall { vm: v, duration_ms } => Box::new(StallThread {
                thread: cl.vm(vm(v)?).vhost,
                duration: SimDuration::from_millis(*duration_ms),
            }),
            FaultKind::VmCrash { vm: v } => {
                let id = vm(v)?;
                if !targets.datanodes.contains(&id) {
                    return Err(SpecError::Invalid(format!(
                        "vm-crash target {v} is not a datanode VM"
                    )));
                }
                Box::new(CrashDatanodeVm { vm: id })
            }
        };
        plan.push((at, action));
    }
    Ok(plan)
}

/// The fault window `[start, end]` of a plan in simulated time,
/// extending past the last fire time by each transient fault's restore
/// delay (crashes without a matching restart get a nominal 2 s tail so
/// throughput-during-fault still has a window to integrate over).
pub(crate) fn plan_window(faults: &[FaultSpec]) -> (SimTime, SimTime) {
    let start_ms = faults.iter().map(|f| f.at_ms).min().unwrap_or(0);
    let end_ms = faults
        .iter()
        .map(|f| f.at_ms + f.kind.duration_ms().unwrap_or(2_000))
        .max()
        .unwrap_or(0);
    (
        SimTime::ZERO + SimDuration::from_millis(start_ms),
        SimTime::ZERO + SimDuration::from_millis(end_ms),
    )
}

/// A seeded random fault plan over the given targets — the property-test
/// generator. Restricted to shapes that must terminate: at most one
/// `vm-crash` (always against a datanode), bounded factors/durations.
pub fn random_plan(
    seed: u64,
    hosts: &[&str],
    datanode_vms: &[&str],
    events: usize,
) -> Vec<FaultSpec> {
    assert!(!hosts.is_empty(), "random_plan needs at least one host");
    let mut rng = SimRng::new(seed ^ 0x000F_A171_7E57);
    let mut plan = Vec::with_capacity(events);
    let mut vm_crashed = false;
    for _ in 0..events {
        let at_ms = 5 + rng.below(800);
        let host = hosts[rng.below(hosts.len() as u64) as usize].to_owned();
        let factor = 2.0 + rng.next_f64() * 30.0;
        let duration_ms = 20 + rng.below(380);
        let kind = match rng.below(7) {
            0 => FaultKind::DaemonCrash { host },
            1 => FaultKind::DaemonRestart { host },
            2 => FaultKind::LinkFlap {
                host,
                factor,
                duration_ms,
            },
            3 => FaultKind::DiskSlow {
                host,
                factor,
                duration_ms,
            },
            4 => FaultKind::CacheDrop { host },
            5 if !datanode_vms.is_empty() => FaultKind::VhostStall {
                vm: datanode_vms[rng.below(datanode_vms.len() as u64) as usize].to_owned(),
                duration_ms,
            },
            6 if !datanode_vms.is_empty() && !vm_crashed => {
                vm_crashed = true;
                FaultKind::VmCrash {
                    vm: datanode_vms[rng.below(datanode_vms.len() as u64) as usize].to_owned(),
                }
            }
            _ => FaultKind::CacheDrop { host },
        };
        plan.push(FaultSpec { at_ms, kind });
    }
    plan
}

/// How a fault run degraded and recovered.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Fault actions fired (including restores).
    pub events: u64,
    /// Block reads the vRead path served through the vanilla fallback.
    pub fallback_reads: u64,
    /// Vanilla-path failovers to a surviving replica.
    pub failovers: u64,
    /// Timed-out reads retried on the same replica (degraded path).
    pub path_retries: u64,
    /// Daemon restarts observed.
    pub daemon_restarts: u64,
    /// Seconds from the last daemon restart to the next successful
    /// vRead read (`None` when either never happened).
    pub recovery_s: Option<f64>,
    /// Application throughput inside the fault window, MB/s (`None`
    /// when no chunk landed inside it).
    pub during_fault_mbs: Option<f64>,
}

impl FaultReport {
    /// JSON object with a fixed field order.
    pub(crate) fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, n);
        obj(vec![
            ("events", n(self.events as f64)),
            ("fallback_reads", n(self.fallback_reads as f64)),
            ("failovers", n(self.failovers as f64)),
            ("path_retries", n(self.path_retries as f64)),
            ("daemon_restarts", n(self.daemon_restarts as f64)),
            ("recovery_s", opt(self.recovery_s)),
            ("during_fault_mbs", opt(self.during_fault_mbs)),
        ])
    }
}

/// Condenses the degradation metrics of a finished fault run.
pub fn collect_fault_report(w: &World) -> FaultReport {
    let c = |k: &str| w.metrics.counter(k) as u64;
    let recovery_s = (|| {
        let restart = *w.metrics.samples("daemon_restart_at_s")?.values().last()?;
        let ok = w
            .metrics
            .samples("vread_ok_at_s")?
            .values()
            .iter()
            .copied()
            .find(|&t| t >= restart)?;
        Some(ok - restart)
    })();
    let during_fault_mbs = (|| {
        let trace = w.ext.get::<vread_sim::fault::FaultTrace>()?;
        let (start, end) = (
            trace.window_start.as_secs_f64(),
            trace.window_end.as_secs_f64(),
        );
        if end <= start {
            return None;
        }
        let at = w.metrics.samples("read_chunk_at_s")?.values();
        let bytes = w.metrics.samples("read_chunk_bytes")?.values();
        let inside: f64 = at
            .iter()
            .zip(bytes)
            .filter(|(t, _)| (start..=end).contains(*t))
            .map(|(_, b)| b)
            .sum();
        if inside == 0.0 {
            return None;
        }
        Some(inside / 1e6 / (end - start))
    })();
    FaultReport {
        events: c("fault_events"),
        fallback_reads: c("vread_fallbacks"),
        failovers: c("dfs_read_failovers"),
        path_retries: c("dfs_read_path_retries"),
        daemon_restarts: c("fault_daemon_restarts"),
        recovery_s,
        during_fault_mbs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_specs_parse_from_json() {
        let j = Json::parse(
            r#"[
                { "at_ms": 100, "kind": "daemon-crash", "host": "h1" },
                { "at_ms": 600, "kind": "daemon-restart", "host": "h1" },
                { "at_ms": 50, "kind": "link-flap", "host": "h2", "factor": 8.0 },
                { "at_ms": 70, "kind": "disk-slow", "host": "h2", "factor": 4.0, "duration_ms": 250 },
                { "at_ms": 90, "kind": "cache-drop", "host": "h1" },
                { "at_ms": 110, "kind": "vhost-stall", "vm": "dn1", "duration_ms": 40 },
                { "at_ms": 130, "kind": "vm-crash", "vm": "dn2" }
            ]"#,
        )
        .unwrap();
        let faults: Vec<FaultSpec> = j
            .as_array()
            .unwrap()
            .iter()
            .map(FaultSpec::from_json)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(faults.len(), 7);
        assert_eq!(
            faults[2].kind,
            FaultKind::LinkFlap {
                host: "h2".to_owned(),
                factor: 8.0,
                duration_ms: 100
            },
            "duration defaults to 100 ms"
        );
        assert_eq!(faults[6].kind.kind_str(), "vm-crash");
        let (start, end) = plan_window(&faults);
        assert_eq!(start.as_secs_f64(), 0.05);
        assert_eq!(end.as_secs_f64(), 2.6, "crash extends 2 s past fire");
    }

    #[test]
    fn unknown_kind_is_a_parse_error() {
        let j = Json::parse(r#"{ "at_ms": 1, "kind": "meteor-strike", "host": "h1" }"#).unwrap();
        assert!(matches!(FaultSpec::from_json(&j), Err(SpecError::Parse(_))));
    }

    #[test]
    fn random_plans_are_seed_deterministic_and_bounded() {
        let a = random_plan(9, &["h1", "h2"], &["dn1", "dn2"], 12);
        let b = random_plan(9, &["h1", "h2"], &["dn1", "dn2"], 12);
        assert_eq!(a, b);
        let crashes = a
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::VmCrash { .. }))
            .count();
        assert!(crashes <= 1, "at most one vm-crash per plan");
        assert_ne!(a, random_plan(10, &["h1", "h2"], &["dn1", "dn2"], 12));
    }
}

//! Result tables: aligned text for the terminal, JSON for tooling.

use std::fmt::Write as _;

use crate::json::{n, obj, s, Json};

/// One reproduced table/figure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id ("fig2", "table3", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form notes (scaling factors, paper-reported reference values).
    pub notes: Vec<String>,
}

/// One row of a [`Table`].
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label.
    pub label: String,
    /// Values, one per non-label column.
    pub values: Vec<f64>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.rows.push(Row {
            label: label.into(),
            values,
        });
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(self.columns.first().map(|c| c.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = 12usize;
        // header
        let _ = write!(
            out,
            "{:label_w$}",
            self.columns.first().map(String::as_str).unwrap_or("")
        );
        for c in self.columns.iter().skip(1) {
            let _ = write!(out, " {c:>col_w$}");
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{:label_w$}", r.label);
            for v in &r.values {
                if v.abs() >= 1000.0 {
                    let _ = write!(out, " {v:>col_w$.0}");
                } else {
                    let _ = write!(out, " {v:>col_w$.2}");
                }
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Serializes to pretty JSON (field order fixed, so the output is a
    /// deterministic function of the table's contents).
    pub fn to_json(&self) -> String {
        obj(vec![
            ("id", s(&self.id)),
            ("title", s(&self.title)),
            ("columns", Json::Arr(self.columns.iter().map(s).collect())),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("label", s(&r.label)),
                                (
                                    "values",
                                    Json::Arr(r.values.iter().map(|&v| n(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("notes", Json::Arr(self.notes.iter().map(s).collect())),
        ])
        .pretty()
    }
}

/// Percentage improvement of `new` over `old`.
///
/// Returns 0.0 whenever the ratio is undefined — `old` zero/negative or
/// either input non-finite — so tables built from degenerate
/// measurements never emit NaN/inf (which is not valid JSON).
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if !old.is_finite() || !new.is_finite() || old <= 0.0 {
        0.0
    } else {
        (new / old - 1.0) * 100.0
    }
}

/// Percentage reduction from `old` to `new`, with the same non-finite
/// hardening as [`improvement_pct`].
pub fn reduction_pct(old: f64, new: f64) -> f64 {
    if !old.is_finite() || !new.is_finite() || old <= 0.0 {
        0.0
    } else {
        (1.0 - new / old) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_json() {
        let mut t = Table::new("figX", "demo", &["scenario", "vanilla", "vread"]);
        t.row("co-located", vec![100.0, 120.0]);
        t.note("shape only");
        let s = t.render();
        assert!(s.contains("figX"));
        assert!(s.contains("co-located"));
        assert!(s.contains("120.00"));
        let j = t.to_json();
        assert!(j.contains("\"id\": \"figX\""));
    }

    #[test]
    fn pct_helpers() {
        assert!((improvement_pct(100.0, 150.0) - 50.0).abs() < 1e-9);
        assert!((reduction_pct(100.0, 80.0) - 20.0).abs() < 1e-9);
        assert_eq!(improvement_pct(0.0, 10.0), 0.0);
    }

    #[test]
    fn pct_helpers_never_emit_non_finite() {
        let degenerate = [
            (0.0, 10.0),
            (-5.0, 10.0),
            (f64::NAN, 10.0),
            (10.0, f64::NAN),
            (f64::INFINITY, 10.0),
            (10.0, f64::NEG_INFINITY),
            (0.0, 0.0),
        ];
        for (old, new) in degenerate {
            assert_eq!(improvement_pct(old, new), 0.0, "improvement({old}, {new})");
            assert_eq!(reduction_pct(old, new), 0.0, "reduction({old}, {new})");
        }
        // sane inputs still report real percentages
        assert!(improvement_pct(1e-300, 2e-300).is_finite());
        assert!((reduction_pct(200.0, 50.0) - 75.0).abs() < 1e-9);
    }
}

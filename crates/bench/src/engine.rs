//! Deploy-plan → shard mapping for the conservative parallel engine.
//!
//! A scenario fuses its hosts into one causal component the moment they
//! share HDFS state (a namenode, a file placement) or a workload reads
//! across hosts. [`partition`] finds the *actual* causal components with a
//! union-find over the host graph and splits the scenario into one
//! sub-scenario per component; [`run_partitioned`] then deploys each
//! component as its own [`Shard`] (own namenode, own file population) and
//! runs them on the engine's worker pool.
//!
//! Partitioned deployment is a *deployment mode*: each component anchors
//! its own namenode, so a partitioned run is not byte-comparable to
//! deploying the same topology as one fused world. What **is** guaranteed
//! — and what the `cluster_8host_fanout` bench and the shard-determinism
//! tests assert — is that a partitioned run produces byte-identical
//! reports at every `--engine-threads` value, because each shard's world
//! evolves independently under the same window protocol regardless of
//! which OS thread drives it.

use crate::spec::{
    FileSpec, HostSpec, ScenarioReport, ScenarioSpec, SpecError, VmRole, VmSpec, WorkloadBinding,
    WorkloadSpec,
};

use std::collections::BTreeMap;

use vread_sim::prelude::*;

/// Minimal union-find over host indices.
struct HostSets {
    parent: Vec<usize>,
}

impl HostSets {
    fn new(n: usize) -> Self {
        HostSets {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut i = i;
        while self.parent[i] != root {
            let next = self.parent[i];
            self.parent[i] = root;
            i = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Anchor on the smaller index so component ids follow plan
            // order deterministically.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }

    fn union_all(&mut self, hosts: &[usize]) {
        for pair in hosts.windows(2) {
            self.union(pair[0], pair[1]);
        }
    }
}

/// Splits a scenario into its independent causal components (one
/// sub-scenario per group of hosts coupled by file placements or
/// workload bindings), in plan order.
///
/// Falls back to a single fused component when the topology cannot be
/// split safely: faults are armed (fault specs target the fused world),
/// a workload omits its client name (the "first client" convention is
/// global), a component would lack a client or a datanode, or any name
/// fails to resolve (deployment will report the real error).
pub fn partition(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let fused = || vec![spec.clone()];
    if spec.hosts.len() <= 1 || !spec.faults.is_empty() {
        return fused();
    }
    let host_ix: BTreeMap<&str, usize> = spec
        .hosts
        .iter()
        .enumerate()
        .map(|(i, h)| (h.name.as_str(), i))
        .collect();
    let vm_host: BTreeMap<&str, usize> = match spec
        .vms
        .iter()
        .map(|v| Some((v.name.as_str(), *host_ix.get(v.host.as_str())?)))
        .collect()
    {
        Some(m) => m,
        None => return fused(),
    };
    let dn_hosts: Vec<usize> = spec
        .vms
        .iter()
        .filter(|v| v.role == VmRole::Datanode)
        .filter_map(|v| vm_host.get(v.name.as_str()).copied())
        .collect();
    let file_hosts = |path: &str| -> Option<Vec<usize>> {
        let f = spec.files.iter().find(|f| f.path == path)?;
        f.placement
            .iter()
            .map(|dn| vm_host.get(dn.as_str()).copied())
            .collect()
    };

    let mut sets = HostSets::new(spec.hosts.len());
    // Files couple every host their placement spans.
    for f in &spec.files {
        let hosts: Option<Vec<usize>> = f
            .placement
            .iter()
            .map(|dn| vm_host.get(dn.as_str()).copied())
            .collect();
        let Some(hosts) = hosts else { return fused() };
        sets.union_all(&hosts);
    }
    // A workload couples its client's host with every host it touches.
    for b in &spec.workloads {
        let Some(client) = b.client.as_deref() else {
            return fused();
        };
        let Some(&ch) = vm_host.get(client) else {
            return fused();
        };
        let mut touched: Vec<usize> = vec![ch];
        match &b.kind {
            WorkloadSpec::DfsioRead { files, .. } => {
                for p in files {
                    let Some(hosts) = file_hosts(p) else {
                        return fused();
                    };
                    touched.extend(hosts);
                }
            }
            WorkloadSpec::Reader { path, .. } => {
                let Some(hosts) = file_hosts(path) else {
                    return fused();
                };
                touched.extend(hosts);
            }
            // Writes round-robin new blocks over *all* datanodes.
            WorkloadSpec::DfsioWrite { .. } => touched.extend(dn_hosts.iter().copied()),
            // netperf talks to the first datanode VM.
            WorkloadSpec::Netperf { .. } => {
                let Some(first_dn) = dn_hosts.first() else {
                    return fused();
                };
                touched.push(*first_dn);
            }
        }
        sets.union_all(&touched);
    }

    // Component ids in plan order (root = smallest member index).
    let mut roots: Vec<usize> = Vec::new();
    let mut comp_of_host: Vec<usize> = Vec::with_capacity(spec.hosts.len());
    for h in 0..spec.hosts.len() {
        let r = sets.find(h);
        let comp = match roots.iter().position(|&x| x == r) {
            Some(c) => c,
            None => {
                roots.push(r);
                roots.len() - 1
            }
        };
        comp_of_host.push(comp);
    }
    if roots.len() <= 1 {
        return fused();
    }

    let ncomp = roots.len();
    let mut out: Vec<ScenarioSpec> = (0..ncomp)
        .map(|_| ScenarioSpec {
            seed: spec.seed,
            path: spec.path,
            hosts: Vec::new(),
            vms: Vec::new(),
            files: Vec::new(),
            workloads: Vec::new(),
            faults: Vec::new(),
            spans: spec.spans,
            host_cache: spec.host_cache.clone(),
            timeline: spec.timeline.clone(),
        })
        .collect();
    for (h, host) in spec.hosts.iter().enumerate() {
        out[comp_of_host[h]].hosts.push(host.clone());
    }
    for vm in &spec.vms {
        out[comp_of_host[vm_host[vm.name.as_str()]]]
            .vms
            .push(vm.clone());
    }
    for f in &spec.files {
        // All placement hosts share a component by construction.
        let h = vm_host[f.placement[0].as_str()];
        out[comp_of_host[h]].files.push(f.clone());
    }
    for b in &spec.workloads {
        let h = vm_host[b.client.as_deref().expect("checked above")];
        out[comp_of_host[h]].workloads.push(b.clone());
    }

    // Every component must be independently deployable: a client VM (it
    // anchors the component's namenode) and a datanode.
    let deployable = out.iter().all(|s| {
        s.vms.iter().any(|v| v.role == VmRole::Client)
            && s.vms.iter().any(|v| v.role == VmRole::Datanode)
    });
    if !deployable {
        return fused();
    }
    out
}

/// Partitions `spec` into causal components and runs each as a [`Shard`]
/// on `threads` workers. Returns per-component reports in component
/// (plan) order; the rendered reports are byte-identical for any
/// `threads`.
///
/// # Errors
///
/// Propagates the first component's [`SpecError`], mirroring
/// [`ScenarioSpec::run`].
pub fn run_partitioned(
    spec: &ScenarioSpec,
    threads: usize,
) -> Result<Vec<ScenarioReport>, SpecError> {
    let groups = partition(spec);
    let shards = groups
        .into_iter()
        .enumerate()
        .map(|(i, g)| Shard::staged(format!("component{i}"), move || g.stage_for_engine()))
        .collect();
    let out = run_sharded(
        EngineOpts {
            threads,
            lookahead: None,
            cap: SimDuration::from_secs(3_000),
        },
        shards,
    );
    out.into_iter().collect()
}

/// Runs the fan-out scenario once at `threads` engine threads, returning
/// the rendered per-component reports plus the total number of simulation
/// events executed (for ns/event accounting in `repro bench-engine`).
///
/// # Panics
///
/// Panics if any component fails to deploy — the fan-out spec is
/// statically valid, so a failure is a bug.
pub fn run_fanout_bench(n_hosts: usize, threads: usize) -> (Vec<String>, u64) {
    let groups = partition(&cluster_fanout_spec(n_hosts));
    let shards = groups
        .into_iter()
        .enumerate()
        .map(|(i, g)| {
            Shard::staged(format!("component{i}"), move || {
                let (w, fin) = g.stage_for_engine();
                (w, move |w: World| {
                    let events = w.events_processed();
                    (fin(w), events)
                })
            })
        })
        .collect();
    let out = run_sharded(
        EngineOpts {
            threads,
            lookahead: None,
            cap: SimDuration::from_secs(3_000),
        },
        shards,
    );
    let mut reports = Vec::new();
    let mut events = 0u64;
    for (r, e) in out {
        events += e;
        reports.push(r.expect("fan-out component runs").to_json());
    }
    (reports, events)
}

/// The multi-host fan-out scenario behind the `cluster_8host_fanout`
/// bench: `n` self-contained hosts, each with a client VM, a datanode VM,
/// a 16 MiB local file, and two staggered readers — so [`partition`]
/// yields `n` independent shards and the engine pool can demonstrate
/// multi-host speedup.
pub fn cluster_fanout_spec(n: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        seed: 42,
        path: crate::scenarios::ReadPath::VreadRdma,
        hosts: Vec::new(),
        vms: Vec::new(),
        files: Vec::new(),
        workloads: Vec::new(),
        faults: Vec::new(),
        spans: false,
        host_cache: crate::spec::HostCacheSpec::default(),
        timeline: None,
    };
    for i in 0..n {
        spec.hosts.push(HostSpec {
            name: format!("host{i}"),
            cores: 4,
            ghz: 2.0,
        });
        spec.vms.push(VmSpec {
            name: format!("c{i}"),
            host: format!("host{i}"),
            role: VmRole::Client,
            busy: None,
        });
        spec.vms.push(VmSpec {
            name: format!("dn{i}"),
            host: format!("host{i}"),
            role: VmRole::Datanode,
            busy: None,
        });
        spec.files.push(FileSpec {
            path: format!("/data-{i}"),
            mb: 16,
            placement: vec![format!("dn{i}")],
            replicate: false,
        });
        for start_ms in [0u64, 5] {
            spec.workloads.push(WorkloadBinding {
                client: Some(format!("c{i}")),
                start_ms,
                kind: WorkloadSpec::Reader {
                    path: format!("/data-{i}"),
                    request_kb: 1024,
                },
            });
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_partitions_per_host() {
        let spec = cluster_fanout_spec(4);
        let groups = partition(&spec);
        assert_eq!(groups.len(), 4);
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g.hosts.len(), 1);
            assert_eq!(g.hosts[0].name, format!("host{i}"));
            assert_eq!(g.vms.len(), 2);
            assert_eq!(g.files.len(), 1);
            assert_eq!(g.workloads.len(), 2);
        }
    }

    #[test]
    fn cross_host_placement_fuses() {
        let mut spec = cluster_fanout_spec(3);
        // Spread host0's file over host1's datanode too: components merge.
        spec.files[0].placement = vec!["dn0".into(), "dn1".into()];
        let groups = partition(&spec);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].hosts.len(), 2);
        assert_eq!(groups[1].hosts[0].name, "host2");
    }

    #[test]
    fn anonymous_client_binding_fuses() {
        let mut spec = cluster_fanout_spec(3);
        spec.workloads[0].client = None;
        assert_eq!(partition(&spec).len(), 1);
    }

    #[test]
    fn faults_fuse() {
        let mut spec = cluster_fanout_spec(3);
        spec.faults.push(crate::faults::FaultSpec {
            at_ms: 10,
            kind: crate::faults::FaultKind::DaemonCrash {
                host: "host0".into(),
            },
        });
        assert_eq!(partition(&spec).len(), 1);
    }

    #[test]
    fn partitioned_reports_are_thread_invariant() {
        let spec = cluster_fanout_spec(3);
        let seq: Vec<String> = run_partitioned(&spec, 1)
            .expect("run")
            .iter()
            .map(ScenarioReport::to_json)
            .collect();
        let par: Vec<String> = run_partitioned(&spec, 3)
            .expect("run")
            .iter()
            .map(ScenarioReport::to_json)
            .collect();
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 3);
    }
}

//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//! ```text
//! repro [--json DIR] <experiment>... | all | list
//! ```

use std::io::Write as _;

use vread_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments::registry();

    let mut json_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_dir = it.next();
                if json_dir.is_none() {
                    eprintln!("--json needs a directory argument");
                    std::process::exit(2);
                }
            }
            "list" => {
                for (id, _) in &registry {
                    println!("{id}");
                }
                println!("scenario <file.json>");
                return;
            }
            "scenario" => {
                let Some(file) = it.next() else {
                    eprintln!("scenario needs a JSON file argument");
                    std::process::exit(2);
                };
                let json = std::fs::read_to_string(&file).unwrap_or_else(|e| {
                    eprintln!("cannot read {file}: {e}");
                    std::process::exit(2);
                });
                match vread_bench::ScenarioSpec::from_json(&json).and_then(|s| s.run()) {
                    Ok(report) => {
                        println!("{}", report.to_json());
                    }
                    Err(e) => {
                        eprintln!("scenario failed: {e}");
                        std::process::exit(1);
                    }
                }
                return;
            }
            _ => wanted.push(a),
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: repro [--json DIR] <experiment>... | all | list");
        eprintln!("experiments: {}", registry.iter().map(|(i, _)| *i).collect::<Vec<_>>().join(" "));
        std::process::exit(2);
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = registry.iter().map(|(id, _)| (*id).to_owned()).collect();
    }

    for want in &wanted {
        let Some((_, runner)) = registry.iter().find(|(id, _)| id == want) else {
            eprintln!("unknown experiment: {want}");
            std::process::exit(2);
        };
        let started = std::time::Instant::now();
        let tables = runner();
        for t in &tables {
            println!("{}", t.render());
            if let Some(dir) = &json_dir {
                std::fs::create_dir_all(dir).expect("create json dir");
                let path = format!("{dir}/{}.json", t.id);
                let mut f = std::fs::File::create(&path).expect("create json file");
                f.write_all(t.to_json().as_bytes()).expect("write json");
            }
        }
        eprintln!("[{want} done in {:.1}s]", started.elapsed().as_secs_f64());
    }
}

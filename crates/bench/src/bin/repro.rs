//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//! ```text
//! repro [--json DIR] [--jobs N] [--engine-threads N] <experiment>... | all | list
//! repro scenario <file.json> [--spans] [--jobs N] [--engine-threads N]
//! repro trace [vanilla|vread-rdma|vread-tcp|cas-dedup|all] [--trace-out FILE] [--jobs N] [--engine-threads N]
//! repro timeline [<file.json>... | ramp] [--sample-ms N] [--trace-out FILE] [--jobs N] [--engine-threads N]
//! repro fault-matrix [--jobs N] [--engine-threads N]
//! repro bench-engine [--out FILE]
//! repro lint [--format text|json|sarif] [--update-baseline]
//! ```
//!
//! Experiments run in parallel across `--jobs` worker threads (default:
//! available cores), fanned out through the engine's deterministic
//! `run_indexed` pool. `--engine-threads N` additionally drives each
//! scenario *world* through the conservative parallel engine
//! (`vread_sim::par`). Every world builds from a fixed seed and the
//! window protocol is thread-count-invariant, so results — and the JSON
//! written with `--json` — are byte-identical regardless of either knob.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use vread_bench::experiments;
use vread_sim::par::{run_indexed, run_indexed_streamed};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments::registry();

    let mut json_dir: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut engine_threads: usize = 1;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_dir = it.next();
                if json_dir.is_none() {
                    eprintln!("--json needs a directory argument");
                    std::process::exit(2);
                }
            }
            "--jobs" => {
                let Some(v) = it.next() else {
                    eprintln!("--jobs needs a thread-count argument");
                    std::process::exit(2);
                };
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--engine-threads" => {
                let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                match parsed {
                    Some(n) if n >= 1 => engine_threads = n,
                    _ => {
                        eprintln!("--engine-threads needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "list" => {
                for (id, _) in &registry {
                    println!("{id}");
                }
                println!("scenario <file.json> [--spans] [--jobs N] [--engine-threads N]");
                println!(
                    "trace [vanilla|vread-rdma|vread-tcp|cas-dedup|all] [--trace-out FILE] [--jobs N] \
                     [--engine-threads N]"
                );
                println!(
                    "timeline [<file.json>... | ramp] [--sample-ms N] [--trace-out FILE] \
                     [--jobs N] [--engine-threads N]"
                );
                println!("fault-matrix [--jobs N] [--engine-threads N]");
                println!("bench-engine [--out FILE]");
                println!("lint [--format text|json|sarif] [--update-baseline]");
                return;
            }
            "lint" => {
                let mut format = "text".to_owned();
                let mut update_baseline = false;
                while let Some(a) = it.next() {
                    match a.as_str() {
                        "--format" => match it.next().as_deref() {
                            Some("human") => format = "text".to_owned(),
                            Some(f @ ("text" | "json" | "sarif")) => format = f.to_owned(),
                            other => {
                                eprintln!(
                                    "--format needs `text`, `json` or `sarif`, got {other:?}"
                                );
                                std::process::exit(2);
                            }
                        },
                        "--update-baseline" => update_baseline = true,
                        other => {
                            eprintln!("lint: unknown argument {other:?}");
                            std::process::exit(2);
                        }
                    }
                }
                run_lint(&format, update_baseline);
                return;
            }
            "scenario" => {
                let mut files: Vec<String> = Vec::new();
                let mut spans = false;
                let mut s_jobs = jobs;
                let mut s_engine = engine_threads;
                while let Some(a) = it.next() {
                    match a.as_str() {
                        "--spans" => spans = true,
                        "--jobs" => {
                            let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                            match parsed {
                                Some(n) if n >= 1 => s_jobs = Some(n),
                                _ => {
                                    eprintln!("--jobs needs a positive integer");
                                    std::process::exit(2);
                                }
                            }
                        }
                        "--engine-threads" => {
                            let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                            match parsed {
                                Some(n) if n >= 1 => s_engine = n,
                                _ => {
                                    eprintln!("--engine-threads needs a positive integer");
                                    std::process::exit(2);
                                }
                            }
                        }
                        other if other.starts_with("--") => {
                            eprintln!("scenario: unknown argument {other:?}");
                            std::process::exit(2);
                        }
                        file => files.push(file.to_owned()),
                    }
                }
                if files.is_empty() {
                    eprintln!("scenario needs a JSON file argument");
                    std::process::exit(2);
                }
                scenario_cmd(&files, spans, s_jobs.unwrap_or(1), s_engine);
                return;
            }
            "trace" => {
                let mut which: Vec<TraceCell> = Vec::new();
                let mut trace_out: Option<String> = None;
                let mut t_jobs = jobs;
                let mut t_engine = engine_threads;
                while let Some(a) = it.next() {
                    match a.as_str() {
                        "--trace-out" => match it.next() {
                            Some(f) => trace_out = Some(f),
                            None => {
                                eprintln!("--trace-out needs a file argument");
                                std::process::exit(2);
                            }
                        },
                        "--jobs" => {
                            let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                            match parsed {
                                Some(n) if n >= 1 => t_jobs = Some(n),
                                _ => {
                                    eprintln!("--jobs needs a positive integer");
                                    std::process::exit(2);
                                }
                            }
                        }
                        "--engine-threads" => {
                            let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                            match parsed {
                                Some(n) if n >= 1 => t_engine = n,
                                _ => {
                                    eprintln!("--engine-threads needs a positive integer");
                                    std::process::exit(2);
                                }
                            }
                        }
                        "all" => {
                            which.extend(vread_bench::ReadPath::ALL.map(TraceCell::Path));
                            which.push(TraceCell::CasDedup);
                        }
                        "cas-dedup" => which.push(TraceCell::CasDedup),
                        other => match vread_bench::ReadPath::parse(other) {
                            Some(p) => which.push(TraceCell::Path(p)),
                            None => {
                                eprintln!(
                                    "trace: unknown path {other:?} \
                                     (expected vanilla|vread-rdma|vread-tcp|cas-dedup|all)"
                                );
                                std::process::exit(2);
                            }
                        },
                    }
                }
                if which.is_empty() {
                    which.extend(vread_bench::ReadPath::ALL.map(TraceCell::Path));
                    which.push(TraceCell::CasDedup);
                }
                trace_cmd(&which, trace_out.as_deref(), t_jobs.unwrap_or(1), t_engine);
                return;
            }
            "timeline" => {
                let mut cells: Vec<TimelineCell> = Vec::new();
                let mut sample_ms: Option<u64> = None;
                let mut trace_out: Option<String> = None;
                let mut tl_jobs = jobs;
                let mut tl_engine = engine_threads;
                while let Some(a) = it.next() {
                    match a.as_str() {
                        "--sample-ms" => {
                            let parsed = it.next().and_then(|v| v.parse::<u64>().ok());
                            match parsed {
                                Some(n) if n >= 1 => sample_ms = Some(n),
                                _ => {
                                    eprintln!("--sample-ms needs a positive integer");
                                    std::process::exit(2);
                                }
                            }
                        }
                        "--trace-out" => match it.next() {
                            Some(f) => trace_out = Some(f),
                            None => {
                                eprintln!("--trace-out needs a file argument");
                                std::process::exit(2);
                            }
                        },
                        "--jobs" => {
                            let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                            match parsed {
                                Some(n) if n >= 1 => tl_jobs = Some(n),
                                _ => {
                                    eprintln!("--jobs needs a positive integer");
                                    std::process::exit(2);
                                }
                            }
                        }
                        "--engine-threads" => {
                            let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                            match parsed {
                                Some(n) if n >= 1 => tl_engine = n,
                                _ => {
                                    eprintln!("--engine-threads needs a positive integer");
                                    std::process::exit(2);
                                }
                            }
                        }
                        "ramp" => {
                            cells.push(TimelineCell::Ramp(vread_bench::ReadPath::Vanilla));
                            cells.push(TimelineCell::Ramp(vread_bench::ReadPath::VreadRdma));
                        }
                        other if other.starts_with("--") => {
                            eprintln!("timeline: unknown argument {other:?}");
                            std::process::exit(2);
                        }
                        file => cells.push(TimelineCell::File(file.to_owned())),
                    }
                }
                if cells.is_empty() {
                    cells.push(TimelineCell::Ramp(vread_bench::ReadPath::Vanilla));
                    cells.push(TimelineCell::Ramp(vread_bench::ReadPath::VreadRdma));
                }
                timeline_cmd(
                    &cells,
                    sample_ms,
                    trace_out.as_deref(),
                    tl_jobs.unwrap_or(1),
                    tl_engine,
                );
                return;
            }
            "fault-matrix" => {
                let mut fm_jobs = jobs;
                let mut fm_engine = engine_threads;
                while let Some(a) = it.next() {
                    match a.as_str() {
                        "--jobs" => {
                            let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                            match parsed {
                                Some(n) if n >= 1 => fm_jobs = Some(n),
                                _ => {
                                    eprintln!("--jobs needs a positive integer");
                                    std::process::exit(2);
                                }
                            }
                        }
                        "--engine-threads" => {
                            let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                            match parsed {
                                Some(n) if n >= 1 => fm_engine = n,
                                _ => {
                                    eprintln!("--engine-threads needs a positive integer");
                                    std::process::exit(2);
                                }
                            }
                        }
                        other => {
                            eprintln!("fault-matrix: unknown argument {other:?}");
                            std::process::exit(2);
                        }
                    }
                }
                fault_matrix(fm_jobs.unwrap_or(1), fm_engine);
                return;
            }
            "bench-engine" => {
                let mut out = "BENCH_engine.json".to_owned();
                while let Some(a) = it.next() {
                    match a.as_str() {
                        "--out" => match it.next() {
                            Some(f) => out = f,
                            None => {
                                eprintln!("--out needs a file argument");
                                std::process::exit(2);
                            }
                        },
                        other => {
                            eprintln!("bench-engine: unknown argument {other:?}");
                            std::process::exit(2);
                        }
                    }
                }
                bench_engine(&out);
                return;
            }
            _ => wanted.push(a),
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: repro [--json DIR] [--jobs N] <experiment>... | all | list");
        eprintln!(
            "experiments: {}",
            registry
                .iter()
                .map(|(i, _)| *i)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = registry.iter().map(|(id, _)| (*id).to_owned()).collect();
    }

    // Resolve every name up front so an unknown experiment fails fast.
    let runners: Vec<(&str, experiments::Runner)> = wanted
        .iter()
        .map(|want| {
            let Some(&(id, runner)) = registry.iter().find(|(id, _)| id == want) else {
                eprintln!("unknown experiment: {want}");
                std::process::exit(2);
            };
            (id, runner)
        })
        .collect();

    let jobs = jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .min(runners.len())
        .max(1);
    let failed = run_parallel(&runners, jobs, json_dir.as_deref());
    if failed > 0 {
        eprintln!("{failed} experiment(s) failed");
        std::process::exit(1);
    }
}

/// Runs `runners` across `jobs` worker threads (the engine's
/// deterministic `run_indexed` pool), printing each experiment's tables
/// (and writing JSON) strictly in input order as soon as its prefix is
/// complete. Returns the number of failures.
fn run_parallel(
    runners: &[(&str, experiments::Runner)],
    jobs: usize,
    json_dir: Option<&str>,
) -> usize {
    let mut failed = 0usize;
    run_indexed_streamed(
        runners.len(),
        jobs,
        |i| {
            // vread-lint: allow(wall-clock, "host elapsed-time progress reporting on stderr; never enters sim state or JSON output")
            let started = std::time::Instant::now();
            let tables = catch_unwind(AssertUnwindSafe(runners[i].1)).ok();
            (tables, started.elapsed().as_secs_f64())
        },
        |i, (tables, secs)| {
            let id = runners[i].0;
            match tables {
                Some(tables) => {
                    for t in &tables {
                        println!("{}", t.render());
                        if let Some(dir) = json_dir {
                            std::fs::create_dir_all(dir).expect("create json dir");
                            let path = format!("{dir}/{}.json", t.id);
                            let mut f = std::fs::File::create(&path).expect("create json file");
                            f.write_all(t.to_json().as_bytes()).expect("write json");
                        }
                    }
                    eprintln!("[{id} done in {secs:.1}s]");
                }
                None => {
                    failed += 1;
                    eprintln!("[{id} FAILED after {secs:.1}s]");
                }
            }
        },
    );
    failed
}

// ---------------------------------------------------------------------------
// scenario: run declarative scenario files and print their reports.
// ---------------------------------------------------------------------------

/// Runs every scenario file across `jobs` worker threads and prints the
/// reports strictly in input order — each world is independent, so the
/// job count cannot change any output. A single file prints just its
/// report; multiple files are separated by `== <file> ==` headers.
/// `engine_threads > 1` additionally drives each scenario's world through
/// the conservative parallel engine; the window protocol is
/// thread-count-invariant, so the reports stay byte-identical.
fn scenario_cmd(files: &[String], spans: bool, jobs: usize, engine_threads: usize) {
    let run_one = |file: &str| -> Result<String, String> {
        let json = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let report = vread_bench::ScenarioSpec::from_json(&json)
            .and_then(|mut s| {
                s.spans |= spans;
                s.run_with_engine(engine_threads)
            })
            .map_err(|e| format!("scenario failed: {e}"))?;
        Ok(report.to_json())
    };

    let n = files.len();
    let results = run_indexed(n, jobs, |i| {
        catch_unwind(AssertUnwindSafe(|| run_one(&files[i])))
            .unwrap_or_else(|_| Err("scenario panicked".to_owned()))
    });

    let mut failed = 0usize;
    for (file, result) in files.iter().zip(results) {
        if n > 1 {
            println!("== {file} ==");
        }
        match result {
            Ok(report) => println!("{report}"),
            Err(e) => {
                failed += 1;
                eprintln!("{e}");
            }
        }
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// lint: the determinism gate. Runs vread-lint over the workspace's own
// sources; any violation (or stale allow annotation) fails the run, and
// the suppression ratchet fails it when a per-rule violation/allow count
// grows past the committed lint-baseline.json. Exit codes are the
// linter's own: 1 violations, 2 usage/IO, 3 bad/stale allows, 4 ratchet
// regression.
// ---------------------------------------------------------------------------

fn run_lint(format: &str, update_baseline: bool) {
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let Some(root) = vread_lint::find_workspace_root(&cwd) else {
        eprintln!("lint: no workspace root found above {}", cwd.display());
        std::process::exit(2);
    };
    let report = match vread_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            std::process::exit(2);
        }
    };
    match format {
        "json" => print!("{}", report.render_json()),
        "sarif" => print!("{}", vread_lint::sarif::render_sarif(&report)),
        _ => print!("{}", report.render_human()),
    }

    let baseline_path = root.join("lint-baseline.json");
    let counts = report.rule_counts();
    let mut ratchet_regressed = false;
    if update_baseline {
        let b = vread_lint::baseline::Baseline::from_counts(&counts);
        if let Err(e) = std::fs::write(&baseline_path, b.render()) {
            eprintln!("lint: cannot write {}: {e}", baseline_path.display());
            std::process::exit(2);
        }
        eprintln!("lint: baseline written to {}", baseline_path.display());
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match vread_lint::baseline::Baseline::parse(&text) {
                Ok(b) => {
                    for r in b.regressions(&counts) {
                        ratchet_regressed = true;
                        eprintln!(
                            "lint: ratchet: {} {} grew {} -> {} (fix the new site or \
                             consciously run `repro lint --update-baseline`)",
                            r.rule, r.counter, r.baseline, r.current
                        );
                    }
                }
                Err(e) => {
                    eprintln!("lint: {}: {e}", baseline_path.display());
                    std::process::exit(2);
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!("lint: cannot read {}: {e}", baseline_path.display());
                std::process::exit(2);
            }
        }
    }

    match report.gate() {
        vread_lint::Gate::Violations => std::process::exit(1),
        vread_lint::Gate::BadAllow => std::process::exit(3),
        vread_lint::Gate::Clean if ratchet_regressed => std::process::exit(4),
        vread_lint::Gate::Clean => {}
    }
}

// ---------------------------------------------------------------------------
// trace: the observability gate. Runs the standard co-located reader
// scenario per read path with the span flight recorder on, prints the
// per-layer cycle/copy table and the copies-per-read ledger, asserts
// the paper's copy invariant (vanilla ≥5, vRead =2 copies/read), and
// optionally exports Chrome trace-event JSON for Perfetto.
// ---------------------------------------------------------------------------

/// One cell of the trace gate: a read path's standard co-located
/// reader, or the content-addressed dedup demonstration.
#[derive(Clone, Copy)]
enum TraceCell {
    Path(vread_bench::ReadPath),
    CasDedup,
}

impl TraceCell {
    fn as_str(self) -> &'static str {
        match self {
            TraceCell::Path(p) => p.as_str(),
            TraceCell::CasDedup => "cas-dedup",
        }
    }
}

/// The standard trace scenario: two hosts, client + dn1 on h1, data
/// co-located with the client, 16 MB read in 1 MB requests.
fn trace_spec(path: vread_bench::ReadPath) -> vread_bench::ScenarioSpec {
    use vread_bench::spec::WorkloadSpec;
    vread_bench::ScenarioSpec::builder()
        .path(path)
        .spans(true)
        .host("h1", 4, 2.0)
        .host("h2", 4, 2.0)
        .client("client", "h1")
        .datanode("dn1", "h1")
        .datanode("dn2", "h2")
        .file("/d", 16, &["dn1"])
        .workload(WorkloadSpec::Reader {
            path: "/d".to_owned(),
            request_kb: 1024,
        })
        .build()
        .expect("trace scenario is statically valid")
}

/// Runs one trace cell: returns (pass, report text, chrome JSON).
fn trace_one(cell: TraceCell, engine_threads: usize) -> (bool, String, String) {
    use std::fmt::Write as _;
    let path = match cell {
        TraceCell::Path(p) => p,
        TraceCell::CasDedup => return trace_cas_one(),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== trace {} — co-located 16 MB reader, 1 MB requests ==",
        path.as_str()
    );
    let report = match trace_spec(path).run_with_engine(engine_threads) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "FAILED: {e}");
            return (false, out, String::new());
        }
    };
    let sp = report.spans.as_ref().expect("trace scenarios enable spans");
    out.push_str(&sp.render());
    let agg = sp.reads();
    // The paper's invariant (§2): every vanilla read moves the payload
    // at least 5 times; vRead moves it exactly twice (shared ring).
    let (ok_copies, expect) = match path {
        vread_bench::ReadPath::Vanilla => (agg.min_copies_per_read >= 5.0 - 1e-9, ">=5"),
        vread_bench::ReadPath::VreadRdma | vread_bench::ReadPath::VreadTcp => (
            (agg.min_copies_per_read - 2.0).abs() < 1e-9
                && (agg.max_copies_per_read - 2.0).abs() < 1e-9,
            "=2",
        ),
    };
    let ok = agg.reads > 0 && ok_copies && sp.conserves_cycles();
    let _ = writeln!(
        out,
        "copy ledger [expected {} copies/read]: {}",
        expect,
        if ok { "PASS" } else { "FAIL" },
    );
    (ok, out, sp.report.chrome_trace_json())
}

/// The cas-dedup trace cell: two co-located tenants over a 2-way
/// replicated file through the content-addressed host store
/// (DESIGN.md §15). Tenant 1 reads cold through the ring (2
/// copies/read); every block's replica list is then rotated and tenant
/// 2 reads through the *sibling* replicas, which the store recognizes
/// as resident content and serves by page mapping — the ledger must
/// show those reads at 1 copy/read, strictly below vread-local's 2.
fn trace_cas_one() -> (bool, String, String) {
    use std::fmt::Write as _;
    use vread_apps::driver::run_jobs_settled;
    use vread_apps::java_reader::{JavaReader, ReaderMode};
    use vread_bench::spec::{FileSpec, HostCacheSpec, VmRole};
    use vread_bench::SpanSummary;
    use vread_hdfs::HdfsMeta;
    use vread_host::cluster::HostCacheMode;

    const FILE: u64 = 16 << 20;
    fn pass(d: &mut vread_bench::Deployment, client: ActorId, vm: vread_host::cluster::VmId) {
        let job = d.w.register_job("reader");
        let rdr = JavaReader::new(
            vm,
            ReaderMode::Dfs {
                client,
                path: "/f".to_owned(),
            },
            1 << 20,
            FILE,
        )
        .with_job(job);
        let a = d.w.add_actor("reader", rdr);
        d.w.send_now(a, Start);
        let ok = run_jobs_settled(
            &mut d.w,
            SimDuration::from_secs(3_000),
            SimDuration::from_millis(50),
        );
        assert!(ok, "cas trace pass did not finish within the cap");
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== trace cas-dedup — two tenants, 2-way co-located replicas, 16 MB reads =="
    );
    let plan = vread_bench::DeployPlan::new(42)
        .path(vread_bench::ReadPath::VreadRdma)
        .spans(true)
        .host("h1", 8, 2.0)
        .vm("t1", "h1", VmRole::Client, None)
        .vm("t2", "h1", VmRole::Client, None)
        .vm("dn1", "h1", VmRole::Datanode, None)
        .vm("dn2", "h1", VmRole::Datanode, None)
        .file(FileSpec {
            path: "/f".to_owned(),
            mb: FILE >> 20,
            placement: vec!["dn1".to_owned(), "dn2".to_owned()],
            replicate: true,
        })
        .host_cache(HostCacheSpec {
            mode: HostCacheMode::Cas,
            capacity_mb: None,
            chunk_kb: None,
        });
    let mut d = vread_bench::Deployment::build(plan).expect("cas trace deploys");
    let vm1 = d.client_vm(Some("t1")).expect("t1 exists");
    let vm2 = d.client_vm(Some("t2")).expect("t2 exists");
    let c1 = d.make_client(vm1);
    let c2 = d.add_client_on(vm2);
    pass(&mut d, c1, vm1);
    // Send tenant 2's reads to each block's sibling replica — the
    // other image holding the same bytes.
    let meta = d.w.ext.get_mut::<HdfsMeta>().expect("meta");
    for f in meta.files.values_mut() {
        for b in &mut f.blocks {
            b.replicas.rotate_left(1);
        }
    }
    pass(&mut d, c2, vm2);
    let sp = SpanSummary::collect(&mut d.w);
    out.push_str(&sp.render());
    let agg = sp.reads();
    let ok = agg.reads > 0
        && (agg.min_copies_per_read - 1.0).abs() < 1e-9
        && (agg.max_copies_per_read - 2.0).abs() < 1e-9
        && agg.mapped_bytes > 0
        && sp.conserves_cycles();
    let _ = writeln!(
        out,
        "copy ledger [expected dedup serves =1 copy/read, cold =2]: {}",
        if ok { "PASS" } else { "FAIL" },
    );
    (ok, out, sp.report.chrome_trace_json())
}

/// `--trace-out` file name for one path: the base name as-is for a
/// single-path run, `<stem>-<path>.<ext>` when tracing several.
fn trace_out_name(base: &str, path: &str, multi: bool) -> String {
    if !multi {
        return base.to_owned();
    }
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-{path}.{ext}"),
        None => format!("{base}-{path}"),
    }
}

fn trace_cmd(which: &[TraceCell], trace_out: Option<&str>, jobs: usize, engine_threads: usize) {
    let n = which.len();
    let cells = run_indexed(n, jobs, |i| trace_one(which[i], engine_threads));
    let mut failed = 0usize;
    for (i, cell) in cells.into_iter().enumerate() {
        let (ok, text, chrome) = cell;
        print!("{text}");
        if !ok {
            failed += 1;
        }
        if let Some(base) = trace_out {
            if !chrome.is_empty() {
                let file = trace_out_name(base, which[i].as_str(), n > 1);
                std::fs::write(&file, &chrome).unwrap_or_else(|e| {
                    eprintln!("cannot write {file}: {e}");
                    std::process::exit(1);
                });
                println!("[chrome trace written to {file}]");
            }
        }
        println!();
    }
    if failed > 0 {
        eprintln!("{failed} trace cell(s) failed");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// timeline: the telemetry gate. Runs scenarios with the deterministic
// sampler on, prints the per-window tail-latency table plus the
// saturation verdict, and optionally exports the sampled series as
// Perfetto counter tracks spliced into the Chrome trace. The built-in
// `ramp` cells stagger readers onto one shared host so vanilla's p99
// visibly saturates while vRead's stays flat.
// ---------------------------------------------------------------------------

/// One cell of the timeline gate: a scenario file, or a built-in
/// staggered-reader ramp on one read path.
#[derive(Clone)]
enum TimelineCell {
    File(String),
    Ramp(vread_bench::ReadPath),
}

impl TimelineCell {
    fn name(&self) -> String {
        match self {
            TimelineCell::File(f) => f.clone(),
            TimelineCell::Ramp(p) => format!("ramp-{}", p.as_str()),
        }
    }
}

/// The ramp scenario: six reader clients start 150 ms apart on one
/// shared 4-core host, each reading the same co-located 32 MB file in
/// 1 MB requests. Rising concurrency drives the vanilla path's
/// per-window p99 past the saturation multiplier; vRead's shared-ring
/// path absorbs the same offered load.
fn ramp_spec(path: vread_bench::ReadPath) -> vread_bench::ScenarioSpec {
    use vread_bench::spec::WorkloadSpec;
    let mut b = vread_bench::ScenarioSpec::builder()
        .path(path)
        .timeline_sample_ms(50)
        .host("h1", 2, 2.0)
        .datanode("dn1", "h1")
        .file("/d", 32, &["dn1"]);
    for i in 0..8 {
        let client = format!("c{i}");
        b = b.client(&client, "h1").workload_on(
            &client,
            i * 60,
            WorkloadSpec::Reader {
                path: "/d".to_owned(),
                request_kb: 1024,
            },
        );
    }
    b.build().expect("ramp scenario is statically valid")
}

/// Runs one timeline cell: returns (report text, chrome JSON — empty
/// unless tracing was requested).
fn timeline_one(
    cell: &TimelineCell,
    sample_ms: Option<u64>,
    want_trace: bool,
    engine_threads: usize,
) -> Result<(String, String), String> {
    use std::fmt::Write as _;
    use vread_bench::TimelineSpec;
    let mut spec = match cell {
        TimelineCell::File(file) => {
            let json =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            vread_bench::ScenarioSpec::from_json(&json).map_err(|e| format!("{file}: {e}"))?
        }
        TimelineCell::Ramp(path) => ramp_spec(*path),
    };
    match sample_ms {
        Some(ms) => spec.timeline = Some(TimelineSpec { sample_ms: ms }),
        None => {
            if spec.timeline.is_none() {
                spec.timeline = Some(TimelineSpec { sample_ms: 10 });
            }
        }
    }
    spec.spans |= want_trace;
    let report = spec
        .run_with_engine(engine_threads)
        .map_err(|e| format!("scenario failed: {e}"))?;
    let tl = report
        .timeline
        .as_ref()
        .expect("timeline enabled by the subcommand");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bytes={} elapsed_s={:.3} rate={:.2}",
        report.bytes, report.elapsed_s, report.rate
    );
    out.push_str(&tl.render());
    let chrome = match (&report.spans, want_trace) {
        (Some(sp), true) => tl.splice_into_chrome_trace(&sp.report.chrome_trace_json()),
        _ => String::new(),
    };
    Ok((out, chrome))
}

fn timeline_cmd(
    cells: &[TimelineCell],
    sample_ms: Option<u64>,
    trace_out: Option<&str>,
    jobs: usize,
    engine_threads: usize,
) {
    let n = cells.len();
    let results = run_indexed(n, jobs, |i| {
        catch_unwind(AssertUnwindSafe(|| {
            timeline_one(&cells[i], sample_ms, trace_out.is_some(), engine_threads)
        }))
        .unwrap_or_else(|_| Err("timeline cell panicked".to_owned()))
    });
    let mut failed = 0usize;
    for (i, result) in results.into_iter().enumerate() {
        let name = cells[i].name();
        if n > 1 {
            println!("== timeline {name} ==");
        }
        match result {
            Ok((text, chrome)) => {
                print!("{text}");
                if let Some(base) = trace_out {
                    if !chrome.is_empty() {
                        let safe = name.replace(['/', '\\'], "_");
                        let file = trace_out_name(base, &safe, n > 1);
                        std::fs::write(&file, &chrome).unwrap_or_else(|e| {
                            eprintln!("cannot write {file}: {e}");
                            std::process::exit(1);
                        });
                        println!("[chrome trace written to {file}]");
                    }
                }
            }
            Err(e) => {
                failed += 1;
                eprintln!("{e}");
            }
        }
        if n > 1 {
            println!();
        }
    }
    if failed > 0 {
        eprintln!("{failed} timeline cell(s) failed");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// fault-matrix: the reliability smoke gate. Every fault kind crossed
// with every read path on a short replicated-read scenario; one
// deterministic summary line per cell, diffable across --jobs counts.
// ---------------------------------------------------------------------------

/// The 7 planned-fault timelines of the matrix, over the fixed two-host
/// cell topology (client + dn1 on h1, dn2 on h2).
fn fault_timelines() -> Vec<(&'static str, Vec<(u64, vread_bench::FaultKind)>)> {
    use vread_bench::FaultKind;
    let h1 = || "h1".to_owned();
    vec![
        (
            "daemon-crash",
            vec![(100, FaultKind::DaemonCrash { host: h1() })],
        ),
        (
            "daemon-restart",
            vec![
                (100, FaultKind::DaemonCrash { host: h1() }),
                (600, FaultKind::DaemonRestart { host: h1() }),
            ],
        ),
        (
            "link-flap",
            vec![(
                100,
                FaultKind::LinkFlap {
                    host: "h2".to_owned(),
                    factor: 20.0,
                    duration_ms: 300,
                },
            )],
        ),
        (
            "disk-slow",
            vec![(
                100,
                FaultKind::DiskSlow {
                    host: h1(),
                    factor: 8.0,
                    duration_ms: 300,
                },
            )],
        ),
        (
            "cache-drop",
            vec![(100, FaultKind::CacheDrop { host: h1() })],
        ),
        (
            "vhost-stall",
            vec![(
                100,
                FaultKind::VhostStall {
                    vm: "dn1".to_owned(),
                    duration_ms: 200,
                },
            )],
        ),
        (
            "vm-crash",
            vec![(
                100,
                FaultKind::VmCrash {
                    vm: "dn1".to_owned(),
                },
            )],
        ),
    ]
}

fn fault_cell(
    path: vread_bench::ReadPath,
    name: &str,
    faults: &[(u64, vread_bench::FaultKind)],
    engine_threads: usize,
) -> String {
    use vread_bench::spec::WorkloadSpec;
    let mut b = vread_bench::ScenarioSpec::builder()
        .path(path)
        .spans(true)
        .host("h1", 4, 2.0)
        .host("h2", 4, 2.0)
        .client("client", "h1")
        .datanode("dn1", "h1")
        .datanode("dn2", "h2")
        .replicated_file("/d", 128, &["dn1", "dn2"])
        .workload(WorkloadSpec::Reader {
            path: "/d".to_owned(),
            request_kb: 1024,
        });
    for (at_ms, kind) in faults {
        b = b.fault(*at_ms, kind.clone());
    }
    let report = b.build().and_then(|s| s.run_with_engine(engine_threads));
    let kind = name;
    match report {
        Ok(r) => {
            let f = r.faults.as_ref().expect("fault report");
            // The span ledger makes fallbacks visible in copy terms: a
            // vread cell whose reads fell back to vanilla shows its max
            // copies/read jump from 2 to ≥5.
            let agg = r.spans.as_ref().expect("spans enabled").reads();
            format!(
                "{:<10} {:<14} bytes={} elapsed_s={:.3} events={} fallbacks={} \
                 failovers={} retries={} restarts={} copies={:.2} max_copies={:.2}",
                path.as_str(),
                kind,
                r.bytes,
                r.elapsed_s,
                f.events,
                f.fallback_reads,
                f.failovers,
                f.path_retries,
                f.daemon_restarts,
                agg.copies_per_read(),
                agg.max_copies_per_read,
            )
        }
        Err(e) => format!("{:<10} {:<14} FAILED: {e}", path.as_str(), kind),
    }
}

fn fault_matrix(jobs: usize, engine_threads: usize) {
    let timelines = fault_timelines();
    let cells: Vec<_> = vread_bench::ReadPath::ALL
        .iter()
        .flat_map(|&p| timelines.iter().map(move |(name, t)| (p, *name, t)))
        .collect();
    let lines = run_indexed(cells.len(), jobs, |i| {
        let (path, name, faults) = &cells[i];
        fault_cell(*path, name, faults, engine_threads)
    });
    let mut failed = 0usize;
    for line in lines {
        if line.contains("FAILED") {
            failed += 1;
        }
        println!("{line}");
    }
    if failed > 0 {
        eprintln!("{failed} fault-matrix cell(s) failed");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// bench-engine: the perf gate. Runs the two hot-path engine workloads
// in-process and writes events/sec + ns/event to a JSON file.
// ---------------------------------------------------------------------------

use vread_sim::prelude::*;

struct PingPong {
    left: u32,
}
struct Ball;
impl Actor for PingPong {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if (msg.is::<Start>() || msg.is::<Ball>()) && self.left > 0 {
            self.left -= 1;
            let me = ctx.me();
            ctx.send(me, Ball);
        }
    }
}

struct Sink;
struct Fin;
impl Actor for Sink {
    fn handle(&mut self, _msg: BoxMsg, _ctx: &mut Ctx<'_>) {}
}

struct BenchResult {
    name: &'static str,
    events: u64,
    ns_per_event: f64,
    /// Engine-pool extras (multi-host benches only): worker threads, the
    /// measured wall-clock speedup at that thread count, and the host's
    /// CPU count for context (speedup is bounded by real cores).
    parallel: Option<(usize, f64, usize)>,
    /// Extra deterministic figures appended to the JSON entry (simulated
    /// quantities, not wall time — safe to compare across CI runs).
    extras: Vec<(&'static str, f64)>,
}

impl BenchResult {
    fn events_per_sec(&self) -> f64 {
        1e9 / self.ns_per_event
    }

    fn to_json_entry(&self) -> String {
        let mut s = format!(
            "    {{\n      \"name\": \"{}\",\n      \"events\": {},\n      \
             \"ns_per_event\": {:.2},\n      \"events_per_sec\": {:.0}",
            self.name,
            self.events,
            self.ns_per_event,
            self.events_per_sec()
        );
        if let Some((threads, speedup, host_cpus)) = self.parallel {
            s.push_str(&format!(
                ",\n      \"threads\": {threads},\n      \"speedup_x{threads}\": {speedup:.2},\n      \
                 \"host_cpus\": {host_cpus}"
            ));
        }
        for (k, v) in &self.extras {
            s.push_str(&format!(",\n      \"{k}\": {v:.2}"));
        }
        s.push_str("\n    }");
        s
    }
}

/// Best-of-`reps` wall time of `build`+run, as (events, ns/event).
fn measure(reps: usize, build: impl Fn() -> World) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..reps {
        let mut w = build();
        // vread-lint: allow(wall-clock, "bench-engine measures real host wall time of the run; the sim itself stays virtual-time only")
        let t0 = std::time::Instant::now();
        w.run();
        let dt = t0.elapsed().as_nanos() as f64;
        events = w.events_processed();
        if dt < best {
            best = dt;
        }
    }
    (events, best / events as f64)
}

/// Best-of-`reps` wall time of the 8-host fan-out at `threads` engine
/// threads, as (rendered reports, events, best wall ns).
fn measure_fanout(reps: usize, threads: usize) -> (Vec<String>, u64, f64) {
    let mut best = f64::INFINITY;
    let mut reports = Vec::new();
    let mut events = 0u64;
    for _ in 0..reps {
        // vread-lint: allow(wall-clock, "bench-engine measures real host wall time of the run; the sim itself stays virtual-time only")
        let t0 = std::time::Instant::now();
        let (r, e) = vread_bench::run_fanout_bench(8, threads);
        let dt = t0.elapsed().as_nanos() as f64;
        reports = r;
        events = e;
        if dt < best {
            best = dt;
        }
    }
    (reports, events, best)
}

/// One cold reader pass over a 2-way co-located replicated file through
/// the content-addressed host store at hash rate `hash`; returns
/// (engine events, simulated seconds). Mirrors the `ablate-cas`
/// experiment's topology at bench scale.
fn cas_cold_run(hash: f64) -> (u64, f64) {
    use vread_apps::driver::run_jobs_settled;
    use vread_apps::java_reader::{JavaReader, ReaderMode};
    use vread_bench::spec::{FileSpec, HostCacheSpec, VmRole};
    use vread_host::cluster::HostCacheMode;
    use vread_host::costs::Costs;

    const FILE: u64 = 64 << 20;
    let costs = Costs {
        cas_hash_cyc_per_byte: hash,
        ..Default::default()
    };
    let plan = vread_bench::DeployPlan::new(42)
        .path(vread_bench::ReadPath::VreadRdma)
        .costs(costs)
        .host("h1", 8, 2.0)
        .vm("client", "h1", VmRole::Client, None)
        .vm("dn1", "h1", VmRole::Datanode, None)
        .vm("dn2", "h1", VmRole::Datanode, None)
        .file(FileSpec {
            path: "/f".to_owned(),
            mb: FILE >> 20,
            placement: vec!["dn1".to_owned(), "dn2".to_owned()],
            replicate: true,
        })
        .host_cache(HostCacheSpec {
            mode: HostCacheMode::Cas,
            capacity_mb: None,
            chunk_kb: None,
        });
    let mut d = vread_bench::Deployment::build(plan).expect("cas bench deploys");
    let vm = d.first_client().expect("client VM");
    let client = d.make_client(vm);
    let job = d.w.register_job("reader");
    let rdr = JavaReader::new(
        vm,
        ReaderMode::Dfs {
            client,
            path: "/f".to_owned(),
        },
        1 << 20,
        FILE,
    )
    .with_job(job);
    let a = d.w.add_actor("reader", rdr);
    d.w.send_now(a, Start);
    let ok = run_jobs_settled(
        &mut d.w,
        SimDuration::from_secs(3_000),
        SimDuration::from_millis(50),
    );
    assert!(ok, "cas cold pass did not finish within the cap");
    let secs = d.w.metrics.mean("reader_done_at_s") - d.w.metrics.mean("reader_start_at_s");
    (d.w.events_processed(), secs)
}

fn bench_engine(out: &str) {
    let (events, ns) = measure(20, || {
        let mut w = World::new(1);
        let a = w.add_actor("a", PingPong { left: 1_000_000 });
        w.send_now(a, Start);
        w
    });
    let pingpong = BenchResult {
        name: "message_pingpong_1m",
        events,
        ns_per_event: ns,
        parallel: None,
        extras: Vec::new(),
    };

    let (events, ns) = measure(20, || {
        let mut w = World::new(1);
        let h = w.add_host("h", 4, 2.0);
        let ts: Vec<ThreadId> = (0..5).map(|i| w.add_thread(h, &format!("t{i}"))).collect();
        let sink = w.add_actor("sink", Sink);
        for _ in 0..2000 {
            let st: Vec<Stage> = ts
                .iter()
                .map(|&t| Stage::cpu(t, 10_000, CpuCategory::Other))
                .collect();
            w.start_chain(st, sink, Fin);
        }
        w
    });
    let chain = BenchResult {
        name: "chain_5stage_x2000",
        events,
        ns_per_event: ns,
        parallel: None,
        extras: Vec::new(),
    };

    // Multi-host parallel bench: 8 independent host shards on the engine
    // pool. ns/event is taken from the 1-thread run (comparable with the
    // sequential benches above); speedup is 1-thread wall over 4-thread
    // wall, and the byte-identity of the two runs is asserted here so the
    // perf gate doubles as a determinism check.
    let (seq_reports, events, wall1) = measure_fanout(3, 1);
    let (par_reports, _, wall4) = measure_fanout(3, 4);
    assert_eq!(
        seq_reports, par_reports,
        "cluster_8host_fanout reports must be byte-identical at 1 and 4 engine threads"
    );
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cluster = BenchResult {
        name: "cluster_8host_fanout",
        events,
        ns_per_event: wall1 / events as f64,
        parallel: Some((4, wall1 / wall4, host_cpus)),
        extras: Vec::new(),
    };

    // CAS dedup ablation cell: the wall cost of driving a cold read
    // through the content-addressed host store, plus the *simulated*
    // hash-admission overhead (slowdown of the cold pass at the default
    // hash rate vs free hashing) — a deterministic number BENCH files
    // can track across commits.
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    let mut secs_hashed = 0.0;
    for _ in 0..3 {
        // vread-lint: allow(wall-clock, "bench-engine measures real host wall time of the run; the sim itself stays virtual-time only")
        let t0 = std::time::Instant::now();
        let (e, s) = cas_cold_run(0.45);
        let dt = t0.elapsed().as_nanos() as f64;
        events = e;
        secs_hashed = s;
        if dt < best {
            best = dt;
        }
    }
    let (_, secs_free) = cas_cold_run(0.0);
    let cas = BenchResult {
        name: "cas_dedup_cold_pass",
        events,
        ns_per_event: best / events as f64,
        parallel: None,
        extras: vec![(
            "hash_overhead_pct",
            (secs_hashed - secs_free) / secs_free * 100.0,
        )],
    };

    let benches = [&pingpong, &chain, &cluster, &cas];
    let mut json = String::from("{\n  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        json.push_str(&b.to_json_entry());
        json.push_str(if i + 1 < benches.len() { ",\n" } else { "\n" });
        print!(
            "{:<24} {:>10.2} ns/event  {:>12.0} events/sec",
            b.name,
            b.ns_per_event,
            b.events_per_sec()
        );
        match b.parallel {
            Some((threads, speedup, cpus)) => {
                println!("  speedup x{threads}: {speedup:.2} (host_cpus={cpus})");
            }
            None => println!(),
        }
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("[bench-engine written to {out}]");
}

//! Scenario builders mirroring the paper's testbed (§5, Figure 10).
//!
//! Two quad-core Xeon hosts (frequency set per experiment with the
//! simulated `cpufreq-set`), 16 GB RAM, SSD and 10 GbE RoCE NICs. Host 1
//! runs the client VM (which also hosts the namenode) and datanode 1;
//! host 2 runs datanode 2. In the *4 VMs* configuration each host is
//! filled to four VMs with 85%-lookbusy background VMs.

use crate::deploy::{make_read_client, DeployPlan, Deployment};
use crate::spec::VmRole;
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::{DatanodeIx, HdfsMeta};
use vread_host::cluster::{Cluster, HostIx, VmId};
use vread_host::costs::Costs;
use vread_sim::prelude::*;

/// Which data path the HDFS client uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// Unmodified HDFS (Figure 1 flow).
    Vanilla,
    /// vRead with RDMA remote reads.
    VreadRdma,
    /// vRead with the user-space TCP fallback.
    VreadTcp,
}

impl ReadPath {
    /// Every path, in figure-legend order.
    pub const ALL: [ReadPath; 3] = [ReadPath::Vanilla, ReadPath::VreadRdma, ReadPath::VreadTcp];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ReadPath::Vanilla => "vanilla",
            ReadPath::VreadRdma => "vRead",
            ReadPath::VreadTcp => "vRead-tcp",
        }
    }

    /// The scenario-JSON spelling (`"vanilla"` / `"vread-rdma"` /
    /// `"vread-tcp"`), inverse of [`ReadPath::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            ReadPath::Vanilla => "vanilla",
            ReadPath::VreadRdma => "vread-rdma",
            ReadPath::VreadTcp => "vread-tcp",
        }
    }

    /// Parses the scenario-JSON spelling.
    pub fn parse(s: &str) -> Option<ReadPath> {
        match s {
            "vanilla" => Some(ReadPath::Vanilla),
            "vread-rdma" => Some(ReadPath::VreadRdma),
            "vread-tcp" => Some(ReadPath::VreadTcp),
            _ => None,
        }
    }
}

/// Where the data a workload reads lives (paper terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// On the datanode VM co-located with the client.
    CoLocated,
    /// On the datanode VM on the other host.
    Remote,
    /// Alternating blocks on both datanodes.
    Hybrid,
}

impl Locality {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Locality::CoLocated => "co-located",
            Locality::Remote => "remote",
            Locality::Hybrid => "hybrid",
        }
    }
}

/// Testbed configuration.
#[derive(Debug, Clone)]
pub struct TestbedOpts {
    /// Host clock frequency in GHz (the paper uses 1.6 / 2.0 / 3.2).
    pub ghz: f64,
    /// `true` = the paper's "4 VMs" configuration (hosts filled with
    /// 85% lookbusy background VMs); `false` = "2 VMs".
    pub four_vms: bool,
    /// Data path under test.
    pub path: ReadPath,
    /// RNG seed.
    pub seed: u64,
    /// Cost-model override (ablations tweak e.g. the ring slot size).
    pub costs: Costs,
}

impl Default for TestbedOpts {
    fn default() -> Self {
        TestbedOpts {
            ghz: 2.0,
            four_vms: false,
            path: ReadPath::Vanilla,
            seed: 42,
            costs: Costs::default(),
        }
    }
}

impl TestbedOpts {
    /// The defaults (2.0 GHz, "2 VMs", vanilla path, seed 42).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the host clock frequency.
    pub fn ghz(mut self, ghz: f64) -> Self {
        self.ghz = ghz;
        self
    }

    /// Selects the "4 VMs" (true) or "2 VMs" (false) configuration.
    pub fn four_vms(mut self, four_vms: bool) -> Self {
        self.four_vms = four_vms;
        self
    }

    /// Sets the data path under test.
    pub fn path(mut self, path: ReadPath) -> Self {
        self.path = path;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the cost model.
    pub fn costs(mut self, costs: Costs) -> Self {
        self.costs = costs;
        self
    }
}

/// The assembled two-host testbed.
pub struct Testbed {
    /// The world.
    pub w: World,
    /// Scenario options used to build it.
    pub opts: TestbedOpts,
    /// The measurement client VM (hosts the namenode too).
    pub client_vm: VmId,
    /// Datanode co-located with the client.
    pub dn_local: DatanodeIx,
    /// Datanode on the second host.
    pub dn_remote: DatanodeIx,
    /// Datanode VM ids (local, remote).
    pub dn_vms: (VmId, VmId),
    /// Host indices (host1 = client side, host2).
    pub hosts: (HostIx, HostIx),
}

impl Testbed {
    /// Builds the Figure 10 deployment (via [`Deployment::build`], the
    /// single home of topology wiring).
    pub fn build(opts: TestbedOpts) -> Testbed {
        let mut plan = DeployPlan::new(opts.seed)
            .path(opts.path)
            .costs(opts.costs.clone())
            .host("host1", 4, opts.ghz)
            .host("host2", 4, opts.ghz)
            .vm("client", "host1", VmRole::Client, None)
            .vm("datanode1", "host1", VmRole::Datanode, None)
            .vm("datanode2", "host2", VmRole::Datanode, None);
        // Background VMs (the "rest" up to 4 per host).
        if opts.four_vms {
            for i in 0..2 {
                plan = plan.vm(&format!("bg1-{i}"), "host1", VmRole::Lookbusy, None);
            }
            for i in 0..3 {
                plan = plan.vm(&format!("bg2-{i}"), "host2", VmRole::Lookbusy, None);
            }
        }
        let mut d = Deployment::build(plan).expect("testbed plan is well-formed");
        d.start_background();
        Testbed {
            client_vm: d.vm_ids["client"],
            dn_local: d.dn_ixs[0],
            dn_remote: d.dn_ixs[1],
            dn_vms: (d.vm_ids["datanode1"], d.vm_ids["datanode2"]),
            hosts: (d.host_ix["host1"], d.host_ix["host2"]),
            w: d.w,
            opts,
        }
    }

    /// Lays out `bytes` at `path` according to `locality`.
    pub fn populate(&mut self, path: &str, bytes: u64, locality: Locality) {
        let placement = self.placement(locality);
        populate_file(&mut self.w, path, bytes, &placement);
    }

    /// The block placement for a locality.
    pub fn placement(&self, locality: Locality) -> Placement {
        match locality {
            Locality::CoLocated => Placement::One(self.dn_local),
            Locality::Remote => Placement::One(self.dn_remote),
            Locality::Hybrid => Placement::RoundRobin(vec![self.dn_local, self.dn_remote]),
        }
    }

    /// Deploys the vRead daemons (when the path under test needs them)
    /// and creates the DFS client. Call *after* [`Testbed::populate`] so
    /// the initial mounts see the data.
    pub fn make_client(&mut self) -> ActorId {
        make_read_client(&mut self.w, self.opts.path, self.client_vm)
    }

    /// Controls where *written* blocks land: `CoLocated` keeps the HVE
    /// placement (co-located datanode), `Remote` forces the remote
    /// datanode, `Hybrid` disables topology awareness so allocation
    /// round-robins over both datanodes.
    pub fn configure_write_locality(&mut self, locality: Locality) {
        let dn_remote = self.dn_remote;
        let meta = self.w.ext.get_mut::<HdfsMeta>().expect("meta");
        match locality {
            Locality::CoLocated => {
                meta.topology_aware = true;
                meta.forced_primary = None;
            }
            Locality::Remote => {
                meta.topology_aware = false;
                meta.forced_primary = Some(dn_remote);
            }
            Locality::Hybrid => {
                meta.topology_aware = false;
                meta.forced_primary = None;
            }
        }
    }

    /// Clears guest + host caches (the paper's pre-read `drop_caches`).
    pub fn drop_caches(&mut self) {
        let cl = self.w.ext.get_mut::<Cluster>().expect("cluster");
        cl.clear_all_caches();
    }

    /// Thread handles often needed by reports: (client vcpu, client
    /// vhost, dn-local vcpu, dn-local vhost).
    pub fn key_threads(&self) -> (ThreadId, ThreadId, ThreadId, ThreadId) {
        let cl = self.w.ext.get::<Cluster>().expect("cluster");
        (
            cl.vm(self.client_vm).vcpu,
            cl.vm(self.client_vm).vhost,
            cl.vm(self.dn_vms.0).vcpu,
            cl.vm(self.dn_vms.0).vhost,
        )
    }

    /// Daemon threads (host1, host2), if vRead is deployed.
    pub fn daemon_threads(&self) -> Option<(ThreadId, ThreadId)> {
        let reg = self.w.ext.get::<vread_core::VreadRegistry>()?;
        Some((
            reg.daemons[&self.hosts.0 .0].1,
            reg.daemons[&self.hosts.1 .0].1,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_vm_configurations() {
        let tb = Testbed::build(TestbedOpts::default());
        let cl = tb.w.ext.get::<Cluster>().unwrap();
        assert_eq!(cl.vms.len(), 3);
        let tb4 = Testbed::build(TestbedOpts::new().four_vms(true));
        let cl4 = tb4.w.ext.get::<Cluster>().unwrap();
        assert_eq!(cl4.vms.len(), 8, "hosts filled to 4 VMs each");
    }

    #[test]
    fn populate_and_clients_work_for_all_paths() {
        for path in [ReadPath::Vanilla, ReadPath::VreadRdma, ReadPath::VreadTcp] {
            let mut tb = Testbed::build(TestbedOpts::new().path(path));
            tb.populate("/d", 4 << 20, Locality::Hybrid);
            let _client = tb.make_client();
            assert!(tb.w.ext.get::<HdfsMeta>().unwrap().file("/d").is_some());
        }
    }
}

//! Timeline reporting: fold the sim's telemetry timeline
//! ([`vread_sim::Timeline`]) into scenario reports, a per-window
//! tail-latency table and Perfetto counter tracks.
//!
//! The sim layer records; this module summarizes. A scenario with a
//! `"timeline"` block gains a `timeline` report section containing the
//! per-window read-latency quantiles (p50/p99/p999), the whole-run
//! quantiles, every sampled series, and the detected **saturation
//! point** — the first window whose p99 exceeds
//! [`SATURATION_X`] times the baseline (the first non-empty window).
//! That is the paper's tail argument in one number: under rising
//! concurrency the vanilla path's p99 blows past the multiplier while
//! vRead's stays flat.
//!
//! Scenarios without the block produce no summary and serialize
//! byte-identically to before the timeline existed.

use std::fmt::Write as _;

use crate::json::{n, obj, s, Json};
use vread_sim::engine::World;

/// Saturation multiplier: a window is saturated when its p99 exceeds
/// this factor times the baseline window's p99.
pub const SATURATION_X: f64 = 3.0;

/// One latency window of the run.
#[derive(Debug, Clone, Copy)]
pub struct TimelineWindow {
    /// Window start in simulated milliseconds.
    pub start_ms: u64,
    /// Reads completing in this window.
    pub reads: u64,
    /// Median read latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile read latency (ms).
    pub p99_ms: f64,
    /// 99.9th-percentile read latency (ms).
    pub p999_ms: f64,
}

/// One sampled series, `(time_ms, value)` per tick.
#[derive(Debug, Clone)]
pub struct TimelineSeries {
    /// Series name (`sched.h1.runq`, `gauge.ring.h0.bytes`, …).
    pub name: String,
    /// Points in tick order.
    pub points: Vec<(f64, f64)>,
}

/// The report-side rollup of a run's telemetry timeline.
#[derive(Debug, Clone)]
pub struct TimelineSummary {
    /// Sampling period (= latency-window length) in simulated ms.
    pub sample_ms: u64,
    /// Sampler ticks taken.
    pub ticks: u64,
    /// Reads observed over the whole run.
    pub reads: u64,
    /// Whole-run median read latency (ms).
    pub p50_ms: f64,
    /// Whole-run p99 read latency (ms).
    pub p99_ms: f64,
    /// Whole-run p999 read latency (ms).
    pub p999_ms: f64,
    /// Slowest read's bucket representative (ms).
    pub max_ms: f64,
    /// Per-window latency rows, in time order.
    pub windows: Vec<TimelineWindow>,
    /// Every sampled series, in first-sample order.
    pub series: Vec<TimelineSeries>,
    /// Start of the first saturated window (p99 > [`SATURATION_X`] ×
    /// baseline p99), if any.
    pub saturation_ms: Option<u64>,
}

fn ns_ms(v: u64) -> f64 {
    v as f64 / 1e6
}

impl TimelineSummary {
    /// Collects the summary from a finished world's timeline.
    pub fn collect(w: &World) -> TimelineSummary {
        let tl = &w.timeline;
        let sample_ms = tl.sample_every().as_nanos() / 1_000_000;
        let windows: Vec<TimelineWindow> = tl
            .windows()
            .map(|(start, h)| TimelineWindow {
                start_ms: start.as_nanos() / 1_000_000,
                reads: h.count(),
                p50_ms: ns_ms(h.quantile(0.5)),
                p99_ms: ns_ms(h.quantile(0.99)),
                p999_ms: ns_ms(h.quantile(0.999)),
            })
            .collect();
        // Saturation: baseline is the first window with any reads;
        // flag the first later window whose p99 exceeds the multiple.
        let baseline = windows.iter().find(|w| w.reads > 0).map(|w| w.p99_ms);
        let saturation_ms = baseline.and_then(|base| {
            windows
                .iter()
                .find(|w| w.reads > 0 && w.p99_ms > SATURATION_X * base)
                .map(|w| w.start_ms)
        });
        let run = tl.run_hist();
        let series = tl
            .series()
            .map(|(name, pts)| TimelineSeries {
                name: name.to_owned(),
                points: pts
                    .iter()
                    .map(|&(t, v)| (t.as_nanos() as f64 / 1e6, v))
                    .collect(),
            })
            .collect();
        TimelineSummary {
            sample_ms,
            ticks: tl.ticks(),
            reads: run.count(),
            p50_ms: ns_ms(run.quantile(0.5)),
            p99_ms: ns_ms(run.quantile(0.99)),
            p999_ms: ns_ms(run.quantile(0.999)),
            max_ms: ns_ms(run.max()),
            windows,
            series,
            saturation_ms,
        }
    }

    /// The per-window table plus the saturation verdict, as deterministic
    /// fixed-point text (diffable across `--jobs` / `--engine-threads`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline: sample {} ms, {} ticks, {} series, {} reads  \
             p50 {:.3} ms  p99 {:.3} ms  p999 {:.3} ms  max {:.3} ms",
            self.sample_ms,
            self.ticks,
            self.series.len(),
            self.reads,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms,
        );
        let _ = writeln!(
            out,
            "{:>10} {:>7} {:>10} {:>10} {:>10}",
            "window_ms", "reads", "p50_ms", "p99_ms", "p999_ms"
        );
        for w in &self.windows {
            let _ = writeln!(
                out,
                "{:>10} {:>7} {:>10.3} {:>10.3} {:>10.3}",
                w.start_ms, w.reads, w.p50_ms, w.p99_ms, w.p999_ms
            );
        }
        match self.saturation_ms {
            Some(at) => {
                let _ = writeln!(
                    out,
                    "saturation: p99 exceeds {SATURATION_X:.1}x the baseline window at {at} ms"
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "saturation: none (p99 stays within {SATURATION_X:.1}x of the baseline window)"
                );
            }
        }
        out
    }

    /// The report's `"timeline"` JSON block.
    pub fn to_json(&self) -> Json {
        let windows = Json::Arr(
            self.windows
                .iter()
                .map(|w| {
                    obj(vec![
                        ("start_ms", n(w.start_ms as f64)),
                        ("reads", n(w.reads as f64)),
                        ("p50_ms", n(w.p50_ms)),
                        ("p99_ms", n(w.p99_ms)),
                        ("p999_ms", n(w.p999_ms)),
                    ])
                })
                .collect(),
        );
        let series = Json::Arr(
            self.series
                .iter()
                .map(|sr| {
                    obj(vec![
                        ("name", s(&sr.name)),
                        (
                            "points",
                            Json::Arr(
                                sr.points
                                    .iter()
                                    .map(|&(t, v)| Json::Arr(vec![n(t), n(v)]))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        obj(vec![
            ("sample_ms", n(self.sample_ms as f64)),
            ("ticks", n(self.ticks as f64)),
            ("reads", n(self.reads as f64)),
            ("p50_ms", n(self.p50_ms)),
            ("p99_ms", n(self.p99_ms)),
            ("p999_ms", n(self.p999_ms)),
            ("max_ms", n(self.max_ms)),
            (
                "saturation_ms",
                match self.saturation_ms {
                    Some(at) => n(at as f64),
                    None => Json::Null,
                },
            ),
            ("windows", windows),
            ("series", series),
        ])
    }

    /// Splices Perfetto counter tracks (`"ph":"C"` events: one counter
    /// per sampled series, plus a `read.p99_ms` counter per window) into
    /// a Chrome trace produced by
    /// [`chrome_trace_json`](vread_sim::span::SpanReport::chrome_trace_json).
    /// Returns the trace unchanged when it isn't the expected shape.
    pub fn splice_into_chrome_trace(&self, trace: &str) -> String {
        const TAIL: &str = "],\"displayTimeUnit\":\"ms\"}";
        let Some(at) = trace.rfind(TAIL) else {
            return trace.to_owned();
        };
        let mut events = String::new();
        let mut sep = !trace[..at].ends_with('[');
        let push = |events: &mut String, sep: &mut bool, name: &str, ts_ms: f64, v: f64| {
            if *sep {
                events.push(',');
            }
            *sep = true;
            let _ = write!(
                events,
                "{{\"name\":\"{}\",\"cat\":\"timeline\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":0,\
                 \"args\":{{\"value\":{}}}}}",
                name,
                ts_ms * 1e3,
                v,
            );
        };
        for sr in &self.series {
            for &(t, v) in &sr.points {
                push(&mut events, &mut sep, &sr.name, t, v);
            }
        }
        for w in &self.windows {
            push(
                &mut events,
                &mut sep,
                "read.p99_ms",
                w.start_ms as f64,
                w.p99_ms,
            );
        }
        let mut out = String::with_capacity(trace.len() + events.len());
        out.push_str(&trace[..at]);
        out.push_str(&events);
        out.push_str(&trace[at..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(p99s: &[(u64, u64, f64)]) -> TimelineSummary {
        TimelineSummary {
            sample_ms: 10,
            ticks: 0,
            reads: p99s.iter().map(|&(_, r, _)| r).sum(),
            p50_ms: 1.0,
            p99_ms: 2.0,
            p999_ms: 3.0,
            max_ms: 4.0,
            windows: p99s
                .iter()
                .map(|&(start_ms, reads, p99_ms)| TimelineWindow {
                    start_ms,
                    reads,
                    p50_ms: p99_ms / 2.0,
                    p99_ms,
                    p999_ms: p99_ms,
                })
                .collect(),
            series: vec![TimelineSeries {
                name: "sched.h1.runq".to_owned(),
                points: vec![(0.0, 1.0), (10.0, 2.0)],
            }],
            saturation_ms: None,
        }
    }

    #[test]
    fn saturation_detects_first_exceeding_window() {
        // baseline p99 = 1.0 (first non-empty window); 3.5 > 3x
        let rows = [(0, 4, 1.0), (10, 4, 2.0), (20, 0, 99.0), (30, 4, 3.5)];
        let s = summary(&rows);
        let base = s.windows.iter().find(|w| w.reads > 0).unwrap().p99_ms;
        let sat = s
            .windows
            .iter()
            .find(|w| w.reads > 0 && w.p99_ms > SATURATION_X * base)
            .map(|w| w.start_ms);
        assert_eq!(sat, Some(30), "empty windows never count as saturated");
    }

    #[test]
    fn render_and_json_are_stable() {
        let s = summary(&[(0, 4, 1.0), (10, 2, 1.5)]);
        let text = s.render();
        assert!(text.contains("window_ms"));
        assert!(text.contains("saturation: none"));
        let j = s.to_json().pretty();
        assert!(j.contains("\"sample_ms\": 10"));
        assert!(j.contains("\"saturation_ms\": null"));
        assert!(j.contains("sched.h1.runq"));
    }

    #[test]
    fn splice_keeps_trace_valid_shape() {
        let s = summary(&[(0, 4, 1.0)]);
        let empty = "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";
        let spliced = s.splice_into_chrome_trace(empty);
        assert!(spliced.starts_with("{\"traceEvents\":[{\"name\":\"sched.h1.runq\""));
        assert!(spliced.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(
            !spliced.contains("[,"),
            "no leading comma after empty array"
        );

        let nonempty = "{\"traceEvents\":[{\"ph\":\"X\"}],\"displayTimeUnit\":\"ms\"}";
        let spliced = s.splice_into_chrome_trace(nonempty);
        assert!(spliced.contains("{\"ph\":\"X\"},{\"name\":\"sched.h1.runq\""));

        // unknown shape passes through untouched
        assert_eq!(s.splice_into_chrome_trace("{}"), "{}");
    }
}

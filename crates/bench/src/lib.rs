//! # vread-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! on the simulated testbed, plus the DESIGN.md ablations. Run via the
//! `repro` binary:
//!
//! ```text
//! cargo run --release -p vread-bench --bin repro -- all
//! cargo run --release -p vread-bench --bin repro -- fig11 table2
//! ```
//!
//! Criterion micro-benchmarks of the hot paths (`cargo bench`) live in
//! `benches/`.

#![forbid(unsafe_code)]

pub mod deploy;
pub mod engine;
pub mod experiments;
pub mod faults;
pub mod json;
pub mod report;
pub mod scenarios;
pub mod spans;
pub mod spec;
pub mod timeline;

pub use deploy::{make_read_client, DeployPlan, Deployment};
pub use engine::{cluster_fanout_spec, partition, run_fanout_bench, run_partitioned};
pub use faults::{collect_fault_report, random_plan, FaultKind, FaultReport, FaultSpec};
pub use report::{improvement_pct, reduction_pct, Row, Table};
pub use scenarios::{Locality, ReadPath, Testbed, TestbedOpts};
pub use spans::{ReadAggregate, SpanSummary};
pub use spec::{
    HostCacheReport, HostCacheSpec, ScenarioBuilder, ScenarioReport, ScenarioSpec, SpecError,
    TimelineSpec, WorkloadBinding, WorkloadReport, WorkloadSpec,
};
pub use timeline::{TimelineSeries, TimelineSummary, TimelineWindow, SATURATION_X};

//! Span rollups for scenario reports: the per-layer cycle/copy table,
//! the copies-per-read ledger aggregate, and their JSON/text forms.
//!
//! The raw recorder lives in `vread_sim::span`; this module adapts a
//! drained [`SpanReport`] to the harness's report surface. A summary is
//! attached to a [`crate::ScenarioReport`] only when the scenario asked
//! for tracing (`"spans": true`), so spans-off reports serialize exactly
//! as before.

use std::fmt::Write as _;

use vread_sim::prelude::*;
use vread_sim::SpanReport;

use crate::json::{n, obj, s, Json};

/// Span-derived observability for one scenario run.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    /// The drained recorder output: all spans in `(begin, id)` order,
    /// fault marks, and the unattributed-cycle pool.
    pub report: SpanReport,
    /// Total cycles the engine accounted across every thread and
    /// category while the run executed — the right-hand side of the
    /// conservation invariant `span cycles + unattributed == acct`.
    pub acct_cycles: f64,
}

/// Byte-weighted aggregate over the per-root read ledger.
#[derive(Debug, Clone, Copy)]
pub struct ReadAggregate {
    /// Root spans that delivered payload.
    pub reads: usize,
    /// Payload bytes over all reads.
    pub payload_bytes: u64,
    /// Copy bytes over all reads' subtrees.
    pub copy_bytes: u64,
    /// Copy operations over all reads' subtrees.
    pub copies: u64,
    /// Bytes served by zero-copy mappings over all reads' subtrees
    /// (content-addressed dedup hits; 0 on copy-only paths).
    pub mapped_bytes: u64,
    /// Mapping operations over all reads' subtrees.
    pub maps: u64,
    /// Smallest per-read `copy_bytes / payload_bytes`.
    pub min_copies_per_read: f64,
    /// Largest per-read `copy_bytes / payload_bytes`.
    pub max_copies_per_read: f64,
}

impl ReadAggregate {
    /// Byte-weighted mean copies per read (the paper's "data copies").
    pub fn copies_per_read(&self) -> f64 {
        if self.payload_bytes == 0 {
            0.0
        } else {
            self.copy_bytes as f64 / self.payload_bytes as f64
        }
    }
}

impl SpanSummary {
    /// Drains the world's recorder and snapshots the engine's total
    /// cycle accounting for the conservation check.
    pub fn collect(w: &mut World) -> SpanSummary {
        let report = w.spans.drain();
        let mut acct_cycles = 0.0;
        for t in 0..w.acct.len() {
            for cat in CpuCategory::ALL {
                acct_cycles += w.acct.cycles(t, cat);
            }
        }
        SpanSummary {
            report,
            acct_cycles,
        }
    }

    /// Aggregates the read ledger into one row.
    pub fn reads(&self) -> ReadAggregate {
        let mut agg = ReadAggregate {
            reads: 0,
            payload_bytes: 0,
            copy_bytes: 0,
            copies: 0,
            mapped_bytes: 0,
            maps: 0,
            min_copies_per_read: f64::INFINITY,
            max_copies_per_read: 0.0,
        };
        for r in self.report.read_ledger() {
            agg.reads += 1;
            agg.payload_bytes += r.payload_bytes;
            agg.copy_bytes += r.copy_bytes;
            agg.copies += r.copies;
            agg.mapped_bytes += r.mapped_bytes;
            agg.maps += r.maps;
            agg.min_copies_per_read = agg.min_copies_per_read.min(r.copies_per_read);
            agg.max_copies_per_read = agg.max_copies_per_read.max(r.copies_per_read);
        }
        if agg.reads == 0 {
            agg.min_copies_per_read = 0.0;
        }
        agg
    }

    /// `(span cycles + unattributed) - acct cycles`. Zero up to float
    /// rounding when every charge site is span-aware.
    pub fn conservation_gap(&self) -> f64 {
        self.report.total_cycles() + self.report.unattributed_cycles - self.acct_cycles
    }

    /// `true` when the conservation gap is within float rounding of the
    /// engine's total.
    pub fn conserves_cycles(&self) -> bool {
        self.conservation_gap().abs() <= self.acct_cycles.abs() * 1e-6 + 1.0
    }

    /// Renders the per-layer table, read ledger, and conservation line
    /// as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>12} {:>10} {:>8} {:>10}",
            "layer", "spans", "Mcycles", "copy_MB", "copies", "q_wait_ms"
        );
        for row in self.report.layer_table() {
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>12.3} {:>10.2} {:>8} {:>10.3}",
                row.name,
                row.count,
                row.cycles / 1e6,
                row.copy_bytes as f64 / 1e6,
                row.copies,
                row.queue_wait_ns as f64 / 1e6,
            );
        }
        let agg = self.reads();
        let _ = writeln!(
            out,
            "reads: {}  payload {:.1} MB  copies/read {:.2} (min {:.2}, max {:.2})",
            agg.reads,
            agg.payload_bytes as f64 / 1e6,
            agg.copies_per_read(),
            agg.min_copies_per_read,
            agg.max_copies_per_read,
        );
        if agg.mapped_bytes > 0 || agg.maps > 0 {
            let _ = writeln!(
                out,
                "mapped: {:.1} MB in {} mappings (zero-copy dedup serves)",
                agg.mapped_bytes as f64 / 1e6,
                agg.maps,
            );
        }
        let _ = writeln!(
            out,
            "cycles: spans {:.0} + unattributed {:.0} vs engine {:.0} ({})",
            self.report.total_cycles(),
            self.report.unattributed_cycles,
            self.acct_cycles,
            if self.conserves_cycles() {
                "conserved"
            } else {
                "NOT CONSERVED"
            },
        );
        out
    }

    /// Serializes the summary (layer table + read aggregate +
    /// conservation figures) as a JSON value with a fixed field order.
    pub fn to_json(&self) -> Json {
        let layers = Json::Arr(
            self.report
                .layer_table()
                .into_iter()
                .map(|r| {
                    obj(vec![
                        ("name", s(r.name)),
                        ("count", n(r.count as f64)),
                        ("cycles", n(r.cycles)),
                        ("bytes", n(r.bytes as f64)),
                        ("copy_bytes", n(r.copy_bytes as f64)),
                        ("copies", n(r.copies as f64)),
                        ("queue_wait_ns", n(r.queue_wait_ns as f64)),
                        (
                            "cycles_by_bucket",
                            Json::Arr(
                                r.cycles_by_bucket
                                    .iter()
                                    .map(|(k, v)| Json::Arr(vec![s(*k), n(*v)]))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let agg = self.reads();
        let mut read_fields = vec![
            ("count", n(agg.reads as f64)),
            ("payload_bytes", n(agg.payload_bytes as f64)),
            ("copy_bytes", n(agg.copy_bytes as f64)),
            ("copies", n(agg.copies as f64)),
        ];
        if agg.mapped_bytes > 0 || agg.maps > 0 {
            // Only content-addressed runs move mapped bytes; copy-only
            // reports keep their exact historical serialization.
            read_fields.push(("mapped_bytes", n(agg.mapped_bytes as f64)));
            read_fields.push(("maps", n(agg.maps as f64)));
        }
        read_fields.push(("copies_per_read", n(agg.copies_per_read())));
        read_fields.push(("min_copies_per_read", n(agg.min_copies_per_read)));
        read_fields.push(("max_copies_per_read", n(agg.max_copies_per_read)));
        obj(vec![
            ("layers", layers),
            ("reads", obj(read_fields)),
            ("span_cycles", n(self.report.total_cycles())),
            ("unattributed_cycles", n(self.report.unattributed_cycles)),
            ("acct_cycles", n(self.acct_cycles)),
        ])
    }
}

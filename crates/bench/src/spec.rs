//! Declarative scenarios: assemble and run a whole deployment from a
//! JSON description.
//!
//! ```json
//! {
//!   "seed": 7,
//!   "path": "vread-rdma",
//!   "hosts": [
//!     { "name": "host1", "cores": 4, "ghz": 2.0 },
//!     { "name": "host2", "cores": 4, "ghz": 2.0 }
//!   ],
//!   "vms": [
//!     { "name": "client", "host": "host1", "role": "client" },
//!     { "name": "dn1", "host": "host1", "role": "datanode" },
//!     { "name": "dn2", "host": "host2", "role": "datanode" },
//!     { "name": "bg1", "host": "host1", "role": "lookbusy", "busy": 0.85 }
//!   ],
//!   "files": [ { "path": "/data", "mb": 256, "placement": ["dn1", "dn2"] } ],
//!   "workload": { "kind": "dfsio-read", "files": ["/data"], "buffer_kb": 1024 }
//! }
//! ```
//!
//! Run with `repro scenario <file.json>`; the report (throughput, CPU,
//! per-thread busy time) is printed and returned as JSON.

use crate::faults::{
    build_fault_actions, collect_fault_report, plan_window, FaultKind, FaultReport, FaultSpec,
    FaultTargets,
};
use crate::json::{n, obj, s, Json};
use crate::scenarios::ReadPath;
use crate::spans::SpanSummary;

use vread_apps::dfsio::{DfsioConfig, DfsioMode, TestDfsio};
use vread_apps::driver::run_until_counter;
use vread_apps::java_reader::{JavaReader, ReaderMode};
use vread_apps::lookbusy::{llc_pressure, Lookbusy};
use vread_apps::netperf::deploy_netperf;
use vread_core::daemon::{deploy_vread, RemoteTransport};
use vread_core::VreadPath;
use vread_hdfs::client::{add_client, BlockReadPath, VanillaPath};
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::{deploy_hdfs, DatanodeIx, HdfsMeta};
use vread_host::cluster::{Cluster, VmId};
use vread_host::costs::Costs;
use vread_sim::fault::{schedule_faults, FaultTrace};
use vread_sim::prelude::*;

/// A physical host.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Host name (referenced by VMs).
    pub name: String,
    /// Cores (default 4).
    pub cores: usize,
    /// Clock in GHz (default 2.0).
    pub ghz: f64,
}

/// What a VM runs.
#[derive(Debug, Clone)]
pub enum VmRole {
    /// HDFS client (the first client VM also hosts the namenode).
    Client,
    /// HDFS datanode.
    Datanode,
    /// Background CPU load.
    Lookbusy,
}

/// A virtual machine.
#[derive(Debug, Clone)]
pub struct VmSpec {
    /// VM name.
    pub name: String,
    /// Host name it runs on.
    pub host: String,
    /// Role.
    pub role: VmRole,
    /// Lookbusy duty cycle (only for `lookbusy` VMs; default 0.85).
    pub busy: Option<f64>,
}

/// A pre-populated HDFS file.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// HDFS path.
    pub path: String,
    /// Size in MiB.
    pub mb: u64,
    /// Datanode names blocks round-robin over.
    pub placement: Vec<String>,
    /// `true` puts every block on *all* placement datanodes (rotating
    /// primaries) instead of round-robining — the 3-way-replication
    /// layout fault scenarios fail over inside.
    pub replicate: bool,
}

/// The measured workload.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// TestDFSIO read over `files`.
    DfsioRead {
        /// Files to read (must be populated).
        files: Vec<String>,
        /// Application buffer in KiB (default 1024).
        buffer_kb: u64,
    },
    /// TestDFSIO write creating `files` of `mb` MiB each.
    DfsioWrite {
        /// Files to create.
        files: Vec<String>,
        /// Per-file size in MiB.
        mb: u64,
    },
    /// Sequential reader over one file.
    Reader {
        /// File to read.
        path: String,
        /// Request size in KiB.
        request_kb: u64,
    },
    /// netperf TCP_RR between the client VM and the first datanode VM.
    Netperf {
        /// Request size in KiB.
        request_kb: u64,
        /// Measurement window in milliseconds.
        duration_ms: u64,
    },
}

/// A whole scenario.
///
/// ```rust
/// use vread_bench::ScenarioSpec;
///
/// let spec = ScenarioSpec::from_json(r#"{
///     "path": "vanilla",
///     "hosts": [ { "name": "h1" } ],
///     "vms": [
///         { "name": "client", "host": "h1", "role": "client" },
///         { "name": "dn1", "host": "h1", "role": "datanode" }
///     ],
///     "files": [ { "path": "/d", "mb": 8, "placement": ["dn1"] } ],
///     "workload": { "kind": "reader", "path": "/d", "request_kb": 1024 }
/// }"#)?;
/// let report = spec.run()?;
/// assert_eq!(report.bytes, 8 << 20);
/// # Ok::<(), vread_bench::SpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// RNG seed (default 42).
    pub seed: u64,
    /// Read path under test.
    pub path: ReadPath,
    /// Hosts.
    pub hosts: Vec<HostSpec>,
    /// VMs.
    pub vms: Vec<VmSpec>,
    /// Pre-populated files (default none).
    pub files: Vec<FileSpec>,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Planned faults (default none; see [`FaultSpec`]).
    pub faults: Vec<FaultSpec>,
    /// Enable the span flight recorder (default false). Adds a
    /// [`SpanSummary`] to the report; off-path runs serialize unchanged.
    pub spans: bool,
}

/// Scenario results.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Simulated seconds the workload took.
    pub elapsed_s: f64,
    /// Payload moved (bytes) — 0 for netperf.
    pub bytes: u64,
    /// Application throughput in MB/s (or transactions/s for netperf).
    pub rate: f64,
    /// Busy milliseconds per thread, by thread name.
    pub thread_busy_ms: Vec<(String, f64)>,
    /// CPU milliseconds by the paper's figure-legend buckets (whole
    /// deployment, lookbusy excluded).
    pub cpu_by_category_ms: Vec<(String, f64)>,
    /// Degradation summary — present only when the scenario planned
    /// faults, so fault-free reports serialize exactly as before.
    pub faults: Option<FaultReport>,
    /// Span rollups — present only when the scenario enabled tracing.
    pub spans: Option<SpanSummary>,
}

/// Errors building/running a scenario.
#[derive(Debug)]
pub enum SpecError {
    /// JSON didn't parse or a field was missing/mistyped.
    Parse(String),
    /// A reference (host, VM, datanode, file) didn't resolve.
    Unresolved(String),
    /// Config combination is invalid.
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "scenario JSON: {e}"),
            SpecError::Unresolved(s) => write!(f, "unresolved reference: {s}"),
            SpecError::Invalid(s) => write!(f, "invalid scenario: {s}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl ScenarioReport {
    /// Serializes the report as pretty JSON (fixed field order).
    pub fn to_json(&self) -> String {
        let pairs = |v: &[(String, f64)]| {
            Json::Arr(
                v.iter()
                    .map(|(k, ms)| Json::Arr(vec![s(k), n(*ms)]))
                    .collect(),
            )
        };
        let mut fields = vec![
            ("elapsed_s", n(self.elapsed_s)),
            ("bytes", n(self.bytes as f64)),
            ("rate", n(self.rate)),
            ("thread_busy_ms", pairs(&self.thread_busy_ms)),
            ("cpu_by_category_ms", pairs(&self.cpu_by_category_ms)),
        ];
        if let Some(f) = &self.faults {
            fields.push(("faults", f.to_json()));
        }
        if let Some(sp) = &self.spans {
            fields.push(("spans", sp.to_json()));
        }
        obj(fields).pretty()
    }
}

// -- manual JSON decoding (replaces serde derive) ---------------------------

pub(crate) fn parse_err(msg: impl Into<String>) -> SpecError {
    SpecError::Parse(msg.into())
}

pub(crate) fn req<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, SpecError> {
    j.get(key)
        .ok_or_else(|| parse_err(format!("{ctx}: missing field {key:?}")))
}

pub(crate) fn req_str(j: &Json, key: &str, ctx: &str) -> Result<String, SpecError> {
    req(j, key, ctx)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| parse_err(format!("{ctx}: field {key:?} must be a string")))
}

pub(crate) fn req_u64(j: &Json, key: &str, ctx: &str) -> Result<u64, SpecError> {
    req(j, key, ctx)?.as_u64().ok_or_else(|| {
        parse_err(format!(
            "{ctx}: field {key:?} must be a non-negative integer"
        ))
    })
}

pub(crate) fn opt_u64(j: &Json, key: &str, default: u64, ctx: &str) -> Result<u64, SpecError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            parse_err(format!(
                "{ctx}: field {key:?} must be a non-negative integer"
            ))
        }),
    }
}

pub(crate) fn req_arr<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], SpecError> {
    req(j, key, ctx)?
        .as_array()
        .ok_or_else(|| parse_err(format!("{ctx}: field {key:?} must be an array")))
}

pub(crate) fn str_list(j: &Json, key: &str, ctx: &str) -> Result<Vec<String>, SpecError> {
    req_arr(j, key, ctx)?
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_owned)
                .ok_or_else(|| parse_err(format!("{ctx}: {key:?} entries must be strings")))
        })
        .collect()
}

impl ScenarioSpec {
    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on malformed JSON or missing/mistyped
    /// fields.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        let j = Json::parse(json).map_err(|e| parse_err(e.to_string()))?;

        let hosts = req_arr(&j, "hosts", "scenario")?
            .iter()
            .map(|h| {
                Ok(HostSpec {
                    name: req_str(h, "name", "host")?,
                    cores: opt_u64(h, "cores", 4, "host")? as usize,
                    ghz: match h.get("ghz") {
                        None | Some(Json::Null) => 2.0,
                        Some(v) => v
                            .as_f64()
                            .ok_or_else(|| parse_err("host: field \"ghz\" must be a number"))?,
                    },
                })
            })
            .collect::<Result<Vec<_>, SpecError>>()?;

        let vms = req_arr(&j, "vms", "scenario")?
            .iter()
            .map(|v| {
                let role = match req_str(v, "role", "vm")?.as_str() {
                    "client" => VmRole::Client,
                    "datanode" => VmRole::Datanode,
                    "lookbusy" => VmRole::Lookbusy,
                    other => return Err(parse_err(format!("vm: unknown role {other:?}"))),
                };
                Ok(VmSpec {
                    name: req_str(v, "name", "vm")?,
                    host: req_str(v, "host", "vm")?,
                    role,
                    busy: match v.get("busy") {
                        None | Some(Json::Null) => None,
                        Some(b) => Some(
                            b.as_f64()
                                .ok_or_else(|| parse_err("vm: field \"busy\" must be a number"))?,
                        ),
                    },
                })
            })
            .collect::<Result<Vec<_>, SpecError>>()?;

        let files = match j.get("files") {
            None | Some(Json::Null) => Vec::new(),
            Some(f) => f
                .as_array()
                .ok_or_else(|| parse_err("scenario: field \"files\" must be an array"))?
                .iter()
                .map(|f| {
                    Ok(FileSpec {
                        path: req_str(f, "path", "file")?,
                        mb: req_u64(f, "mb", "file")?,
                        placement: str_list(f, "placement", "file")?,
                        replicate: match f.get("replicate") {
                            None | Some(Json::Null) => false,
                            Some(b) => b.as_bool().ok_or_else(|| {
                                parse_err("file: field \"replicate\" must be a boolean")
                            })?,
                        },
                    })
                })
                .collect::<Result<Vec<_>, SpecError>>()?,
        };

        let faults = match j.get("faults") {
            None | Some(Json::Null) => Vec::new(),
            Some(f) => f
                .as_array()
                .ok_or_else(|| parse_err("scenario: field \"faults\" must be an array"))?
                .iter()
                .map(FaultSpec::from_json)
                .collect::<Result<Vec<_>, SpecError>>()?,
        };

        let w = req(&j, "workload", "scenario")?;
        let workload = match req_str(w, "kind", "workload")?.as_str() {
            "dfsio-read" => WorkloadSpec::DfsioRead {
                files: str_list(w, "files", "workload")?,
                buffer_kb: opt_u64(w, "buffer_kb", 1024, "workload")?,
            },
            "dfsio-write" => WorkloadSpec::DfsioWrite {
                files: str_list(w, "files", "workload")?,
                mb: req_u64(w, "mb", "workload")?,
            },
            "reader" => WorkloadSpec::Reader {
                path: req_str(w, "path", "workload")?,
                request_kb: req_u64(w, "request_kb", "workload")?,
            },
            "netperf" => WorkloadSpec::Netperf {
                request_kb: req_u64(w, "request_kb", "workload")?,
                duration_ms: req_u64(w, "duration_ms", "workload")?,
            },
            other => return Err(parse_err(format!("workload: unknown kind {other:?}"))),
        };

        let path_s = req_str(&j, "path", "scenario")?;
        let path = ReadPath::parse(&path_s)
            .ok_or_else(|| parse_err(format!("scenario: unknown path {path_s:?}")))?;

        let spans = match j.get("spans") {
            None | Some(Json::Null) => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| parse_err("scenario: field \"spans\" must be a boolean"))?,
        };

        Ok(ScenarioSpec {
            seed: opt_u64(&j, "seed", 42, "scenario")?,
            path,
            hosts,
            vms,
            files,
            workload,
            faults,
            spans,
        })
    }

    /// Starts a [`ScenarioBuilder`] with the defaults (seed 42, vanilla
    /// path, nothing else).
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Builds and runs the scenario, returning the report.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when names don't resolve or the combination
    /// is invalid (no client VM, unknown path, …).
    pub fn run(&self) -> Result<ScenarioReport, SpecError> {
        let mut w = World::new(self.seed);
        if self.spans {
            // Enabled before any activity so the cycle-conservation
            // invariant covers deploy/populate work too.
            w.spans.enable();
        }
        let mut cl = Cluster::new(Costs::default());

        // hosts
        let mut host_ix = std::collections::HashMap::new();
        for h in &self.hosts {
            let ix = cl.add_host(&mut w, &h.name, h.cores, h.ghz);
            host_ix.insert(h.name.clone(), ix);
        }

        // VMs
        let mut vm_ids: std::collections::HashMap<String, VmId> = Default::default();
        let mut client_vm: Option<VmId> = None;
        let mut datanode_vms: Vec<(String, VmId)> = Vec::new();
        let mut lookbusy: Vec<(ThreadId, f64)> = Vec::new();
        let mut busy_per_host: std::collections::BTreeMap<String, usize> = Default::default();
        for v in &self.vms {
            let hix = *host_ix
                .get(&v.host)
                .ok_or_else(|| SpecError::Unresolved(format!("host {}", v.host)))?;
            let id = cl.add_vm(&mut w, hix, &v.name);
            vm_ids.insert(v.name.clone(), id);
            match v.role {
                VmRole::Client => {
                    if client_vm.is_none() {
                        client_vm = Some(id);
                    }
                }
                VmRole::Datanode => datanode_vms.push((v.name.clone(), id)),
                VmRole::Lookbusy => {
                    lookbusy.push((cl.vm(id).vcpu, v.busy.unwrap_or(0.85)));
                    *busy_per_host.entry(v.host.clone()).or_insert(0) += 1;
                }
            }
        }
        let client_vm = client_vm.ok_or_else(|| SpecError::Invalid("no client VM".to_owned()))?;
        if datanode_vms.is_empty() {
            return Err(SpecError::Invalid("no datanode VM".to_owned()));
        }
        // cache pressure per host from its lookbusy population
        for (host, n) in &busy_per_host {
            let hix = host_ix[host];
            let host_id = cl.hosts[hix.0].host;
            w.set_cache_pressure(host_id, llc_pressure(*n));
        }
        w.ext.insert(cl);

        // HDFS + data
        let dn_vms: Vec<VmId> = datanode_vms.iter().map(|(_, v)| *v).collect();
        let (_nn, dn_ixs) = deploy_hdfs(&mut w, client_vm, &dn_vms);
        let dn_by_name: std::collections::HashMap<&str, DatanodeIx> = datanode_vms
            .iter()
            .zip(&dn_ixs)
            .map(|((name, _), ix)| (name.as_str(), *ix))
            .collect();
        for f in &self.files {
            let dns: Vec<DatanodeIx> = f
                .placement
                .iter()
                .map(|n| {
                    dn_by_name
                        .get(n.as_str())
                        .copied()
                        .ok_or_else(|| SpecError::Unresolved(format!("datanode {n}")))
                })
                .collect::<Result<_, _>>()?;
            if dns.is_empty() {
                return Err(SpecError::Invalid(format!(
                    "file {} has no placement",
                    f.path
                )));
            }
            let placement = if f.replicate {
                Placement::Replicated(dns)
            } else {
                Placement::RoundRobin(dns)
            };
            populate_file(&mut w, &f.path, f.mb << 20, &placement);
        }

        // read path
        let path: Box<dyn BlockReadPath> = match self.path {
            ReadPath::Vanilla => Box::new(VanillaPath::new()),
            ReadPath::VreadRdma => {
                deploy_vread(&mut w, RemoteTransport::Rdma);
                Box::new(VreadPath::new())
            }
            ReadPath::VreadTcp => {
                deploy_vread(&mut w, RemoteTransport::Tcp);
                Box::new(VreadPath::new())
            }
        };
        let client = add_client(&mut w, client_vm, path);

        // background load
        for (thread, busy) in lookbusy {
            let lb = Lookbusy::new(thread, busy, SimDuration::from_millis(10));
            let a = w.add_actor("lookbusy", lb);
            w.send_now(a, Start);
        }

        // fault plan — armed before the workload starts so every fault
        // fires at its absolute scenario time
        if !self.faults.is_empty() {
            let datanode_set: std::collections::HashSet<VmId> =
                datanode_vms.iter().map(|(_, v)| *v).collect();
            let targets = FaultTargets {
                hosts: &host_ix,
                vms: &vm_ids,
                datanodes: &datanode_set,
            };
            let plan = build_fault_actions(&self.faults, &w, &targets)?;
            schedule_faults(&mut w, plan);
            // widen the trace window past the restores so
            // throughput-during-fault integrates over the whole outage
            let (window_start, window_end) = plan_window(&self.faults);
            w.ext.insert(FaultTrace {
                window_start,
                window_end,
            });
        }

        // workload
        let cap = SimDuration::from_secs(3_000);
        let (elapsed_s, bytes, rate) = match &self.workload {
            WorkloadSpec::DfsioRead { files, buffer_kb } => {
                let meta = w.ext.get::<HdfsMeta>().expect("meta");
                let sizes: Vec<u64> = files
                    .iter()
                    .map(|f| {
                        meta.file(f)
                            .map(|m| m.size())
                            .ok_or_else(|| SpecError::Unresolved(format!("file {f}")))
                    })
                    .collect::<Result<_, _>>()?;
                let file_bytes = sizes[0];
                let cfg = DfsioConfig {
                    buffer_bytes: buffer_kb << 10,
                    ..Default::default()
                };
                let job = TestDfsio::new(
                    client,
                    client_vm,
                    DfsioMode::Read,
                    files.clone(),
                    file_bytes,
                    cfg,
                );
                let a = w.add_actor("dfsio", job);
                w.send_now(a, Start);
                if !run_until_counter(
                    &mut w,
                    "dfsio_done",
                    1.0,
                    SimDuration::from_millis(100),
                    cap,
                ) {
                    return Err(SpecError::Invalid("workload did not finish".to_owned()));
                }
                let secs = w.metrics.mean("dfsio_done_at_s") - w.metrics.mean("dfsio_start_at_s");
                let b = w.metrics.counter("dfsio_bytes") as u64;
                (secs, b, b as f64 / 1e6 / secs)
            }
            WorkloadSpec::DfsioWrite { files, mb } => {
                let job = TestDfsio::new(
                    client,
                    client_vm,
                    DfsioMode::Write,
                    files.clone(),
                    mb << 20,
                    DfsioConfig::default(),
                );
                let a = w.add_actor("dfsio", job);
                w.send_now(a, Start);
                if !run_until_counter(
                    &mut w,
                    "dfsio_done",
                    1.0,
                    SimDuration::from_millis(100),
                    cap,
                ) {
                    return Err(SpecError::Invalid("workload did not finish".to_owned()));
                }
                let secs = w.metrics.mean("dfsio_done_at_s") - w.metrics.mean("dfsio_start_at_s");
                let b = w.metrics.counter("dfsio_bytes") as u64;
                (secs, b, b as f64 / 1e6 / secs)
            }
            WorkloadSpec::Reader { path, request_kb } => {
                let total = {
                    let meta = w.ext.get::<HdfsMeta>().expect("meta");
                    meta.file(path)
                        .map(|m| m.size())
                        .ok_or_else(|| SpecError::Unresolved(format!("file {path}")))?
                };
                let rdr = JavaReader::new(
                    client_vm,
                    ReaderMode::Dfs {
                        client,
                        path: path.clone(),
                    },
                    request_kb << 10,
                    total,
                );
                let a = w.add_actor("reader", rdr);
                w.send_now(a, Start);
                if !run_until_counter(
                    &mut w,
                    "reader_done",
                    1.0,
                    SimDuration::from_millis(50),
                    cap,
                ) {
                    return Err(SpecError::Invalid("workload did not finish".to_owned()));
                }
                let secs = w.metrics.mean("reader_done_at_s") - w.metrics.mean("reader_start_at_s");
                (secs, total, total as f64 / 1e6 / secs)
            }
            WorkloadSpec::Netperf {
                request_kb,
                duration_ms,
            } => {
                let server_vm = dn_vms[0];
                let measure_from = w.now();
                let np =
                    deploy_netperf(&mut w, client_vm, server_vm, request_kb << 10, measure_from);
                w.send_now(np, Start);
                let dur = SimDuration::from_millis(*duration_ms);
                let t = w.now() + dur;
                w.run_until(t);
                let txns = w.metrics.counter("netperf_txns");
                (dur.as_secs_f64(), 0, txns / dur.as_secs_f64())
            }
        };

        let spans = if self.spans {
            Some(SpanSummary::collect(&mut w))
        } else {
            None
        };

        let mut cpu_by_cat: std::collections::BTreeMap<&'static str, f64> = Default::default();
        for t in 0..w.acct.len() {
            let host = w.thread_host(ThreadId::from_raw(t as u32));
            let ghz = w.host_ghz(host);
            for cat in CpuCategory::ALL {
                if cat == CpuCategory::Lookbusy {
                    continue;
                }
                let cycles = w.acct.cycles(t, cat);
                if cycles > 0.0 {
                    *cpu_by_cat.entry(cat.figure_bucket()).or_insert(0.0) += cycles / ghz / 1e6;
                }
            }
        }
        let cpu_by_category_ms: Vec<(String, f64)> = cpu_by_cat
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();

        let mut thread_busy_ms: Vec<(String, f64)> = (0..w.acct.len())
            .map(|t| {
                (
                    w.thread_name(ThreadId::from_raw(t as u32)).to_owned(),
                    w.acct.busy_ns(t) as f64 / 1e6,
                )
            })
            .filter(|(_, b)| *b > 0.0)
            .collect();
        thread_busy_ms.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));

        Ok(ScenarioReport {
            elapsed_s,
            bytes,
            rate,
            thread_busy_ms,
            cpu_by_category_ms,
            faults: if self.faults.is_empty() {
                None
            } else {
                Some(collect_fault_report(&w))
            },
            spans,
        })
    }
}

/// Fluent construction of a [`ScenarioSpec`] — the programmatic
/// equivalent of the scenario JSON, with the same validation surface:
///
/// ```rust
/// use vread_bench::{ReadPath, ScenarioSpec};
/// use vread_bench::spec::WorkloadSpec;
///
/// let spec = ScenarioSpec::builder()
///     .path(ReadPath::VreadRdma)
///     .host("h1", 4, 2.0)
///     .host("h2", 4, 2.0)
///     .client("client", "h1")
///     .datanode("dn1", "h1")
///     .datanode("dn2", "h2")
///     .replicated_file("/d", 16, &["dn1", "dn2"])
///     .workload(WorkloadSpec::Reader {
///         path: "/d".to_owned(),
///         request_kb: 1024,
///     })
///     .build()?;
/// assert_eq!(spec.files[0].placement.len(), 2);
/// # Ok::<(), vread_bench::SpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    seed: u64,
    path: ReadPath,
    hosts: Vec<HostSpec>,
    vms: Vec<VmSpec>,
    files: Vec<FileSpec>,
    workload: Option<WorkloadSpec>,
    faults: Vec<FaultSpec>,
    spans: bool,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            seed: 42,
            path: ReadPath::Vanilla,
            hosts: Vec::new(),
            vms: Vec::new(),
            files: Vec::new(),
            workload: None,
            faults: Vec::new(),
            spans: false,
        }
    }
}

impl ScenarioBuilder {
    /// Sets the RNG seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the read path under test (default vanilla).
    pub fn path(mut self, path: ReadPath) -> Self {
        self.path = path;
        self
    }

    /// Adds a host.
    pub fn host(mut self, name: &str, cores: usize, ghz: f64) -> Self {
        self.hosts.push(HostSpec {
            name: name.to_owned(),
            cores,
            ghz,
        });
        self
    }

    /// Adds a client VM on `host`.
    pub fn client(self, name: &str, host: &str) -> Self {
        self.vm(name, host, VmRole::Client, None)
    }

    /// Adds a datanode VM on `host`.
    pub fn datanode(self, name: &str, host: &str) -> Self {
        self.vm(name, host, VmRole::Datanode, None)
    }

    /// Adds a lookbusy background VM on `host` with duty cycle `busy`.
    pub fn lookbusy(self, name: &str, host: &str, busy: f64) -> Self {
        self.vm(name, host, VmRole::Lookbusy, Some(busy))
    }

    /// Adds a VM with an explicit role.
    pub fn vm(mut self, name: &str, host: &str, role: VmRole, busy: Option<f64>) -> Self {
        self.vms.push(VmSpec {
            name: name.to_owned(),
            host: host.to_owned(),
            role,
            busy,
        });
        self
    }

    /// Adds a pre-populated file, blocks round-robined over `placement`.
    pub fn file(mut self, path: &str, mb: u64, placement: &[&str]) -> Self {
        self.files.push(FileSpec {
            path: path.to_owned(),
            mb,
            placement: placement.iter().map(|s| (*s).to_owned()).collect(),
            replicate: false,
        });
        self
    }

    /// Adds a pre-populated file with every block replicated on all
    /// `placement` datanodes.
    pub fn replicated_file(mut self, path: &str, mb: u64, placement: &[&str]) -> Self {
        self.files.push(FileSpec {
            path: path.to_owned(),
            mb,
            placement: placement.iter().map(|s| (*s).to_owned()).collect(),
            replicate: true,
        });
        self
    }

    /// Sets the workload (required).
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Plans a fault at `at_ms` simulated milliseconds.
    pub fn fault(mut self, at_ms: u64, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { at_ms, kind });
        self
    }

    /// Enables the span flight recorder (default off).
    pub fn spans(mut self, spans: bool) -> Self {
        self.spans = spans;
        self
    }

    /// Validates the assembled scenario and returns it.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] when the shape is wrong (no workload, no
    /// client/datanode VM, vm-crash against a non-datanode);
    /// [`SpecError::Unresolved`] when a host, datanode, file or fault
    /// target name doesn't refer to anything added before `build`.
    pub fn build(self) -> Result<ScenarioSpec, SpecError> {
        let workload = self
            .workload
            .ok_or_else(|| SpecError::Invalid("no workload".to_owned()))?;
        let host_names: std::collections::HashSet<&str> =
            self.hosts.iter().map(|h| h.name.as_str()).collect();
        let mut datanodes = std::collections::HashSet::new();
        let mut has_client = false;
        for v in &self.vms {
            if !host_names.contains(v.host.as_str()) {
                return Err(SpecError::Unresolved(format!("host {}", v.host)));
            }
            match v.role {
                VmRole::Client => has_client = true,
                VmRole::Datanode => {
                    datanodes.insert(v.name.as_str());
                }
                VmRole::Lookbusy => {}
            }
        }
        if !has_client {
            return Err(SpecError::Invalid("no client VM".to_owned()));
        }
        if datanodes.is_empty() {
            return Err(SpecError::Invalid("no datanode VM".to_owned()));
        }
        for f in &self.files {
            if f.placement.is_empty() {
                return Err(SpecError::Invalid(format!(
                    "file {} has no placement",
                    f.path
                )));
            }
            for dn in &f.placement {
                if !datanodes.contains(dn.as_str()) {
                    return Err(SpecError::Unresolved(format!("datanode {dn}")));
                }
            }
        }
        let file_names: std::collections::HashSet<&str> =
            self.files.iter().map(|f| f.path.as_str()).collect();
        let read_targets: Vec<&str> = match &workload {
            WorkloadSpec::DfsioRead { files, .. } => files.iter().map(String::as_str).collect(),
            WorkloadSpec::Reader { path, .. } => vec![path.as_str()],
            _ => Vec::new(),
        };
        for f in read_targets {
            if !file_names.contains(f) {
                return Err(SpecError::Unresolved(format!("file {f}")));
            }
        }
        let vm_names: std::collections::HashSet<&str> =
            self.vms.iter().map(|v| v.name.as_str()).collect();
        for f in &self.faults {
            match &f.kind {
                FaultKind::DaemonCrash { host }
                | FaultKind::DaemonRestart { host }
                | FaultKind::LinkFlap { host, .. }
                | FaultKind::DiskSlow { host, .. }
                | FaultKind::CacheDrop { host } => {
                    if !host_names.contains(host.as_str()) {
                        return Err(SpecError::Unresolved(format!("fault host {host}")));
                    }
                }
                FaultKind::VhostStall { vm, .. } => {
                    if !vm_names.contains(vm.as_str()) {
                        return Err(SpecError::Unresolved(format!("fault vm {vm}")));
                    }
                }
                FaultKind::VmCrash { vm } => {
                    if !vm_names.contains(vm.as_str()) {
                        return Err(SpecError::Unresolved(format!("fault vm {vm}")));
                    }
                    if !datanodes.contains(vm.as_str()) {
                        return Err(SpecError::Invalid(format!(
                            "vm-crash target {vm} is not a datanode VM"
                        )));
                    }
                }
            }
        }
        Ok(ScenarioSpec {
            seed: self.seed,
            path: self.path,
            hosts: self.hosts,
            vms: self.vms,
            files: self.files,
            workload,
            faults: self.faults,
            spans: self.spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "path": "vread-rdma",
        "hosts": [
            { "name": "h1", "ghz": 3.2 },
            { "name": "h2" }
        ],
        "vms": [
            { "name": "client", "host": "h1", "role": "client" },
            { "name": "dn1", "host": "h1", "role": "datanode" },
            { "name": "dn2", "host": "h2", "role": "datanode" },
            { "name": "bg", "host": "h1", "role": "lookbusy", "busy": 0.5 }
        ],
        "files": [ { "path": "/d", "mb": 64, "placement": ["dn1", "dn2"] } ],
        "workload": { "kind": "dfsio-read", "files": ["/d"] }
    }"#;

    #[test]
    fn spec_roundtrip_and_run() {
        let spec = ScenarioSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.hosts[1].cores, 4, "defaults fill in");
        let report = spec.run().unwrap();
        assert_eq!(report.bytes, 64 << 20);
        assert!(report.rate > 10.0, "rate {}", report.rate);
        assert!(!report.thread_busy_ms.is_empty());
        assert!(
            report
                .cpu_by_category_ms
                .iter()
                .any(|(k, _)| k == "data copy(vRead-buffer)"),
            "vread run shows ring copies in the breakdown"
        );
        // JSON-serializable report
        let j = report.to_json();
        assert!(j.contains("elapsed_s"));
    }

    #[test]
    fn unresolved_references_error() {
        let bad = SPEC.replace("\"host\": \"h1\"", "\"host\": \"nope\"");
        let spec = ScenarioSpec::from_json(&bad).unwrap();
        assert!(matches!(spec.run(), Err(SpecError::Unresolved(_))));
    }

    #[test]
    fn unknown_path_errors() {
        // with the typed ReadPath a bad spelling can't even construct a
        // spec — it dies at parse time rather than inside run()
        let bad = SPEC.replace("vread-rdma", "warp-drive");
        assert!(matches!(
            ScenarioSpec::from_json(&bad),
            Err(SpecError::Parse(_))
        ));
    }

    #[test]
    fn builder_matches_json_parse() {
        let from_json = ScenarioSpec::from_json(SPEC).unwrap();
        let built = ScenarioSpec::builder()
            .path(ReadPath::VreadRdma)
            .host("h1", 4, 3.2)
            .host("h2", 4, 2.0)
            .client("client", "h1")
            .datanode("dn1", "h1")
            .datanode("dn2", "h2")
            .lookbusy("bg", "h1", 0.5)
            .file("/d", 64, &["dn1", "dn2"])
            .workload(WorkloadSpec::DfsioRead {
                files: vec!["/d".to_owned()],
                buffer_kb: 1024,
            })
            .build()
            .unwrap();
        assert_eq!(
            built.run().unwrap().to_json(),
            from_json.run().unwrap().to_json(),
            "builder and JSON describe the same deployment"
        );
    }

    #[test]
    fn builder_validates_shape_and_references() {
        let base = || {
            ScenarioSpec::builder()
                .host("h1", 4, 2.0)
                .client("client", "h1")
                .datanode("dn1", "h1")
        };
        assert!(
            matches!(base().build(), Err(SpecError::Invalid(_))),
            "missing workload"
        );
        let wl = WorkloadSpec::Reader {
            path: "/d".to_owned(),
            request_kb: 1024,
        };
        assert!(
            matches!(
                base().workload(wl.clone()).build(),
                Err(SpecError::Unresolved(_))
            ),
            "reader file must be populated"
        );
        assert!(matches!(
            base()
                .file("/d", 8, &["ghost-dn"])
                .workload(wl.clone())
                .build(),
            Err(SpecError::Unresolved(_))
        ));
        assert!(matches!(
            base()
                .file("/d", 8, &["dn1"])
                .workload(wl.clone())
                .fault(
                    100,
                    FaultKind::VmCrash {
                        vm: "client".to_owned()
                    }
                )
                .build(),
            Err(SpecError::Invalid(_)),
        ));
        let ok = base().file("/d", 8, &["dn1"]).workload(wl).build().unwrap();
        assert_eq!(ok.path, ReadPath::Vanilla);
        assert!(ok.run().is_ok());
    }

    #[test]
    fn daemon_crash_falls_back_and_recovers() {
        let build = |faults: bool| {
            let mut b = ScenarioSpec::builder()
                .path(ReadPath::VreadRdma)
                .host("h1", 4, 2.0)
                .host("h2", 4, 2.0)
                .client("client", "h1")
                .datanode("dn1", "h1")
                .datanode("dn2", "h2")
                .replicated_file("/d", 256, &["dn1", "dn2"])
                .workload(WorkloadSpec::Reader {
                    path: "/d".to_owned(),
                    request_kb: 1024,
                });
            if faults {
                // crash mid-first-block, restart while the stalled read
                // is still waiting out its client timeout
                b = b
                    .fault(
                        100,
                        FaultKind::DaemonCrash {
                            host: "h1".to_owned(),
                        },
                    )
                    .fault(
                        600,
                        FaultKind::DaemonRestart {
                            host: "h1".to_owned(),
                        },
                    );
            }
            b.build().unwrap()
        };
        let clean = build(false).run().unwrap();
        let faulted = build(true).run().unwrap();
        assert!(clean.faults.is_none());
        let fr = faulted.faults.clone().expect("fault report");
        assert_eq!(faulted.bytes, clean.bytes, "no data loss");
        assert!(fr.fallback_reads > 0, "outage served via fallback: {fr:?}");
        assert_eq!(fr.daemon_restarts, 1);
        assert!(
            faulted.elapsed_s > clean.elapsed_s,
            "the outage costs time ({} vs {})",
            faulted.elapsed_s,
            clean.elapsed_s
        );
        // deterministic: the same plan reproduces the same report
        assert_eq!(
            build(true).run().unwrap().to_json(),
            faulted.to_json(),
            "fault runs are deterministic"
        );
    }

    #[test]
    fn netperf_workload_reports_rate() {
        let spec_json = r#"{
            "path": "vanilla",
            "hosts": [ { "name": "h1", "ghz": 3.2 } ],
            "vms": [
                { "name": "client", "host": "h1", "role": "client" },
                { "name": "dn1", "host": "h1", "role": "datanode" }
            ],
            "workload": { "kind": "netperf", "request_kb": 32, "duration_ms": 200 }
        }"#;
        let spec = ScenarioSpec::from_json(spec_json).unwrap();
        let report = spec.run().unwrap();
        assert!(report.rate > 1_000.0, "txn rate {}", report.rate);
    }

    #[test]
    fn write_workload_creates_files() {
        let spec_json = r#"{
            "path": "vanilla",
            "hosts": [ { "name": "h1" } ],
            "vms": [
                { "name": "client", "host": "h1", "role": "client" },
                { "name": "dn1", "host": "h1", "role": "datanode" }
            ],
            "workload": { "kind": "dfsio-write", "files": ["/o1", "/o2"], "mb": 16 }
        }"#;
        let spec = ScenarioSpec::from_json(spec_json).unwrap();
        let report = spec.run().unwrap();
        assert_eq!(report.bytes, 32 << 20);
    }
}

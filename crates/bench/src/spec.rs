//! Declarative scenarios: assemble and run a whole deployment from a
//! JSON description.
//!
//! ```json
//! {
//!   "seed": 7,
//!   "path": "vread-rdma",
//!   "hosts": [
//!     { "name": "host1", "cores": 4, "ghz": 2.0 },
//!     { "name": "host2", "cores": 4, "ghz": 2.0 }
//!   ],
//!   "vms": [
//!     { "name": "client", "host": "host1", "role": "client" },
//!     { "name": "dn1", "host": "host1", "role": "datanode" },
//!     { "name": "dn2", "host": "host2", "role": "datanode" },
//!     { "name": "bg1", "host": "host1", "role": "lookbusy", "busy": 0.85 }
//!   ],
//!   "files": [ { "path": "/data", "mb": 256, "placement": ["dn1", "dn2"] } ],
//!   "workload": { "kind": "dfsio-read", "files": ["/data"], "buffer_kb": 1024 }
//! }
//! ```
//!
//! A scenario may instead carry a `"workloads"` array where each entry
//! adds `"client"` (the client VM it runs in, default the first client)
//! and `"start_ms"` (launch offset, default 0); reports for such
//! scenarios gain a `per_workload` block. The topology is resolved and
//! deployed through [`crate::deploy::Deployment`], and workloads are
//! driven by the event-driven job primitives (no time-slice polling).
//!
//! Run with `repro scenario <file.json>`; the report (throughput, CPU,
//! per-thread busy time) is printed and returned as JSON.

use crate::deploy::{DeployPlan, Deployment};
use crate::faults::{collect_fault_report, FaultKind, FaultReport, FaultSpec};
use crate::json::{n, obj, s, Json};
use crate::scenarios::ReadPath;
use crate::spans::SpanSummary;
use crate::timeline::TimelineSummary;

use vread_apps::dfsio::{DfsioConfig, DfsioMode, TestDfsio};
use vread_apps::driver::{complete_job_after, run_jobs, run_jobs_settled};
use vread_apps::java_reader::{JavaReader, ReaderMode};
use vread_apps::netperf::{deploy_netperf, deploy_netperf_with_job};
use vread_hdfs::HdfsMeta;
use vread_host::cluster::{Cluster, HostCacheMode, VmId};
use vread_host::costs::Costs;
use vread_sim::prelude::*;

/// A physical host.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Host name (referenced by VMs).
    pub name: String,
    /// Cores (default 4).
    pub cores: usize,
    /// Clock in GHz (default 2.0).
    pub ghz: f64,
}

/// What a VM runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmRole {
    /// HDFS client (the first client VM also hosts the namenode).
    Client,
    /// HDFS datanode.
    Datanode,
    /// Background CPU load.
    Lookbusy,
    /// A plain VM with no HDFS role (netperf peers).
    Peer,
}

/// A virtual machine.
#[derive(Debug, Clone)]
pub struct VmSpec {
    /// VM name.
    pub name: String,
    /// Host name it runs on.
    pub host: String,
    /// Role.
    pub role: VmRole,
    /// Lookbusy duty cycle (only for `lookbusy` VMs; default 0.85).
    pub busy: Option<f64>,
}

/// A pre-populated HDFS file.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// HDFS path.
    pub path: String,
    /// Size in MiB.
    pub mb: u64,
    /// Datanode names blocks round-robin over.
    pub placement: Vec<String>,
    /// `true` puts every block on *all* placement datanodes (rotating
    /// primaries) instead of round-robining — the 3-way-replication
    /// layout fault scenarios fail over inside.
    pub replicate: bool,
}

/// Host block-store configuration (the scenario's `"host_cache"`
/// block). Absent from the JSON it defaults to the per-host LRU page
/// cache with the cost model's capacity — existing scenarios and their
/// reports stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostCacheSpec {
    /// `"lru"` (default) or `"cas"` — the content-addressed store that
    /// dedups identical blocks across co-located VMs.
    pub mode: HostCacheMode,
    /// Per-host store capacity override in MiB (default: cost model).
    pub capacity_mb: Option<u64>,
    /// Store chunk size override in KiB (default: cost model).
    pub chunk_kb: Option<u64>,
}

/// Telemetry timeline configuration (the scenario's `"timeline"`
/// block). Absent, the timeline stays disabled: no sampler ticks are
/// scheduled and existing reports serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSpec {
    /// Sampling period — and latency-window length — in simulated
    /// milliseconds (must be positive).
    pub sample_ms: u64,
}

/// The measured workload.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// TestDFSIO read over `files`.
    DfsioRead {
        /// Files to read (must be populated).
        files: Vec<String>,
        /// Application buffer in KiB (default 1024).
        buffer_kb: u64,
    },
    /// TestDFSIO write creating `files` of `mb` MiB each.
    DfsioWrite {
        /// Files to create.
        files: Vec<String>,
        /// Per-file size in MiB.
        mb: u64,
    },
    /// Sequential reader over one file.
    Reader {
        /// File to read.
        path: String,
        /// Request size in KiB.
        request_kb: u64,
    },
    /// netperf TCP_RR between the client VM and the first datanode VM.
    Netperf {
        /// Request size in KiB.
        request_kb: u64,
        /// Measurement window in milliseconds.
        duration_ms: u64,
    },
}

impl WorkloadSpec {
    /// The scenario-JSON `kind` spelling.
    pub fn kind_str(&self) -> &'static str {
        match self {
            WorkloadSpec::DfsioRead { .. } => "dfsio-read",
            WorkloadSpec::DfsioWrite { .. } => "dfsio-write",
            WorkloadSpec::Reader { .. } => "reader",
            WorkloadSpec::Netperf { .. } => "netperf",
        }
    }
}

/// One workload bound to a client VM and a launch time.
#[derive(Debug, Clone)]
pub struct WorkloadBinding {
    /// Client VM the workload runs in; `None` = the first client VM.
    pub client: Option<String>,
    /// Simulated milliseconds after scenario start to launch at.
    pub start_ms: u64,
    /// The workload itself.
    pub kind: WorkloadSpec,
}

impl WorkloadBinding {
    /// Binds `kind` to the default client at time zero — the shape the
    /// singular `"workload"` field produces.
    pub fn new(kind: WorkloadSpec) -> Self {
        WorkloadBinding {
            client: None,
            start_ms: 0,
            kind,
        }
    }
}

/// An armed concurrent workload: its registered job plus the labels the
/// per-workload report needs once the run finishes.
struct Armed {
    kind: &'static str,
    client: String,
    start_ms: u64,
    job: JobHandle,
    netperf_s: Option<f64>,
}

/// A whole scenario.
///
/// ```rust
/// use vread_bench::ScenarioSpec;
///
/// let spec = ScenarioSpec::from_json(r#"{
///     "path": "vanilla",
///     "hosts": [ { "name": "h1" } ],
///     "vms": [
///         { "name": "client", "host": "h1", "role": "client" },
///         { "name": "dn1", "host": "h1", "role": "datanode" }
///     ],
///     "files": [ { "path": "/d", "mb": 8, "placement": ["dn1"] } ],
///     "workload": { "kind": "reader", "path": "/d", "request_kb": 1024 }
/// }"#)?;
/// let report = spec.run()?;
/// assert_eq!(report.bytes, 8 << 20);
/// # Ok::<(), vread_bench::SpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// RNG seed (default 42).
    pub seed: u64,
    /// Read path under test.
    pub path: ReadPath,
    /// Hosts.
    pub hosts: Vec<HostSpec>,
    /// VMs.
    pub vms: Vec<VmSpec>,
    /// Pre-populated files (default none).
    pub files: Vec<FileSpec>,
    /// The workloads to run (the singular `"workload"` JSON field binds
    /// one workload to the first client at time zero).
    pub workloads: Vec<WorkloadBinding>,
    /// Planned faults (default none; see [`FaultSpec`]).
    pub faults: Vec<FaultSpec>,
    /// Enable the span flight recorder (default false). Adds a
    /// [`SpanSummary`] to the report; off-path runs serialize unchanged.
    pub spans: bool,
    /// Host block-store configuration (default: per-host LRU).
    pub host_cache: HostCacheSpec,
    /// Telemetry timeline configuration (default: disabled). Adds a
    /// [`TimelineSummary`] to the report; off runs serialize unchanged.
    pub timeline: Option<TimelineSpec>,
}

/// Per-workload results (multi-workload scenarios only).
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload kind (`"dfsio-read"`, `"reader"`, …).
    pub kind: String,
    /// Client VM it ran in.
    pub client: String,
    /// Launch offset in milliseconds.
    pub start_ms: u64,
    /// Start-to-completion seconds for this job alone.
    pub elapsed_s: f64,
    /// Payload this job moved (bytes) — 0 for netperf.
    pub bytes: u64,
    /// Job throughput in MB/s (transactions/s for netperf).
    pub rate: f64,
}

/// Scenario results.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Simulated seconds the workload took (first start to last
    /// completion for multi-workload scenarios).
    pub elapsed_s: f64,
    /// Payload moved (bytes) — 0 for netperf.
    pub bytes: u64,
    /// Application throughput in MB/s (or transactions/s for netperf).
    pub rate: f64,
    /// Busy milliseconds per thread, by thread name.
    pub thread_busy_ms: Vec<(String, f64)>,
    /// CPU milliseconds by the paper's figure-legend buckets (whole
    /// deployment, lookbusy excluded).
    pub cpu_by_category_ms: Vec<(String, f64)>,
    /// Per-job breakdown — present only when the scenario ran two or
    /// more workloads, so single-workload reports serialize exactly as
    /// before.
    pub per_workload: Vec<WorkloadReport>,
    /// Degradation summary — present only when the scenario planned
    /// faults, so fault-free reports serialize exactly as before.
    pub faults: Option<FaultReport>,
    /// Span rollups — present only when the scenario enabled tracing.
    pub spans: Option<SpanSummary>,
    /// Host block-store summary — present only when the scenario ran the
    /// content-addressed store, so LRU reports serialize exactly as
    /// before.
    pub host_cache: Option<HostCacheReport>,
    /// Telemetry rollup — present only when the scenario enabled the
    /// timeline, so timeline-off reports serialize exactly as before.
    pub timeline: Option<TimelineSummary>,
}

/// End-of-run host block-store figures, summed over all hosts
/// (content-addressed scenarios only).
#[derive(Debug, Clone, Copy)]
pub struct HostCacheReport {
    /// Physical bytes resident across all host stores.
    pub used_bytes: u64,
    /// Logical bytes those physical bytes back (≥ used when replicas
    /// share chunks).
    pub logical_bytes: u64,
    /// `logical / used` — the effective capacity multiplier dedup buys
    /// at this byte budget (1.0 when nothing is shared or stores are
    /// empty).
    pub effective_capacity_x: f64,
    /// Lookup ranges fully resident (including dedup hits).
    pub hits: u64,
    /// Lookup ranges with at least one absent chunk.
    pub misses: u64,
    /// Hits served from chunks another VM's image admitted.
    pub dedup_hits: u64,
}

impl HostCacheReport {
    /// Sums the per-host store figures over a deployed cluster.
    pub fn collect(cl: &Cluster) -> HostCacheReport {
        let mut r = HostCacheReport {
            used_bytes: 0,
            logical_bytes: 0,
            effective_capacity_x: 1.0,
            hits: 0,
            misses: 0,
            dedup_hits: 0,
        };
        for h in &cl.hosts {
            r.used_bytes += h.cache.used_bytes();
            r.logical_bytes += h.cache.logical_bytes();
            let st = h.cache.stats();
            r.hits += st.hits;
            r.misses += st.misses;
            r.dedup_hits += st.dedup_hits;
        }
        if r.used_bytes > 0 {
            r.effective_capacity_x = r.logical_bytes as f64 / r.used_bytes as f64;
        }
        r
    }

    fn to_json(self) -> Json {
        obj(vec![
            ("used_bytes", n(self.used_bytes as f64)),
            ("logical_bytes", n(self.logical_bytes as f64)),
            ("effective_capacity_x", n(self.effective_capacity_x)),
            ("hits", n(self.hits as f64)),
            ("misses", n(self.misses as f64)),
            ("dedup_hits", n(self.dedup_hits as f64)),
        ])
    }
}

/// Errors building/running a scenario.
#[derive(Debug)]
pub enum SpecError {
    /// JSON didn't parse or a field was missing/mistyped.
    Parse(String),
    /// A reference (host, VM, datanode, file) didn't resolve.
    Unresolved(String),
    /// Config combination is invalid.
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "scenario JSON: {e}"),
            SpecError::Unresolved(s) => write!(f, "unresolved reference: {s}"),
            SpecError::Invalid(s) => write!(f, "invalid scenario: {s}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl ScenarioReport {
    /// Serializes the report as pretty JSON (fixed field order).
    pub fn to_json(&self) -> String {
        let pairs = |v: &[(String, f64)]| {
            Json::Arr(
                v.iter()
                    .map(|(k, ms)| Json::Arr(vec![s(k), n(*ms)]))
                    .collect(),
            )
        };
        let mut fields = vec![
            ("elapsed_s", n(self.elapsed_s)),
            ("bytes", n(self.bytes as f64)),
            ("rate", n(self.rate)),
            ("thread_busy_ms", pairs(&self.thread_busy_ms)),
            ("cpu_by_category_ms", pairs(&self.cpu_by_category_ms)),
        ];
        if !self.per_workload.is_empty() {
            fields.push((
                "per_workload",
                Json::Arr(
                    self.per_workload
                        .iter()
                        .map(|wr| {
                            obj(vec![
                                ("kind", s(&wr.kind)),
                                ("client", s(&wr.client)),
                                ("start_ms", n(wr.start_ms as f64)),
                                ("elapsed_s", n(wr.elapsed_s)),
                                ("bytes", n(wr.bytes as f64)),
                                ("rate", n(wr.rate)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(f) = &self.faults {
            fields.push(("faults", f.to_json()));
        }
        if let Some(sp) = &self.spans {
            fields.push(("spans", sp.to_json()));
        }
        if let Some(hc) = &self.host_cache {
            fields.push(("host_cache", hc.to_json()));
        }
        if let Some(tl) = &self.timeline {
            fields.push(("timeline", tl.to_json()));
        }
        obj(fields).pretty()
    }
}

// -- manual JSON decoding (replaces serde derive) ---------------------------

pub(crate) fn parse_err(msg: impl Into<String>) -> SpecError {
    SpecError::Parse(msg.into())
}

pub(crate) fn req<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, SpecError> {
    j.get(key)
        .ok_or_else(|| parse_err(format!("{ctx}: missing field {key:?}")))
}

pub(crate) fn req_str(j: &Json, key: &str, ctx: &str) -> Result<String, SpecError> {
    req(j, key, ctx)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| parse_err(format!("{ctx}: field {key:?} must be a string")))
}

pub(crate) fn req_u64(j: &Json, key: &str, ctx: &str) -> Result<u64, SpecError> {
    req(j, key, ctx)?.as_u64().ok_or_else(|| {
        parse_err(format!(
            "{ctx}: field {key:?} must be a non-negative integer"
        ))
    })
}

pub(crate) fn opt_u64(j: &Json, key: &str, default: u64, ctx: &str) -> Result<u64, SpecError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            parse_err(format!(
                "{ctx}: field {key:?} must be a non-negative integer"
            ))
        }),
    }
}

pub(crate) fn req_arr<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], SpecError> {
    req(j, key, ctx)?
        .as_array()
        .ok_or_else(|| parse_err(format!("{ctx}: field {key:?} must be an array")))
}

pub(crate) fn str_list(j: &Json, key: &str, ctx: &str) -> Result<Vec<String>, SpecError> {
    req_arr(j, key, ctx)?
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_owned)
                .ok_or_else(|| parse_err(format!("{ctx}: {key:?} entries must be strings")))
        })
        .collect()
}

/// Top-level scenario keys the parser understands; anything else is a
/// typo and gets rejected rather than silently ignored.
const TOP_LEVEL_KEYS: [&str; 11] = [
    "seed",
    "path",
    "spans",
    "host_cache",
    "timeline",
    "hosts",
    "vms",
    "files",
    "workload",
    "workloads",
    "faults",
];

/// Keys the `"host_cache"` block understands (same strictness as the
/// top level: a typo is rejected, not ignored).
const HOST_CACHE_KEYS: [&str; 3] = ["mode", "capacity_mb", "chunk_kb"];

fn host_cache_from_json(j: &Json) -> Result<HostCacheSpec, SpecError> {
    if let Json::Obj(members) = j {
        for (k, _) in members {
            if !HOST_CACHE_KEYS.contains(&k.as_str()) {
                return Err(parse_err(format!(
                    "host_cache: unknown field {k:?} (known fields: {})",
                    HOST_CACHE_KEYS.join(", ")
                )));
            }
        }
    } else {
        return Err(parse_err(
            "scenario: field \"host_cache\" must be an object",
        ));
    }
    let mode = match req_str(j, "mode", "host_cache")?.as_str() {
        "lru" => HostCacheMode::Lru,
        "cas" => HostCacheMode::Cas,
        other => {
            return Err(parse_err(format!(
                "host_cache: unknown mode {other:?} (known modes: lru, cas)"
            )))
        }
    };
    let opt = |key: &str| -> Result<Option<u64>, SpecError> {
        match j.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                parse_err(format!(
                    "host_cache: field {key:?} must be a non-negative integer"
                ))
            }),
        }
    };
    let spec = HostCacheSpec {
        mode,
        capacity_mb: opt("capacity_mb")?,
        chunk_kb: opt("chunk_kb")?,
    };
    if spec.capacity_mb == Some(0) {
        return Err(parse_err("host_cache: \"capacity_mb\" must be positive"));
    }
    if spec.chunk_kb == Some(0) {
        return Err(parse_err("host_cache: \"chunk_kb\" must be positive"));
    }
    Ok(spec)
}

/// Keys the `"timeline"` block understands (same strictness as the top
/// level: a typo is rejected, not ignored).
const TIMELINE_KEYS: [&str; 1] = ["sample_ms"];

fn timeline_from_json(j: &Json) -> Result<TimelineSpec, SpecError> {
    if let Json::Obj(members) = j {
        for (k, _) in members {
            if !TIMELINE_KEYS.contains(&k.as_str()) {
                return Err(parse_err(format!(
                    "timeline: unknown field {k:?} (known fields: {})",
                    TIMELINE_KEYS.join(", ")
                )));
            }
        }
    } else {
        return Err(parse_err("scenario: field \"timeline\" must be an object"));
    }
    let sample_ms = req_u64(j, "sample_ms", "timeline")?;
    if sample_ms == 0 {
        return Err(parse_err("timeline: \"sample_ms\" must be positive"));
    }
    Ok(TimelineSpec { sample_ms })
}

/// Rejects duplicate host names, VM names or file paths — a duplicate
/// would silently shadow its namesake in every later by-name lookup.
fn check_unique_names(
    hosts: &[HostSpec],
    vms: &[VmSpec],
    files: &[FileSpec],
) -> Result<(), SpecError> {
    let mut seen = std::collections::HashSet::new();
    for h in hosts {
        if !seen.insert(h.name.as_str()) {
            return Err(SpecError::Invalid(format!(
                "duplicate host name {:?}",
                h.name
            )));
        }
    }
    seen.clear();
    for v in vms {
        if !seen.insert(v.name.as_str()) {
            return Err(SpecError::Invalid(format!(
                "duplicate VM name {:?}",
                v.name
            )));
        }
    }
    seen.clear();
    for f in files {
        if !seen.insert(f.path.as_str()) {
            return Err(SpecError::Invalid(format!(
                "duplicate file path {:?}",
                f.path
            )));
        }
    }
    Ok(())
}

/// Descending sort by busy time that tolerates NaN (a NaN would have
/// panicked the old `partial_cmp().expect()` formulation; `total_cmp`
/// orders it deterministically instead).
fn sort_busy_desc(v: &mut [(String, f64)]) {
    v.sort_by(|a, b| b.1.total_cmp(&a.1));
}

fn workload_from_json(w: &Json) -> Result<WorkloadSpec, SpecError> {
    Ok(match req_str(w, "kind", "workload")?.as_str() {
        "dfsio-read" => WorkloadSpec::DfsioRead {
            files: str_list(w, "files", "workload")?,
            buffer_kb: opt_u64(w, "buffer_kb", 1024, "workload")?,
        },
        "dfsio-write" => WorkloadSpec::DfsioWrite {
            files: str_list(w, "files", "workload")?,
            mb: req_u64(w, "mb", "workload")?,
        },
        "reader" => WorkloadSpec::Reader {
            path: req_str(w, "path", "workload")?,
            request_kb: req_u64(w, "request_kb", "workload")?,
        },
        "netperf" => WorkloadSpec::Netperf {
            request_kb: req_u64(w, "request_kb", "workload")?,
            duration_ms: req_u64(w, "duration_ms", "workload")?,
        },
        other => return Err(parse_err(format!("workload: unknown kind {other:?}"))),
    })
}

impl ScenarioSpec {
    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on malformed JSON, missing/mistyped
    /// fields or unknown top-level keys, and [`SpecError::Invalid`] for
    /// duplicate host/VM/file names.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        let j = Json::parse(json).map_err(|e| parse_err(e.to_string()))?;

        if let Json::Obj(members) = &j {
            for (k, _) in members {
                if !TOP_LEVEL_KEYS.contains(&k.as_str()) {
                    return Err(parse_err(format!(
                        "scenario: unknown field {k:?} (known fields: {})",
                        TOP_LEVEL_KEYS.join(", ")
                    )));
                }
            }
        }

        let hosts = req_arr(&j, "hosts", "scenario")?
            .iter()
            .map(|h| {
                Ok(HostSpec {
                    name: req_str(h, "name", "host")?,
                    cores: opt_u64(h, "cores", 4, "host")? as usize,
                    ghz: match h.get("ghz") {
                        None | Some(Json::Null) => 2.0,
                        Some(v) => v
                            .as_f64()
                            .ok_or_else(|| parse_err("host: field \"ghz\" must be a number"))?,
                    },
                })
            })
            .collect::<Result<Vec<_>, SpecError>>()?;

        let vms = req_arr(&j, "vms", "scenario")?
            .iter()
            .map(|v| {
                let role = match req_str(v, "role", "vm")?.as_str() {
                    "client" => VmRole::Client,
                    "datanode" => VmRole::Datanode,
                    "lookbusy" => VmRole::Lookbusy,
                    "peer" => VmRole::Peer,
                    other => return Err(parse_err(format!("vm: unknown role {other:?}"))),
                };
                Ok(VmSpec {
                    name: req_str(v, "name", "vm")?,
                    host: req_str(v, "host", "vm")?,
                    role,
                    busy: match v.get("busy") {
                        None | Some(Json::Null) => None,
                        Some(b) => Some(
                            b.as_f64()
                                .ok_or_else(|| parse_err("vm: field \"busy\" must be a number"))?,
                        ),
                    },
                })
            })
            .collect::<Result<Vec<_>, SpecError>>()?;

        let files = match j.get("files") {
            None | Some(Json::Null) => Vec::new(),
            Some(f) => f
                .as_array()
                .ok_or_else(|| parse_err("scenario: field \"files\" must be an array"))?
                .iter()
                .map(|f| {
                    Ok(FileSpec {
                        path: req_str(f, "path", "file")?,
                        mb: req_u64(f, "mb", "file")?,
                        placement: str_list(f, "placement", "file")?,
                        replicate: match f.get("replicate") {
                            None | Some(Json::Null) => false,
                            Some(b) => b.as_bool().ok_or_else(|| {
                                parse_err("file: field \"replicate\" must be a boolean")
                            })?,
                        },
                    })
                })
                .collect::<Result<Vec<_>, SpecError>>()?,
        };

        let faults = match j.get("faults") {
            None | Some(Json::Null) => Vec::new(),
            Some(f) => f
                .as_array()
                .ok_or_else(|| parse_err("scenario: field \"faults\" must be an array"))?
                .iter()
                .map(FaultSpec::from_json)
                .collect::<Result<Vec<_>, SpecError>>()?,
        };

        let workloads = match (j.get("workload"), j.get("workloads")) {
            (Some(_), Some(_)) => {
                return Err(parse_err(
                    "scenario: give either \"workload\" or \"workloads\", not both",
                ))
            }
            (Some(w), None) => vec![WorkloadBinding::new(workload_from_json(w)?)],
            (None, Some(arr)) => {
                let arr = arr
                    .as_array()
                    .ok_or_else(|| parse_err("scenario: field \"workloads\" must be an array"))?;
                if arr.is_empty() {
                    return Err(parse_err("scenario: \"workloads\" must not be empty"));
                }
                arr.iter()
                    .map(|w| {
                        Ok(WorkloadBinding {
                            client: match w.get("client") {
                                None | Some(Json::Null) => None,
                                Some(c) => {
                                    Some(c.as_str().map(str::to_owned).ok_or_else(|| {
                                        parse_err("workload: field \"client\" must be a string")
                                    })?)
                                }
                            },
                            start_ms: opt_u64(w, "start_ms", 0, "workload")?,
                            kind: workload_from_json(w)?,
                        })
                    })
                    .collect::<Result<Vec<_>, SpecError>>()?
            }
            (None, None) => return Err(parse_err("scenario: missing field \"workload\"")),
        };

        let path_s = req_str(&j, "path", "scenario")?;
        let path = ReadPath::parse(&path_s)
            .ok_or_else(|| parse_err(format!("scenario: unknown path {path_s:?}")))?;

        let spans = match j.get("spans") {
            None | Some(Json::Null) => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| parse_err("scenario: field \"spans\" must be a boolean"))?,
        };

        let host_cache = match j.get("host_cache") {
            None | Some(Json::Null) => HostCacheSpec::default(),
            Some(hc) => host_cache_from_json(hc)?,
        };

        let timeline = match j.get("timeline") {
            None | Some(Json::Null) => None,
            Some(tl) => Some(timeline_from_json(tl)?),
        };

        check_unique_names(&hosts, &vms, &files)?;

        Ok(ScenarioSpec {
            seed: opt_u64(&j, "seed", 42, "scenario")?,
            path,
            hosts,
            vms,
            files,
            workloads,
            faults,
            spans,
            host_cache,
            timeline,
        })
    }

    /// Starts a [`ScenarioBuilder`] with the defaults (seed 42, vanilla
    /// path, nothing else).
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Builds and runs the scenario, returning the report.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when names don't resolve or the combination
    /// is invalid (no client VM, unknown path, …).
    pub fn run(&self) -> Result<ScenarioReport, SpecError> {
        let mut d = self.deploy()?;
        let bound = self.bind(&d)?;
        let cap = SimDuration::from_secs(3_000);
        if let [(client_vm, _, binding)] = bound.as_slice() {
            self.run_single(&mut d, *client_vm, binding, cap)
        } else {
            let armed = self.arm_multi(&mut d, &bound)?;
            if !run_jobs(&mut d.w, cap) {
                return Err(SpecError::Invalid("workload did not finish".to_owned()));
            }
            self.aggregate_multi(&mut d, &armed)
        }
    }

    /// Like [`ScenarioSpec::run`], but drives the scenario's world through
    /// the conservative parallel engine's worker pool
    /// (`vread_sim::par::run_sharded`) when `threads > 1`.
    ///
    /// A scenario's hosts are causally fused — every datanode talks to the
    /// single HDFS namenode and cross-host connections exchange messages
    /// at actor granularity — so the deployment executes as **one shard**;
    /// the windowed drive is byte-identical to the sequential
    /// `run_jobs_for` by construction, and the report therefore matches
    /// `--engine-threads 1` exactly. Single-workload scenarios use the
    /// legacy slice-aligned measurement drive and always run sequentially.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ScenarioSpec::run`].
    pub fn run_with_engine(&self, threads: usize) -> Result<ScenarioReport, SpecError> {
        if threads <= 1 || self.workloads.len() <= 1 {
            return self.run();
        }
        let cap = SimDuration::from_secs(3_000);
        let spec = self.clone();
        let shard = Shard::staged("scenario", move || spec.stage_for_engine());
        let mut out = run_sharded(
            EngineOpts {
                threads,
                lookahead: None,
                cap,
            },
            vec![shard],
        );
        out.pop().expect("one shard, one report")
    }

    /// Build half of the engine-pool drive: deploy, bind and arm on the
    /// owning worker thread, handing the world to the window runner and a
    /// finish closure (capturing the non-`Send` deployment sidecar) that
    /// aggregates once the run completes. Setup errors surface through the
    /// finish closure of an empty world.
    #[allow(clippy::type_complexity)]
    pub(crate) fn stage_for_engine(
        self,
    ) -> (
        World,
        Box<dyn FnOnce(World) -> Result<ScenarioReport, SpecError>>,
    ) {
        let staged = (|| {
            let mut d = self.deploy()?;
            let bound = self.bind(&d)?;
            let armed = self.arm_multi(&mut d, &bound)?;
            Ok((d, armed))
        })();
        match staged {
            Err(e) => (World::new(0), Box::new(move |_| Err(e))),
            Ok((mut d, armed)) => {
                let w = std::mem::replace(&mut d.w, World::new(0));
                (
                    w,
                    Box::new(move |w: World| {
                        d.w = w;
                        if d.w.jobs.pending() > 0 {
                            return Err(SpecError::Invalid("workload did not finish".to_owned()));
                        }
                        self.aggregate_multi(&mut d, &armed)
                    }),
                )
            }
        }
    }

    /// Resolves the topology into a deployment and validates it has a
    /// client and at least one datanode.
    fn deploy(&self) -> Result<Deployment, SpecError> {
        let plan = DeployPlan {
            seed: self.seed,
            path: self.path,
            spans: self.spans,
            costs: Costs::default(),
            hosts: self.hosts.clone(),
            vms: self.vms.clone(),
            files: self.files.clone(),
            host_cache: self.host_cache.clone(),
            timeline_sample_ms: self.timeline.as_ref().map(|t| t.sample_ms),
        };
        let d = Deployment::build(plan)?;
        d.first_client()?;
        if d.datanode_vms.is_empty() {
            return Err(SpecError::Invalid("no datanode VM".to_owned()));
        }
        Ok(d)
    }

    /// Binds every workload to its client VM before creating anything.
    fn bind(&self, d: &Deployment) -> Result<Vec<(VmId, String, WorkloadBinding)>, SpecError> {
        self.workloads
            .iter()
            .map(|b| {
                let vm = d.client_vm(b.client.as_deref())?;
                let name = match &b.client {
                    Some(n) => n.clone(),
                    None => d.clients[0].0.clone(),
                };
                Ok((vm, name, b.clone()))
            })
            .collect()
    }

    /// Drives a single workload with the legacy measurement math (the
    /// settled drive keeps whole-world accounting byte-identical to the
    /// polling-era reports).
    fn run_single(
        &self,
        d: &mut Deployment,
        client_vm: VmId,
        binding: &WorkloadBinding,
        cap: SimDuration,
    ) -> Result<ScenarioReport, SpecError> {
        let client = d.add_client_on(client_vm);
        d.start_background();
        d.arm_faults(&self.faults)?;

        let start_delay = SimDuration::from_millis(binding.start_ms);
        let (elapsed_s, bytes, rate) = match &binding.kind {
            WorkloadSpec::DfsioRead { files, buffer_kb } => {
                let file_bytes = dfsio_read_size(&d.w, files)?;
                let cfg = DfsioConfig {
                    buffer_bytes: buffer_kb << 10,
                    ..Default::default()
                };
                let job = d.w.register_job("dfsio");
                let app = TestDfsio::new(
                    client,
                    client_vm,
                    DfsioMode::Read,
                    files.clone(),
                    file_bytes,
                    cfg,
                )
                .with_job(job);
                let a = d.w.add_actor("dfsio", app);
                launch(&mut d.w, a, start_delay);
                if !run_jobs_settled(&mut d.w, cap, SimDuration::from_millis(100)) {
                    return Err(SpecError::Invalid("workload did not finish".to_owned()));
                }
                let secs =
                    d.w.metrics.mean("dfsio_done_at_s") - d.w.metrics.mean("dfsio_start_at_s");
                let b = d.w.metrics.counter("dfsio_bytes") as u64;
                (secs, b, b as f64 / 1e6 / secs)
            }
            WorkloadSpec::DfsioWrite { files, mb } => {
                let job = d.w.register_job("dfsio");
                let app = TestDfsio::new(
                    client,
                    client_vm,
                    DfsioMode::Write,
                    files.clone(),
                    mb << 20,
                    DfsioConfig::default(),
                )
                .with_job(job);
                let a = d.w.add_actor("dfsio", app);
                launch(&mut d.w, a, start_delay);
                if !run_jobs_settled(&mut d.w, cap, SimDuration::from_millis(100)) {
                    return Err(SpecError::Invalid("workload did not finish".to_owned()));
                }
                let secs =
                    d.w.metrics.mean("dfsio_done_at_s") - d.w.metrics.mean("dfsio_start_at_s");
                let b = d.w.metrics.counter("dfsio_bytes") as u64;
                (secs, b, b as f64 / 1e6 / secs)
            }
            WorkloadSpec::Reader { path, request_kb } => {
                let total = hdfs_file_size(&d.w, path)?;
                let job = d.w.register_job("reader");
                let rdr = JavaReader::new(
                    client_vm,
                    ReaderMode::Dfs {
                        client,
                        path: path.clone(),
                    },
                    request_kb << 10,
                    total,
                )
                .with_job(job);
                let a = d.w.add_actor("reader", rdr);
                launch(&mut d.w, a, start_delay);
                if !run_jobs_settled(&mut d.w, cap, SimDuration::from_millis(50)) {
                    return Err(SpecError::Invalid("workload did not finish".to_owned()));
                }
                let secs =
                    d.w.metrics.mean("reader_done_at_s") - d.w.metrics.mean("reader_start_at_s");
                (secs, total, total as f64 / 1e6 / secs)
            }
            WorkloadSpec::Netperf {
                request_kb,
                duration_ms,
            } => {
                let server_vm = d.datanode_vms[0].1;
                let measure_from = d.w.now() + start_delay;
                let np = deploy_netperf(
                    &mut d.w,
                    client_vm,
                    server_vm,
                    request_kb << 10,
                    measure_from,
                );
                launch(&mut d.w, np, start_delay);
                let dur = SimDuration::from_millis(*duration_ms);
                let t = d.w.now() + start_delay + dur;
                d.w.run_until(t);
                let txns = d.w.metrics.counter("netperf_txns");
                (dur.as_secs_f64(), 0, txns / dur.as_secs_f64())
            }
        };

        Ok(self.finish_report(d, elapsed_s, bytes, rate, Vec::new()))
    }

    /// Arms two or more concurrent workloads: every job registers a
    /// completion token so the drive (sequential `run_jobs` or the
    /// engine-pool window runner) can stop once all of them finish.
    fn arm_multi(
        &self,
        d: &mut Deployment,
        bound: &[(VmId, String, WorkloadBinding)],
    ) -> Result<Vec<Armed>, SpecError> {
        let mut armed: Vec<Armed> = Vec::new();
        for (vm, cname, b) in bound {
            let start_delay = SimDuration::from_millis(b.start_ms);
            let job = match &b.kind {
                WorkloadSpec::DfsioRead { files, buffer_kb } => {
                    let file_bytes = dfsio_read_size(&d.w, files)?;
                    let client = d.add_client_on(*vm);
                    let cfg = DfsioConfig {
                        buffer_bytes: buffer_kb << 10,
                        ..Default::default()
                    };
                    let job = d.w.register_job("dfsio");
                    let app = TestDfsio::new(
                        client,
                        *vm,
                        DfsioMode::Read,
                        files.clone(),
                        file_bytes,
                        cfg,
                    )
                    .with_job(job);
                    let a = d.w.add_actor("dfsio", app);
                    launch(&mut d.w, a, start_delay);
                    job
                }
                WorkloadSpec::DfsioWrite { files, mb } => {
                    let client = d.add_client_on(*vm);
                    let job = d.w.register_job("dfsio");
                    let app = TestDfsio::new(
                        client,
                        *vm,
                        DfsioMode::Write,
                        files.clone(),
                        mb << 20,
                        DfsioConfig::default(),
                    )
                    .with_job(job);
                    let a = d.w.add_actor("dfsio", app);
                    launch(&mut d.w, a, start_delay);
                    job
                }
                WorkloadSpec::Reader { path, request_kb } => {
                    let total = hdfs_file_size(&d.w, path)?;
                    let client = d.add_client_on(*vm);
                    let job = d.w.register_job("reader");
                    let rdr = JavaReader::new(
                        *vm,
                        ReaderMode::Dfs {
                            client,
                            path: path.clone(),
                        },
                        request_kb << 10,
                        total,
                    )
                    .with_job(job);
                    let a = d.w.add_actor("reader", rdr);
                    launch(&mut d.w, a, start_delay);
                    job
                }
                WorkloadSpec::Netperf {
                    request_kb,
                    duration_ms,
                } => {
                    let server_vm = d.datanode_vms[0].1;
                    let measure_from = d.w.now() + start_delay;
                    let job = d.w.register_job("netperf");
                    let np = deploy_netperf_with_job(
                        &mut d.w,
                        *vm,
                        server_vm,
                        request_kb << 10,
                        measure_from,
                        Some(job),
                    );
                    launch(&mut d.w, np, start_delay);
                    // netperf never finishes on its own: bound its
                    // measurement window with a completion timer
                    complete_job_after(
                        &mut d.w,
                        job,
                        start_delay + SimDuration::from_millis(*duration_ms),
                    );
                    job
                }
            };
            armed.push(Armed {
                kind: b.kind.kind_str(),
                client: cname.clone(),
                start_ms: b.start_ms,
                job,
                netperf_s: match &b.kind {
                    WorkloadSpec::Netperf { duration_ms, .. } => Some(*duration_ms as f64 / 1e3),
                    _ => None,
                },
            });
        }
        d.start_background();
        d.arm_faults(&self.faults)?;
        Ok(armed)
    }

    /// Aggregates a finished multi-workload run from the job table
    /// (per-job figures land in `per_workload`).
    fn aggregate_multi(
        &self,
        d: &mut Deployment,
        armed: &[Armed],
    ) -> Result<ScenarioReport, SpecError> {
        let mut first_start: Option<SimTime> = None;
        let mut last_done: Option<SimTime> = None;
        let mut total_bytes = 0u64;
        let mut total_ops = 0u64;
        let mut per_workload = Vec::new();
        for a in armed {
            let started = d.w.jobs.started_at(a.job).expect("job started");
            let done = d.w.jobs.completed_at(a.job).expect("job completed");
            first_start = Some(first_start.map_or(started, |t| t.min(started)));
            last_done = Some(last_done.map_or(done, |t| t.max(done)));
            let job_bytes = d.w.jobs.bytes(a.job);
            let job_ops = d.w.jobs.ops(a.job);
            total_bytes += job_bytes;
            total_ops += job_ops;
            // netperf measures over its fixed window, not token
            // round-trip times
            let secs = a
                .netperf_s
                .unwrap_or_else(|| done.since(started).as_secs_f64());
            let rate = if a.netperf_s.is_some() {
                job_ops as f64 / secs
            } else {
                job_bytes as f64 / 1e6 / secs
            };
            per_workload.push(WorkloadReport {
                kind: a.kind.to_owned(),
                client: a.client.clone(),
                start_ms: a.start_ms,
                elapsed_s: secs,
                bytes: job_bytes,
                rate,
            });
        }
        let elapsed_s = last_done
            .expect("at least one job")
            .since(first_start.expect("at least one job"))
            .as_secs_f64();
        let rate = if total_bytes > 0 {
            total_bytes as f64 / 1e6 / elapsed_s
        } else {
            total_ops as f64 / elapsed_s
        };

        Ok(self.finish_report(d, elapsed_s, total_bytes, rate, per_workload))
    }

    /// Collects the whole-world tail of a report: spans, CPU-category
    /// and per-thread busy rollups, and the fault summary.
    fn finish_report(
        &self,
        d: &mut Deployment,
        elapsed_s: f64,
        bytes: u64,
        rate: f64,
        per_workload: Vec<WorkloadReport>,
    ) -> ScenarioReport {
        let w = &mut d.w;
        let spans = if self.spans {
            Some(SpanSummary::collect(w))
        } else {
            None
        };

        let mut cpu_by_cat: std::collections::BTreeMap<&'static str, f64> = Default::default();
        for t in 0..w.acct.len() {
            let host = w.thread_host(ThreadId::from_raw(t as u32));
            let ghz = w.host_ghz(host);
            for cat in CpuCategory::ALL {
                if cat == CpuCategory::Lookbusy {
                    continue;
                }
                let cycles = w.acct.cycles(t, cat);
                if cycles > 0.0 {
                    *cpu_by_cat.entry(cat.figure_bucket()).or_insert(0.0) += cycles / ghz / 1e6;
                }
            }
        }
        let cpu_by_category_ms: Vec<(String, f64)> = cpu_by_cat
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();

        let mut thread_busy_ms: Vec<(String, f64)> = (0..w.acct.len())
            .map(|t| {
                (
                    w.thread_name(ThreadId::from_raw(t as u32)).to_owned(),
                    w.acct.busy_ns(t) as f64 / 1e6,
                )
            })
            .filter(|(_, b)| *b > 0.0)
            .collect();
        sort_busy_desc(&mut thread_busy_ms);

        let host_cache = if self.host_cache.mode == HostCacheMode::Cas {
            w.ext.get::<Cluster>().map(HostCacheReport::collect)
        } else {
            None
        };

        let timeline = if self.timeline.is_some() {
            Some(TimelineSummary::collect(w))
        } else {
            None
        };

        ScenarioReport {
            elapsed_s,
            bytes,
            rate,
            thread_busy_ms,
            cpu_by_category_ms,
            per_workload,
            faults: if self.faults.is_empty() {
                None
            } else {
                Some(collect_fault_report(w))
            },
            spans,
            host_cache,
            timeline,
        }
    }
}

/// Sends `Start` now (zero delay) or after `delay`.
fn launch(w: &mut World, actor: ActorId, delay: SimDuration) {
    if delay == SimDuration::ZERO {
        w.send_now(actor, Start);
    } else {
        w.send_after(actor, Start, delay);
    }
}

/// The populated size of the first dfsio-read input (all files share
/// it, matching TestDFSIO's uniform file size).
fn dfsio_read_size(w: &World, files: &[String]) -> Result<u64, SpecError> {
    let meta = w.ext.get::<HdfsMeta>().expect("meta");
    let sizes: Vec<u64> = files
        .iter()
        .map(|f| {
            meta.file(f)
                .map(|m| m.size())
                .ok_or_else(|| SpecError::Unresolved(format!("file {f}")))
        })
        .collect::<Result<_, _>>()?;
    Ok(sizes[0])
}

/// The populated size of one HDFS file.
fn hdfs_file_size(w: &World, path: &str) -> Result<u64, SpecError> {
    let meta = w.ext.get::<HdfsMeta>().expect("meta");
    meta.file(path)
        .map(|m| m.size())
        .ok_or_else(|| SpecError::Unresolved(format!("file {path}")))
}

/// Fluent construction of a [`ScenarioSpec`] — the programmatic
/// equivalent of the scenario JSON, with the same validation surface:
///
/// ```rust
/// use vread_bench::{ReadPath, ScenarioSpec};
/// use vread_bench::spec::WorkloadSpec;
///
/// let spec = ScenarioSpec::builder()
///     .path(ReadPath::VreadRdma)
///     .host("h1", 4, 2.0)
///     .host("h2", 4, 2.0)
///     .client("client", "h1")
///     .datanode("dn1", "h1")
///     .datanode("dn2", "h2")
///     .replicated_file("/d", 16, &["dn1", "dn2"])
///     .workload(WorkloadSpec::Reader {
///         path: "/d".to_owned(),
///         request_kb: 1024,
///     })
///     .build()?;
/// assert_eq!(spec.files[0].placement.len(), 2);
/// # Ok::<(), vread_bench::SpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    seed: u64,
    path: ReadPath,
    hosts: Vec<HostSpec>,
    vms: Vec<VmSpec>,
    files: Vec<FileSpec>,
    workloads: Vec<WorkloadBinding>,
    faults: Vec<FaultSpec>,
    spans: bool,
    host_cache: HostCacheSpec,
    timeline: Option<TimelineSpec>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            seed: 42,
            path: ReadPath::Vanilla,
            hosts: Vec::new(),
            vms: Vec::new(),
            files: Vec::new(),
            workloads: Vec::new(),
            faults: Vec::new(),
            spans: false,
            host_cache: HostCacheSpec::default(),
            timeline: None,
        }
    }
}

impl ScenarioBuilder {
    /// Sets the RNG seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the read path under test (default vanilla).
    pub fn path(mut self, path: ReadPath) -> Self {
        self.path = path;
        self
    }

    /// Adds a host.
    pub fn host(mut self, name: &str, cores: usize, ghz: f64) -> Self {
        self.hosts.push(HostSpec {
            name: name.to_owned(),
            cores,
            ghz,
        });
        self
    }

    /// Adds a client VM on `host`.
    pub fn client(self, name: &str, host: &str) -> Self {
        self.vm(name, host, VmRole::Client, None)
    }

    /// Adds a datanode VM on `host`.
    pub fn datanode(self, name: &str, host: &str) -> Self {
        self.vm(name, host, VmRole::Datanode, None)
    }

    /// Adds a lookbusy background VM on `host` with duty cycle `busy`.
    pub fn lookbusy(self, name: &str, host: &str, busy: f64) -> Self {
        self.vm(name, host, VmRole::Lookbusy, Some(busy))
    }

    /// Adds a VM with an explicit role.
    pub fn vm(mut self, name: &str, host: &str, role: VmRole, busy: Option<f64>) -> Self {
        self.vms.push(VmSpec {
            name: name.to_owned(),
            host: host.to_owned(),
            role,
            busy,
        });
        self
    }

    /// Adds a pre-populated file, blocks round-robined over `placement`.
    pub fn file(mut self, path: &str, mb: u64, placement: &[&str]) -> Self {
        self.files.push(FileSpec {
            path: path.to_owned(),
            mb,
            placement: placement.iter().map(|s| (*s).to_owned()).collect(),
            replicate: false,
        });
        self
    }

    /// Adds a pre-populated file with every block replicated on all
    /// `placement` datanodes.
    pub fn replicated_file(mut self, path: &str, mb: u64, placement: &[&str]) -> Self {
        self.files.push(FileSpec {
            path: path.to_owned(),
            mb,
            placement: placement.iter().map(|s| (*s).to_owned()).collect(),
            replicate: true,
        });
        self
    }

    /// Adds a workload bound to the first client VM at time zero (at
    /// least one workload is required).
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workloads.push(WorkloadBinding::new(workload));
        self
    }

    /// Adds a workload bound to client VM `client`, launching `start_ms`
    /// simulated milliseconds after scenario start.
    pub fn workload_on(mut self, client: &str, start_ms: u64, workload: WorkloadSpec) -> Self {
        self.workloads.push(WorkloadBinding {
            client: Some(client.to_owned()),
            start_ms,
            kind: workload,
        });
        self
    }

    /// Plans a fault at `at_ms` simulated milliseconds.
    pub fn fault(mut self, at_ms: u64, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { at_ms, kind });
        self
    }

    /// Enables the span flight recorder (default off).
    pub fn spans(mut self, spans: bool) -> Self {
        self.spans = spans;
        self
    }

    /// Configures the host block store (default: per-host LRU with the
    /// cost model's capacity).
    pub fn host_cache(mut self, cache: HostCacheSpec) -> Self {
        self.host_cache = cache;
        self
    }

    /// Enables the telemetry timeline, sampling every `sample_ms`
    /// simulated milliseconds (default off).
    pub fn timeline_sample_ms(mut self, sample_ms: u64) -> Self {
        self.timeline = Some(TimelineSpec { sample_ms });
        self
    }

    /// Validates the assembled scenario and returns it.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] when the shape is wrong (no workload, no
    /// client/datanode VM, duplicate host/VM/file names, a workload
    /// bound to a non-client VM, vm-crash against a non-datanode);
    /// [`SpecError::Unresolved`] when a host, datanode, file, workload
    /// client or fault target name doesn't refer to anything added
    /// before `build`.
    pub fn build(self) -> Result<ScenarioSpec, SpecError> {
        if self.workloads.is_empty() {
            return Err(SpecError::Invalid("no workload".to_owned()));
        }
        check_unique_names(&self.hosts, &self.vms, &self.files)?;
        let host_names: std::collections::HashSet<&str> =
            self.hosts.iter().map(|h| h.name.as_str()).collect();
        let mut datanodes = std::collections::HashSet::new();
        let mut client_names = std::collections::HashSet::new();
        for v in &self.vms {
            if !host_names.contains(v.host.as_str()) {
                return Err(SpecError::Unresolved(format!("host {}", v.host)));
            }
            match v.role {
                VmRole::Client => {
                    client_names.insert(v.name.as_str());
                }
                VmRole::Datanode => {
                    datanodes.insert(v.name.as_str());
                }
                VmRole::Lookbusy | VmRole::Peer => {}
            }
        }
        if client_names.is_empty() {
            return Err(SpecError::Invalid("no client VM".to_owned()));
        }
        if datanodes.is_empty() {
            return Err(SpecError::Invalid("no datanode VM".to_owned()));
        }
        for f in &self.files {
            if f.placement.is_empty() {
                return Err(SpecError::Invalid(format!(
                    "file {} has no placement",
                    f.path
                )));
            }
            for dn in &f.placement {
                if !datanodes.contains(dn.as_str()) {
                    return Err(SpecError::Unresolved(format!("datanode {dn}")));
                }
            }
        }
        let file_names: std::collections::HashSet<&str> =
            self.files.iter().map(|f| f.path.as_str()).collect();
        let vm_names: std::collections::HashSet<&str> =
            self.vms.iter().map(|v| v.name.as_str()).collect();
        for b in &self.workloads {
            if let Some(c) = &b.client {
                if !vm_names.contains(c.as_str()) {
                    return Err(SpecError::Unresolved(format!("client VM {c}")));
                }
                if !client_names.contains(c.as_str()) {
                    return Err(SpecError::Invalid(format!(
                        "workload client {c} is not a client VM"
                    )));
                }
            }
            let read_targets: Vec<&str> = match &b.kind {
                WorkloadSpec::DfsioRead { files, .. } => files.iter().map(String::as_str).collect(),
                WorkloadSpec::Reader { path, .. } => vec![path.as_str()],
                _ => Vec::new(),
            };
            for f in read_targets {
                if !file_names.contains(f) {
                    return Err(SpecError::Unresolved(format!("file {f}")));
                }
            }
        }
        for f in &self.faults {
            match &f.kind {
                FaultKind::DaemonCrash { host }
                | FaultKind::DaemonRestart { host }
                | FaultKind::LinkFlap { host, .. }
                | FaultKind::DiskSlow { host, .. }
                | FaultKind::CacheDrop { host } => {
                    if !host_names.contains(host.as_str()) {
                        return Err(SpecError::Unresolved(format!("fault host {host}")));
                    }
                }
                FaultKind::VhostStall { vm, .. } => {
                    if !vm_names.contains(vm.as_str()) {
                        return Err(SpecError::Unresolved(format!("fault vm {vm}")));
                    }
                }
                FaultKind::VmCrash { vm } => {
                    if !vm_names.contains(vm.as_str()) {
                        return Err(SpecError::Unresolved(format!("fault vm {vm}")));
                    }
                    if !datanodes.contains(vm.as_str()) {
                        return Err(SpecError::Invalid(format!(
                            "vm-crash target {vm} is not a datanode VM"
                        )));
                    }
                }
            }
        }
        if self.host_cache.capacity_mb == Some(0) {
            return Err(SpecError::Invalid(
                "host_cache capacity_mb must be positive".to_owned(),
            ));
        }
        if self.host_cache.chunk_kb == Some(0) {
            return Err(SpecError::Invalid(
                "host_cache chunk_kb must be positive".to_owned(),
            ));
        }
        if self.timeline.as_ref().is_some_and(|t| t.sample_ms == 0) {
            return Err(SpecError::Invalid(
                "timeline sample_ms must be positive".to_owned(),
            ));
        }
        Ok(ScenarioSpec {
            seed: self.seed,
            path: self.path,
            hosts: self.hosts,
            vms: self.vms,
            files: self.files,
            workloads: self.workloads,
            faults: self.faults,
            spans: self.spans,
            host_cache: self.host_cache,
            timeline: self.timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "path": "vread-rdma",
        "hosts": [
            { "name": "h1", "ghz": 3.2 },
            { "name": "h2" }
        ],
        "vms": [
            { "name": "client", "host": "h1", "role": "client" },
            { "name": "dn1", "host": "h1", "role": "datanode" },
            { "name": "dn2", "host": "h2", "role": "datanode" },
            { "name": "bg", "host": "h1", "role": "lookbusy", "busy": 0.5 }
        ],
        "files": [ { "path": "/d", "mb": 64, "placement": ["dn1", "dn2"] } ],
        "workload": { "kind": "dfsio-read", "files": ["/d"] }
    }"#;

    #[test]
    fn spec_roundtrip_and_run() {
        let spec = ScenarioSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.hosts[1].cores, 4, "defaults fill in");
        let report = spec.run().unwrap();
        assert_eq!(report.bytes, 64 << 20);
        assert!(report.rate > 10.0, "rate {}", report.rate);
        assert!(!report.thread_busy_ms.is_empty());
        assert!(
            report
                .cpu_by_category_ms
                .iter()
                .any(|(k, _)| k == "data copy(vRead-buffer)"),
            "vread run shows ring copies in the breakdown"
        );
        // JSON-serializable report; single-workload reports carry no
        // per_workload block
        let j = report.to_json();
        assert!(j.contains("elapsed_s"));
        assert!(!j.contains("per_workload"));
    }

    #[test]
    fn unresolved_references_error() {
        let bad = SPEC.replace("\"host\": \"h1\"", "\"host\": \"nope\"");
        let spec = ScenarioSpec::from_json(&bad).unwrap();
        assert!(matches!(spec.run(), Err(SpecError::Unresolved(_))));
    }

    #[test]
    fn unknown_path_errors() {
        // with the typed ReadPath a bad spelling can't even construct a
        // spec — it dies at parse time rather than inside run()
        let bad = SPEC.replace("vread-rdma", "warp-drive");
        assert!(matches!(
            ScenarioSpec::from_json(&bad),
            Err(SpecError::Parse(_))
        ));
    }

    #[test]
    fn unknown_top_level_keys_are_rejected() {
        let bad =
            SPEC.replace("\"seed\": 7,", "")
                .replacen("\"path\"", "\"wokload\": [], \"path\"", 1);
        let err = ScenarioSpec::from_json(&bad).unwrap_err();
        match err {
            SpecError::Parse(msg) => {
                assert!(msg.contains("wokload"), "names the offending key: {msg}")
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_names_are_rejected_in_both_construction_paths() {
        let dup_vm = SPEC.replace(
            "{ \"name\": \"dn2\", \"host\": \"h2\", \"role\": \"datanode\" }",
            "{ \"name\": \"dn1\", \"host\": \"h2\", \"role\": \"datanode\" }",
        );
        assert!(matches!(
            ScenarioSpec::from_json(&dup_vm),
            Err(SpecError::Invalid(_))
        ));
        let dup_host = SPEC.replace("\"name\": \"h2\"", "\"name\": \"h1\"");
        assert!(matches!(
            ScenarioSpec::from_json(&dup_host),
            Err(SpecError::Invalid(_))
        ));

        let builder = || {
            ScenarioSpec::builder()
                .host("h1", 4, 2.0)
                .client("client", "h1")
                .datanode("dn1", "h1")
                .file("/d", 8, &["dn1"])
                .workload(WorkloadSpec::Reader {
                    path: "/d".to_owned(),
                    request_kb: 1024,
                })
        };
        assert!(builder().build().is_ok());
        assert!(matches!(
            builder().datanode("dn1", "h1").build(),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            builder().host("h1", 4, 2.0).build(),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            builder().file("/d", 8, &["dn1"]).build(),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn busy_sort_tolerates_nan() {
        // regression: the old partial_cmp().expect("no NaN") panicked on
        // NaN busy values; total_cmp orders them deterministically
        let mut v = vec![
            ("a".to_owned(), 1.0),
            ("n".to_owned(), f64::NAN),
            ("b".to_owned(), 2.0),
        ];
        sort_busy_desc(&mut v);
        assert_eq!(v[0].0, "n", "NaN sorts above all finite values");
        assert_eq!(v[1].0, "b");
        assert_eq!(v[2].0, "a");
    }

    #[test]
    fn builder_matches_json_parse() {
        let from_json = ScenarioSpec::from_json(SPEC).unwrap();
        let built = ScenarioSpec::builder()
            .path(ReadPath::VreadRdma)
            .host("h1", 4, 3.2)
            .host("h2", 4, 2.0)
            .client("client", "h1")
            .datanode("dn1", "h1")
            .datanode("dn2", "h2")
            .lookbusy("bg", "h1", 0.5)
            .file("/d", 64, &["dn1", "dn2"])
            .workload(WorkloadSpec::DfsioRead {
                files: vec!["/d".to_owned()],
                buffer_kb: 1024,
            })
            .build()
            .unwrap();
        assert_eq!(
            built.run().unwrap().to_json(),
            from_json.run().unwrap().to_json(),
            "builder and JSON describe the same deployment"
        );
    }

    #[test]
    fn builder_validates_shape_and_references() {
        let base = || {
            ScenarioSpec::builder()
                .host("h1", 4, 2.0)
                .client("client", "h1")
                .datanode("dn1", "h1")
        };
        assert!(
            matches!(base().build(), Err(SpecError::Invalid(_))),
            "missing workload"
        );
        let wl = WorkloadSpec::Reader {
            path: "/d".to_owned(),
            request_kb: 1024,
        };
        assert!(
            matches!(
                base().workload(wl.clone()).build(),
                Err(SpecError::Unresolved(_))
            ),
            "reader file must be populated"
        );
        assert!(matches!(
            base()
                .file("/d", 8, &["ghost-dn"])
                .workload(wl.clone())
                .build(),
            Err(SpecError::Unresolved(_))
        ));
        assert!(matches!(
            base()
                .file("/d", 8, &["dn1"])
                .workload(wl.clone())
                .fault(
                    100,
                    FaultKind::VmCrash {
                        vm: "client".to_owned()
                    }
                )
                .build(),
            Err(SpecError::Invalid(_)),
        ));
        assert!(
            matches!(
                base()
                    .file("/d", 8, &["dn1"])
                    .workload_on("ghost", 0, wl.clone())
                    .build(),
                Err(SpecError::Unresolved(_))
            ),
            "workload client must exist"
        );
        assert!(
            matches!(
                base()
                    .file("/d", 8, &["dn1"])
                    .workload_on("dn1", 0, wl.clone())
                    .build(),
                Err(SpecError::Invalid(_))
            ),
            "workload client must have the client role"
        );
        let ok = base().file("/d", 8, &["dn1"]).workload(wl).build().unwrap();
        assert_eq!(ok.path, ReadPath::Vanilla);
        assert!(ok.run().is_ok());
    }

    #[test]
    fn daemon_crash_falls_back_and_recovers() {
        let build = |faults: bool| {
            let mut b = ScenarioSpec::builder()
                .path(ReadPath::VreadRdma)
                .host("h1", 4, 2.0)
                .host("h2", 4, 2.0)
                .client("client", "h1")
                .datanode("dn1", "h1")
                .datanode("dn2", "h2")
                .replicated_file("/d", 256, &["dn1", "dn2"])
                .workload(WorkloadSpec::Reader {
                    path: "/d".to_owned(),
                    request_kb: 1024,
                });
            if faults {
                // crash mid-first-block, restart while the stalled read
                // is still waiting out its client timeout
                b = b
                    .fault(
                        100,
                        FaultKind::DaemonCrash {
                            host: "h1".to_owned(),
                        },
                    )
                    .fault(
                        600,
                        FaultKind::DaemonRestart {
                            host: "h1".to_owned(),
                        },
                    );
            }
            b.build().unwrap()
        };
        let clean = build(false).run().unwrap();
        let faulted = build(true).run().unwrap();
        assert!(clean.faults.is_none());
        let fr = faulted.faults.clone().expect("fault report");
        assert_eq!(faulted.bytes, clean.bytes, "no data loss");
        assert!(fr.fallback_reads > 0, "outage served via fallback: {fr:?}");
        assert_eq!(fr.daemon_restarts, 1);
        assert!(
            faulted.elapsed_s > clean.elapsed_s,
            "the outage costs time ({} vs {})",
            faulted.elapsed_s,
            clean.elapsed_s
        );
        // deterministic: the same plan reproduces the same report
        assert_eq!(
            build(true).run().unwrap().to_json(),
            faulted.to_json(),
            "fault runs are deterministic"
        );
    }

    #[test]
    fn netperf_workload_reports_rate() {
        let spec_json = r#"{
            "path": "vanilla",
            "hosts": [ { "name": "h1", "ghz": 3.2 } ],
            "vms": [
                { "name": "client", "host": "h1", "role": "client" },
                { "name": "dn1", "host": "h1", "role": "datanode" }
            ],
            "workload": { "kind": "netperf", "request_kb": 32, "duration_ms": 200 }
        }"#;
        let spec = ScenarioSpec::from_json(spec_json).unwrap();
        let report = spec.run().unwrap();
        assert!(report.rate > 1_000.0, "txn rate {}", report.rate);
    }

    #[test]
    fn write_workload_creates_files() {
        let spec_json = r#"{
            "path": "vanilla",
            "hosts": [ { "name": "h1" } ],
            "vms": [
                { "name": "client", "host": "h1", "role": "client" },
                { "name": "dn1", "host": "h1", "role": "datanode" }
            ],
            "workload": { "kind": "dfsio-write", "files": ["/o1", "/o2"], "mb": 16 }
        }"#;
        let spec = ScenarioSpec::from_json(spec_json).unwrap();
        let report = spec.run().unwrap();
        assert_eq!(report.bytes, 32 << 20);
    }

    const MULTI: &str = r#"{
        "seed": 11,
        "path": "vread-rdma",
        "hosts": [
            { "name": "h1", "ghz": 3.2 },
            { "name": "h2", "ghz": 3.2 }
        ],
        "vms": [
            { "name": "c1", "host": "h1", "role": "client" },
            { "name": "c2", "host": "h2", "role": "client" },
            { "name": "dn1", "host": "h1", "role": "datanode" },
            { "name": "dn2", "host": "h2", "role": "datanode" }
        ],
        "files": [
            { "path": "/a", "mb": 32, "placement": ["dn1"] },
            { "path": "/b", "mb": 16, "placement": ["dn2"] }
        ],
        "workloads": [
            { "kind": "reader", "path": "/a", "request_kb": 1024, "client": "c1" },
            { "kind": "reader", "path": "/b", "request_kb": 1024, "client": "c2", "start_ms": 50 }
        ]
    }"#;

    #[test]
    fn multi_workload_reports_per_job_and_sums_to_aggregate() {
        let spec = ScenarioSpec::from_json(MULTI).unwrap();
        let report = spec.run().unwrap();
        assert_eq!(report.per_workload.len(), 2);
        let per_bytes: u64 = report.per_workload.iter().map(|wr| wr.bytes).sum();
        assert_eq!(per_bytes, report.bytes, "per-workload bytes sum");
        assert_eq!(report.bytes, (32 << 20) + (16 << 20));
        assert_eq!(report.per_workload[0].client, "c1");
        assert_eq!(report.per_workload[1].client, "c2");
        assert_eq!(report.per_workload[1].start_ms, 50);
        for wr in &report.per_workload {
            assert!(wr.elapsed_s > 0.0 && wr.rate > 0.0, "{wr:?}");
        }
        // the aggregate window covers both jobs
        assert!(report.elapsed_s >= report.per_workload[0].elapsed_s);
        let j = report.to_json();
        assert!(j.contains("per_workload"));

        // deterministic: a second run serializes byte-identically
        let again = ScenarioSpec::from_json(MULTI).unwrap().run().unwrap();
        assert_eq!(again.to_json(), j);
    }

    #[test]
    fn host_cache_block_parses_and_validates() {
        // absent → the per-host LRU default; no report block either
        let spec = ScenarioSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.host_cache, HostCacheSpec::default());
        assert_eq!(spec.host_cache.mode, HostCacheMode::Lru);

        const BLOCK: &str = "{ \"mode\": \"cas\", \"capacity_mb\": 256, \"chunk_kb\": 64 }";
        let with = SPEC.replacen("\"path\"", &format!("\"host_cache\": {BLOCK}, \"path\""), 1);
        let spec = ScenarioSpec::from_json(&with).unwrap();
        assert_eq!(spec.host_cache.mode, HostCacheMode::Cas);
        assert_eq!(spec.host_cache.capacity_mb, Some(256));
        assert_eq!(spec.host_cache.chunk_kb, Some(64));

        // unknown keys inside the block are rejected by name
        let bad = with.replace("\"chunk_kb\"", "\"chunk_bk\"");
        match ScenarioSpec::from_json(&bad).unwrap_err() {
            SpecError::Parse(msg) => assert!(msg.contains("chunk_bk"), "{msg}"),
            other => panic!("expected parse error, got {other:?}"),
        }
        // unknown mode
        let bad = with.replace("\"cas\"", "\"arc\"");
        assert!(matches!(
            ScenarioSpec::from_json(&bad),
            Err(SpecError::Parse(_))
        ));
        // zero sizes are rejected
        for zeroed in [with.replace("256", "0"), with.replace("64", "0")] {
            assert!(matches!(
                ScenarioSpec::from_json(&zeroed),
                Err(SpecError::Parse(_))
            ));
        }
        // the block must be an object
        let bad = with.replace(BLOCK, "\"cas\"");
        assert!(matches!(
            ScenarioSpec::from_json(&bad),
            Err(SpecError::Parse(_))
        ));
    }

    #[test]
    fn lru_report_json_is_unchanged_and_cas_adds_host_cache_block() {
        let spec = ScenarioSpec::from_json(SPEC).unwrap();
        let lru = spec.run().unwrap();
        assert!(lru.host_cache.is_none());
        assert!(!lru.to_json().contains("host_cache"));

        let with = SPEC.replacen(
            "\"path\"",
            "\"host_cache\": { \"mode\": \"cas\" }, \"path\"",
            1,
        );
        let cas = ScenarioSpec::from_json(&with).unwrap().run().unwrap();
        assert_eq!(cas.bytes, lru.bytes, "payload is store-independent");
        assert!(cas.to_json().contains("effective_capacity_x"));
        let hc = cas.host_cache.expect("cas run reports its store");
        assert!(hc.effective_capacity_x >= 1.0);
    }

    #[test]
    fn timeline_block_parses_and_validates() {
        // absent → no sampler, no report block
        let spec = ScenarioSpec::from_json(SPEC).unwrap();
        assert!(spec.timeline.is_none());

        let with = SPEC.replacen(
            "\"path\"",
            "\"timeline\": { \"sample_ms\": 20 }, \"path\"",
            1,
        );
        let spec = ScenarioSpec::from_json(&with).unwrap();
        assert_eq!(spec.timeline, Some(TimelineSpec { sample_ms: 20 }));

        // unknown keys inside the block are rejected by name
        let bad = with.replace("\"sample_ms\"", "\"sample_sm\"");
        match ScenarioSpec::from_json(&bad).unwrap_err() {
            SpecError::Parse(msg) => assert!(msg.contains("sample_sm"), "{msg}"),
            other => panic!("expected parse error, got {other:?}"),
        }
        // a zero period is rejected
        let bad = with.replace("20", "0");
        assert!(matches!(
            ScenarioSpec::from_json(&bad),
            Err(SpecError::Parse(_))
        ));
        // the block must be an object
        let bad = with.replace("{ \"sample_ms\": 20 }", "20");
        assert!(matches!(
            ScenarioSpec::from_json(&bad),
            Err(SpecError::Parse(_))
        ));
        // the builder applies the same zero check
        assert!(matches!(
            ScenarioSpec::builder().timeline_sample_ms(0).build(),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn timeline_block_adds_report_section() {
        let spec = ScenarioSpec::from_json(SPEC).unwrap();
        let off = spec.run().unwrap();
        assert!(off.timeline.is_none());
        assert!(!off.to_json().contains("\"timeline\""));

        let with = SPEC.replacen(
            "\"path\"",
            "\"timeline\": { \"sample_ms\": 10 }, \"path\"",
            1,
        );
        let on = ScenarioSpec::from_json(&with).unwrap().run().unwrap();
        assert_eq!(on.bytes, off.bytes, "sampling never perturbs the run");
        assert_eq!(on.elapsed_s, off.elapsed_s, "virtual time is unchanged");
        assert!(on.to_json().contains("\"saturation_ms\""));
        let tl = on.timeline.expect("timeline run reports its summary");
        assert_eq!(tl.sample_ms, 10);
        assert!(tl.reads > 0 && tl.ticks > 0);
    }

    #[test]
    fn singular_and_plural_workload_fields_are_exclusive() {
        let both = SPEC.replacen("\"workload\":", "\"workloads\": [], \"workload\":", 1);
        assert!(matches!(
            ScenarioSpec::from_json(&both),
            Err(SpecError::Parse(_))
        ));
        let neither = SPEC.replacen("\"workload\":", "\"ignored\":", 1);
        assert!(matches!(
            ScenarioSpec::from_json(&neither),
            Err(SpecError::Parse(_))
        ));
    }
}

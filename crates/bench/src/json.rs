//! Dependency-free JSON: a small value model, a strict parser and a
//! pretty printer.
//!
//! Replaces serde/serde_json (unavailable in this offline workspace) for
//! the harness's needs: parsing declarative scenario specs and emitting
//! machine-readable result tables. Object key order is preserved, so the
//! printed form of a programmatically-built document is deterministic —
//! the property the parallel-runner byte-identity guarantee rests on.

use std::fmt::Write as _;

/// A JSON value. Objects keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, printed without a fraction when whole).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: message plus byte offset.
#[derive(Debug, Clone)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if a whole non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// body (serde_json style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Compact single-line form.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(v) if !v.is_empty() => {
                out.push_str("[\n");
                for (i, e) in v.iter().enumerate() {
                    indent(out, depth + 1);
                    e.write_pretty(out, depth + 1);
                    if i + 1 < v.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, e)) in m.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    e.write_pretty(out, depth + 1);
                    if i + 1 < m.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, e)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    e.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builder shorthand for a `Json::Obj`.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Builder shorthand for a `Json::Str`.
pub fn s(v: impl Into<String>) -> Json {
    Json::Str(v.into())
}

/// Builder shorthand for a `Json::Num`.
pub fn n(v: f64) -> Json {
    Json::Num(v)
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        // whole numbers print like integers, matching serde_json
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_owned(),
            at: self.i,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut m = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // surrogate pairs are not needed by our specs
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let txt = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        txt.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let j = Json::parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e1}}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(1));
        let b = j.get("b").and_then(Json::as_array).unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_str(), Some("x\n"));
        assert_eq!(
            j.get("c").unwrap().get("d").and_then(Json::as_f64),
            Some(-25.0)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a": }"#).is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn pretty_round_trips() {
        let j = obj(vec![
            ("id", s("fig2")),
            ("values", Json::Arr(vec![n(1.0), n(2.5)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let p = j.pretty();
        assert!(p.contains("\"id\": \"fig2\""));
        assert!(p.contains("\"empty\": []"));
        assert_eq!(Json::parse(&p).unwrap(), j);
    }

    #[test]
    fn whole_numbers_print_as_integers() {
        assert_eq!(n(3.0).compact(), "3");
        assert_eq!(n(3.25).compact(), "3.25");
        assert_eq!(n(-0.5).compact(), "-0.5");
    }

    #[test]
    fn preserves_key_order() {
        let j = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(j.compact(), r#"{"z":1,"a":2}"#);
    }
}

//! Resolve + deploy: turn a validated topology description into typed
//! handles on a running [`World`].
//!
//! Every harness entry point — declarative scenarios
//! ([`crate::ScenarioSpec`]), the Figure 10 testbed
//! ([`crate::Testbed`]), experiment one-offs (Figure 3's HDFS-less
//! netperf hosts) and the criterion benches — assembles its deployment
//! through [`Deployment::build`], so host/VM/HDFS/file wiring exists
//! exactly once. The deployment separates three moments the legacy code
//! interleaved:
//!
//! 1. **build** — hosts, VMs, cache pressure, HDFS (when there are
//!    datanodes) and file population, in spec order;
//! 2. **clients** — [`Deployment::make_client`] deploys the read path
//!    under test and a `DfsClient` on a client VM (callers control when,
//!    because actor creation order is part of a run's identity);
//! 3. **background + faults** — [`Deployment::start_background`] spawns
//!    the lookbusy load and [`Deployment::arm_faults`] schedules the
//!    fault plan, again at the caller's chosen point in the wiring
//!    sequence.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::faults::{build_fault_actions, plan_window, FaultSpec, FaultTargets};
use crate::scenarios::ReadPath;
use crate::spec::{FileSpec, HostCacheSpec, HostSpec, SpecError, VmRole, VmSpec};

use vread_apps::lookbusy::{llc_pressure, Lookbusy};
use vread_core::daemon::{deploy_vread, RemoteTransport};
use vread_core::VreadPath;
use vread_hdfs::client::{add_client, BlockReadPath, VanillaPath};
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::{deploy_hdfs, DatanodeIx};
use vread_host::cluster::{Cluster, HostIx, VmId};
use vread_host::costs::Costs;
use vread_sim::fault::{schedule_faults, FaultTrace};
use vread_sim::prelude::*;

/// A validated topology: what to deploy, before any world exists.
#[derive(Debug, Clone)]
pub struct DeployPlan {
    /// RNG seed.
    pub seed: u64,
    /// Read path clients made from this deployment will use.
    pub path: ReadPath,
    /// Enable the span flight recorder before any activity.
    pub spans: bool,
    /// Cost-model override.
    pub costs: Costs,
    /// Physical hosts, in creation order.
    pub hosts: Vec<HostSpec>,
    /// VMs, in creation order.
    pub vms: Vec<VmSpec>,
    /// HDFS files to pre-populate (requires datanode VMs).
    pub files: Vec<FileSpec>,
    /// Host block-store configuration (default: per-host LRU).
    pub host_cache: HostCacheSpec,
    /// Telemetry timeline sampling period in simulated milliseconds;
    /// `None` (the default) leaves the timeline disabled.
    pub timeline_sample_ms: Option<u64>,
}

impl DeployPlan {
    /// An empty plan: given seed, vanilla path, default costs, nothing
    /// deployed.
    pub fn new(seed: u64) -> Self {
        DeployPlan {
            seed,
            path: ReadPath::Vanilla,
            spans: false,
            costs: Costs::default(),
            hosts: Vec::new(),
            vms: Vec::new(),
            files: Vec::new(),
            host_cache: HostCacheSpec::default(),
            timeline_sample_ms: None,
        }
    }

    /// Sets the read path for clients.
    pub fn path(mut self, path: ReadPath) -> Self {
        self.path = path;
        self
    }

    /// Enables the span flight recorder.
    pub fn spans(mut self, spans: bool) -> Self {
        self.spans = spans;
        self
    }

    /// Overrides the cost model.
    pub fn costs(mut self, costs: Costs) -> Self {
        self.costs = costs;
        self
    }

    /// Adds a host.
    pub fn host(mut self, name: &str, cores: usize, ghz: f64) -> Self {
        self.hosts.push(HostSpec {
            name: name.to_owned(),
            cores,
            ghz,
        });
        self
    }

    /// Adds a VM.
    pub fn vm(mut self, name: &str, host: &str, role: VmRole, busy: Option<f64>) -> Self {
        self.vms.push(VmSpec {
            name: name.to_owned(),
            host: host.to_owned(),
            role,
            busy,
        });
        self
    }

    /// Adds a pre-populated file.
    pub fn file(mut self, spec: FileSpec) -> Self {
        self.files.push(spec);
        self
    }

    /// Configures the host block store.
    pub fn host_cache(mut self, cache: HostCacheSpec) -> Self {
        self.host_cache = cache;
        self
    }

    /// Enables the telemetry timeline with the given sampling period.
    pub fn timeline_sample_ms(mut self, sample_ms: u64) -> Self {
        self.timeline_sample_ms = Some(sample_ms);
        self
    }
}

/// A deployed topology: the world plus typed handles resolved from the
/// plan's names.
pub struct Deployment {
    /// The running world.
    pub w: World,
    /// Read path [`Deployment::make_client`] deploys.
    pub path: ReadPath,
    /// Host name → index.
    pub host_ix: HashMap<String, HostIx>,
    /// VM name → id (all roles).
    pub vm_ids: HashMap<String, VmId>,
    /// Client VMs, in plan order.
    pub clients: Vec<(String, VmId)>,
    /// Datanode VMs, in plan order.
    pub datanode_vms: Vec<(String, VmId)>,
    /// HDFS datanode handles, parallel to `datanode_vms` (empty when
    /// the plan had no datanodes and HDFS was not deployed).
    pub dn_ixs: Vec<DatanodeIx>,
    /// Lookbusy (thread, duty-cycle) pairs, pending until
    /// [`Deployment::start_background`].
    lookbusy: Vec<(ThreadId, f64)>,
    /// Whether [`Deployment::add_client_on`] has deployed the vRead
    /// daemons yet (they are per-host singletons).
    path_deployed: bool,
}

/// Deploys the read path under test (vRead daemons when needed) and a
/// `DfsClient` in `vm`. The single home of read-path construction — the
/// testbed, scenarios and benches all route through here.
pub fn make_read_client(w: &mut World, path: ReadPath, vm: VmId) -> ActorId {
    let p: Box<dyn BlockReadPath> = match path {
        ReadPath::Vanilla => Box::new(VanillaPath::new()),
        ReadPath::VreadRdma => {
            deploy_vread(w, RemoteTransport::Rdma);
            Box::new(VreadPath::new())
        }
        ReadPath::VreadTcp => {
            deploy_vread(w, RemoteTransport::Tcp);
            Box::new(VreadPath::new())
        }
    };
    add_client(w, vm, p)
}

impl Deployment {
    /// Builds the plan: hosts, VMs and cache pressure in spec order,
    /// then HDFS (namenode on the first client VM) and file population
    /// when the plan has datanodes.
    ///
    /// # Errors
    ///
    /// [`SpecError::Unresolved`] for VM→host and file→datanode
    /// references; [`SpecError::Invalid`] when datanodes exist without a
    /// client VM to host the namenode, or a file has no placement.
    pub fn build(plan: DeployPlan) -> Result<Deployment, SpecError> {
        let mut w = World::new(plan.seed);
        if plan.spans {
            // Enabled before any activity so the cycle-conservation
            // invariant covers deploy/populate work too.
            w.spans.enable();
        }
        let mut costs = plan.costs;
        if let Some(mb) = plan.host_cache.capacity_mb {
            costs.host_cache_bytes = mb << 20;
        }
        if let Some(kb) = plan.host_cache.chunk_kb {
            costs.cache_chunk_bytes = kb << 10;
        }
        let mut cl = Cluster::new(costs);
        // Before any add_host: each host's store is built at creation.
        cl.set_host_cache_mode(plan.host_cache.mode);

        let mut host_ix = HashMap::new();
        for h in &plan.hosts {
            let ix = cl.add_host(&mut w, &h.name, h.cores, h.ghz);
            host_ix.insert(h.name.clone(), ix);
        }

        let mut vm_ids: HashMap<String, VmId> = Default::default();
        let mut clients: Vec<(String, VmId)> = Vec::new();
        let mut datanode_vms: Vec<(String, VmId)> = Vec::new();
        let mut lookbusy: Vec<(ThreadId, f64)> = Vec::new();
        let mut busy_per_host: BTreeMap<String, usize> = Default::default();
        for v in &plan.vms {
            let hix = *host_ix
                .get(&v.host)
                .ok_or_else(|| SpecError::Unresolved(format!("host {}", v.host)))?;
            let id = cl.add_vm(&mut w, hix, &v.name);
            vm_ids.insert(v.name.clone(), id);
            match v.role {
                VmRole::Client => clients.push((v.name.clone(), id)),
                VmRole::Datanode => datanode_vms.push((v.name.clone(), id)),
                VmRole::Peer => {}
                VmRole::Lookbusy => {
                    lookbusy.push((cl.vm(id).vcpu, v.busy.unwrap_or(0.85)));
                    *busy_per_host.entry(v.host.clone()).or_insert(0) += 1;
                }
            }
        }
        // cache pressure per host from its lookbusy population
        for (host, n) in &busy_per_host {
            let hix = host_ix[host];
            let host_id = cl.hosts[hix.0].host;
            w.set_cache_pressure(host_id, llc_pressure(*n));
        }
        w.ext.insert(cl);

        // HDFS + data — only when the plan runs datanodes (Figure 3's
        // netperf hosts deploy plain peer VMs, no filesystem)
        let dn_ixs = if datanode_vms.is_empty() {
            Vec::new()
        } else {
            let nn_vm = clients
                .first()
                .ok_or_else(|| SpecError::Invalid("no client VM".to_owned()))?
                .1;
            let dn_vms: Vec<VmId> = datanode_vms.iter().map(|(_, v)| *v).collect();
            let (_nn, ixs) = deploy_hdfs(&mut w, nn_vm, &dn_vms);
            ixs
        };
        let dn_by_name: HashMap<&str, DatanodeIx> = datanode_vms
            .iter()
            .zip(&dn_ixs)
            .map(|((name, _), ix)| (name.as_str(), *ix))
            .collect();
        for f in &plan.files {
            let dns: Vec<DatanodeIx> = f
                .placement
                .iter()
                .map(|n| {
                    dn_by_name
                        .get(n.as_str())
                        .copied()
                        .ok_or_else(|| SpecError::Unresolved(format!("datanode {n}")))
                })
                .collect::<Result<_, _>>()?;
            if dns.is_empty() {
                return Err(SpecError::Invalid(format!(
                    "file {} has no placement",
                    f.path
                )));
            }
            let placement = if f.replicate {
                Placement::Replicated(dns)
            } else {
                Placement::RoundRobin(dns)
            };
            populate_file(&mut w, &f.path, f.mb << 20, &placement);
        }

        if let Some(ms) = plan.timeline_sample_ms {
            // Host block-store occupancy and hit/dedup rates. The store
            // lives behind `w.ext` (vread_sim cannot depend on
            // vread_host), so each host registers provider closures the
            // sampler polls on every tick.
            for (i, h) in plan.hosts.iter().enumerate() {
                let used = move |w: &World| {
                    w.ext
                        .get::<Cluster>()
                        .map_or(0.0, |cl| cl.hosts[i].cache.used_bytes() as f64)
                };
                let hit = move |w: &World| {
                    w.ext.get::<Cluster>().map_or(0.0, |cl| {
                        let st = cl.hosts[i].cache.stats();
                        let lookups = st.hits + st.misses;
                        if lookups == 0 {
                            0.0
                        } else {
                            st.hits as f64 / lookups as f64
                        }
                    })
                };
                let dedup = move |w: &World| {
                    w.ext.get::<Cluster>().map_or(0.0, |cl| {
                        let st = cl.hosts[i].cache.stats();
                        let lookups = st.hits + st.misses;
                        if lookups == 0 {
                            0.0
                        } else {
                            st.dedup_hits as f64 / lookups as f64
                        }
                    })
                };
                let name = &h.name;
                w.timeline
                    .register_provider(&format!("store.{name}.used_bytes"), Box::new(used));
                w.timeline
                    .register_provider(&format!("store.{name}.hit_rate"), Box::new(hit));
                w.timeline
                    .register_provider(&format!("store.{name}.dedup_rate"), Box::new(dedup));
            }
            w.start_timeline(SimDuration::from_millis(ms));
        }

        Ok(Deployment {
            w,
            path: plan.path,
            host_ix,
            vm_ids,
            clients,
            datanode_vms,
            dn_ixs,
            lookbusy,
            path_deployed: false,
        })
    }

    /// The first client VM (scenario convention: it hosts the namenode).
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] when the plan had no client VM.
    pub fn first_client(&self) -> Result<VmId, SpecError> {
        self.clients
            .first()
            .map(|(_, id)| *id)
            .ok_or_else(|| SpecError::Invalid("no client VM".to_owned()))
    }

    /// Resolves a client VM by name; `None` picks the first client.
    ///
    /// # Errors
    ///
    /// [`SpecError::Unresolved`] for an unknown name,
    /// [`SpecError::Invalid`] when the named VM is not a client role or
    /// no client exists.
    pub fn client_vm(&self, name: Option<&str>) -> Result<VmId, SpecError> {
        match name {
            None => self.first_client(),
            Some(n) => {
                if !self.vm_ids.contains_key(n) {
                    return Err(SpecError::Unresolved(format!("client VM {n}")));
                }
                self.clients
                    .iter()
                    .find(|(name, _)| name == n)
                    .map(|(_, id)| *id)
                    .ok_or_else(|| {
                        SpecError::Invalid(format!("workload client {n} is not a client VM"))
                    })
            }
        }
    }

    /// Deploys the read path and a `DfsClient` in `vm` (see
    /// [`make_read_client`]). Call after population so initial mounts
    /// see the data.
    pub fn make_client(&mut self, vm: VmId) -> ActorId {
        self.path_deployed = true;
        make_read_client(&mut self.w, self.path, vm)
    }

    /// Like [`Deployment::make_client`], but deploys the vRead daemons
    /// at most once across calls — the shape multi-client deployments
    /// need (daemons are per-host singletons; clients are per-VM).
    pub fn add_client_on(&mut self, vm: VmId) -> ActorId {
        if self.path_deployed {
            let p: Box<dyn BlockReadPath> = match self.path {
                ReadPath::Vanilla => Box::new(VanillaPath::new()),
                ReadPath::VreadRdma | ReadPath::VreadTcp => Box::new(VreadPath::new()),
            };
            add_client(&mut self.w, vm, p)
        } else {
            self.make_client(vm)
        }
    }

    /// Spawns the plan's lookbusy generators (each an actor with an
    /// immediate `Start`). Call exactly once, at the point in the wiring
    /// sequence where the background load should enter the actor order.
    pub fn start_background(&mut self) {
        for (thread, busy) in std::mem::take(&mut self.lookbusy) {
            let lb = Lookbusy::new(thread, busy, SimDuration::from_millis(10));
            let a = self.w.add_actor("lookbusy", lb);
            self.w.send_now(a, Start);
        }
    }

    /// Resolves and schedules a fault plan, and widens the trace window
    /// past the restores so throughput-during-fault integrates over the
    /// whole outage. No-op for an empty plan.
    ///
    /// # Errors
    ///
    /// [`SpecError`] when a fault target name doesn't resolve.
    pub fn arm_faults(&mut self, faults: &[FaultSpec]) -> Result<(), SpecError> {
        if faults.is_empty() {
            return Ok(());
        }
        let datanode_set: HashSet<VmId> = self.datanode_vms.iter().map(|(_, v)| *v).collect();
        let targets = FaultTargets {
            hosts: &self.host_ix,
            vms: &self.vm_ids,
            datanodes: &datanode_set,
        };
        let plan = build_fault_actions(faults, &self.w, &targets)?;
        schedule_faults(&mut self.w, plan);
        let (window_start, window_end) = plan_window(faults);
        self.w.ext.insert(FaultTrace {
            window_start,
            window_end,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_hdfs::HdfsMeta;

    fn two_host_plan() -> DeployPlan {
        DeployPlan::new(7)
            .path(ReadPath::VreadRdma)
            .host("h1", 4, 2.0)
            .host("h2", 4, 2.0)
            .vm("client", "h1", VmRole::Client, None)
            .vm("dn1", "h1", VmRole::Datanode, None)
            .vm("dn2", "h2", VmRole::Datanode, None)
            .vm("bg", "h1", VmRole::Lookbusy, Some(0.5))
            .file(FileSpec {
                path: "/d".to_owned(),
                mb: 8,
                placement: vec!["dn1".to_owned(), "dn2".to_owned()],
                replicate: false,
            })
    }

    #[test]
    fn builds_topology_with_typed_handles() {
        let mut d = Deployment::build(two_host_plan()).unwrap();
        assert_eq!(d.clients.len(), 1);
        assert_eq!(d.datanode_vms.len(), 2);
        assert_eq!(d.dn_ixs.len(), 2);
        assert_eq!(d.host_ix.len(), 2);
        assert_eq!(d.vm_ids.len(), 4);
        let meta = d.w.ext.get::<HdfsMeta>().unwrap();
        assert_eq!(meta.file("/d").unwrap().size(), 8 << 20);
        let client_vm = d.first_client().unwrap();
        let _client = d.make_client(client_vm);
        d.start_background();
        assert!(
            d.w.ext.get::<vread_core::VreadRegistry>().is_some(),
            "vread path deployed daemons"
        );
    }

    #[test]
    fn peer_vms_skip_hdfs() {
        let plan = DeployPlan::new(77)
            .host("h", 4, 3.2)
            .vm("a", "h", VmRole::Peer, None)
            .vm("b", "h", VmRole::Peer, None);
        let d = Deployment::build(plan).unwrap();
        assert!(d.dn_ixs.is_empty());
        assert!(d.w.ext.get::<HdfsMeta>().is_none(), "no HDFS deployed");
        assert!(matches!(d.first_client(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn unresolved_names_error() {
        let plan = DeployPlan::new(1)
            .host("h", 4, 2.0)
            .vm("client", "ghost", VmRole::Client, None);
        assert!(matches!(
            Deployment::build(plan),
            Err(SpecError::Unresolved(_))
        ));

        let plan = two_host_plan().file(FileSpec {
            path: "/x".to_owned(),
            mb: 1,
            placement: vec!["ghost-dn".to_owned()],
            replicate: false,
        });
        assert!(matches!(
            Deployment::build(plan),
            Err(SpecError::Unresolved(_))
        ));
    }

    #[test]
    fn datanodes_without_client_error() {
        let plan = DeployPlan::new(1)
            .host("h", 4, 2.0)
            .vm("dn", "h", VmRole::Datanode, None);
        assert!(matches!(
            Deployment::build(plan),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn client_vm_binding_resolves_names_and_roles() {
        let d = Deployment::build(two_host_plan()).unwrap();
        assert_eq!(d.client_vm(None).unwrap(), d.first_client().unwrap());
        assert_eq!(
            d.client_vm(Some("client")).unwrap(),
            d.first_client().unwrap()
        );
        assert!(matches!(
            d.client_vm(Some("ghost")),
            Err(SpecError::Unresolved(_))
        ));
        assert!(matches!(
            d.client_vm(Some("dn1")),
            Err(SpecError::Invalid(_))
        ));
    }
}

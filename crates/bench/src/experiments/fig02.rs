//! Figure 2 — motivation: inter-VM HDFS read delay vs local-filesystem
//! read, with and without caches, for 64 KB / 1 MB / 4 MB requests.

use vread_apps::java_reader::JavaReader;

use crate::report::Table;
use crate::scenarios::{Locality, Testbed, TestbedOpts};

use super::{local_reader_pass, reader_pass};

/// Scaled file size (the paper reads a 1 GB file).
const FILE: u64 = 256 << 20;
const REQUESTS: [(u64, &str); 3] = [(64 << 10, "64KB"), (1 << 20, "1MB"), (4 << 20, "4MB")];

/// Runs Figure 2 (a: without cache, b: with cache).
pub fn run() -> Vec<Table> {
    let mut a = Table::new(
        "fig2a",
        "HDFS (inter-VM) vs local read delay, without cache (ms per request)",
        &["request", "inter-VM", "local"],
    );
    let mut b = Table::new(
        "fig2b",
        "HDFS (inter-VM) vs local read delay, with cache / re-read (ms per request)",
        &["request", "inter-VM", "local"],
    );
    for (req, label) in REQUESTS {
        // inter-VM: vanilla HDFS from the co-located datanode VM
        let mut tb = Testbed::build(TestbedOpts::new());
        tb.populate("/f", FILE, Locality::CoLocated);
        let client = tb.make_client();
        let cold_inter = reader_pass(&mut tb, client, "/f", req, FILE);
        let warm_inter = reader_pass(&mut tb, client, "/f", req, FILE);

        // local: a plain file in the reader's own VM
        let mut tl = Testbed::build(TestbedOpts::new());
        JavaReader::create_local_file(&mut tl.w, tl.client_vm, "/local", FILE);
        let cold_local = local_reader_pass(&mut tl, "/local", req, FILE);
        let warm_local = local_reader_pass(&mut tl, "/local", req, FILE);

        a.row(label, vec![cold_inter, cold_local]);
        b.row(label, vec![warm_inter, warm_local]);
    }
    a.note(format!(
        "file size scaled to {} MB (paper: 1 GB); 2.0 GHz, no background VMs",
        FILE >> 20
    ));
    a.note("paper shape: inter-VM delay is a multiple of the local read at every request size");
    b.note("re-read pass of the same file (page caches warm)");
    vec![a, b]
}

//! Table 3 — Hive select query time and Sqoop export time, vanilla vs
//! vRead, on the hybrid 4-VM setup at 2.0 GHz.

use vread_apps::driver::run_jobs_settled;
use vread_apps::hive::{HiveConfig, HiveQuery};
use vread_apps::sqoop::{deploy_sqoop_with_job, SqoopConfig, SqoopExport};
use vread_sim::prelude::*;

use crate::report::{reduction_pct, Table};
use crate::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};

use super::CAP;

/// Rows scaled from the paper's 30 million; results are projected back.
const ROWS: u64 = 1_500_000;
const PAPER_ROWS: u64 = 30_000_000;

fn hive_secs(path: ReadPath) -> f64 {
    let mut tb = Testbed::build(TestbedOpts::new().four_vms(true).path(path));
    let cfg = HiveConfig::default();
    tb.populate(
        "/hive/test",
        HiveQuery::table_bytes(ROWS, &cfg),
        Locality::Hybrid,
    );
    let client = tb.make_client();
    let setup_cycles = cfg.setup_cycles;
    let job = tb.w.register_job("hive");
    let q = HiveQuery::new(client, tb.client_vm, "/hive/test".into(), ROWS, cfg).with_job(job);
    let a = tb.w.add_actor("hive", q);
    tb.w.send_now(a, Start);
    let ok = run_jobs_settled(&mut tb.w, CAP, SimDuration::from_millis(200));
    assert!(ok, "hive query did not finish");
    let secs = tb.w.metrics.mean("hive_done_at_s") - tb.w.metrics.mean("hive_start_at_s");
    // Project to the paper's 30M rows: scan scales, plan setup does not.
    let setup_secs = setup_cycles as f64 / (tb.opts.ghz * 1e9);
    setup_secs + (secs - setup_secs) * (PAPER_ROWS as f64 / ROWS as f64)
}

fn sqoop_secs(path: ReadPath) -> f64 {
    let mut tb = Testbed::build(TestbedOpts::new().four_vms(true).path(path));
    let cfg = SqoopConfig::default();
    tb.populate(
        "/export/t",
        SqoopExport::table_bytes(ROWS, &cfg),
        Locality::Hybrid,
    );
    let client = tb.make_client();
    let db_host = tb.hosts.1; // MySQL on the other physical machine
    let job = tb.w.register_job("sqoop");
    let export = deploy_sqoop_with_job(
        &mut tb.w,
        tb.client_vm,
        db_host,
        client,
        "/export/t".into(),
        ROWS,
        cfg,
        Some(job),
    );
    tb.w.send_now(export, Start);
    let ok = run_jobs_settled(&mut tb.w, CAP, SimDuration::from_millis(200));
    assert!(ok, "sqoop export did not finish");
    let secs = tb.w.metrics.mean("sqoop_done_at_s") - tb.w.metrics.mean("sqoop_start_at_s");
    secs * (PAPER_ROWS as f64 / ROWS as f64)
}

/// Runs Table 3.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "table3",
        "Hive select & Sqoop export completion time (s, projected to 30M rows)",
        &["job", "vanilla", "vRead", "reduction %"],
    );
    let hv = hive_secs(ReadPath::Vanilla);
    let hr = hive_secs(ReadPath::VreadRdma);
    t.row(
        "Hive select (paper 17.9 -> 14.1s, -21.3%)",
        vec![hv, hr, reduction_pct(hv, hr)],
    );
    let sv = sqoop_secs(ReadPath::Vanilla);
    let sr = sqoop_secs(ReadPath::VreadRdma);
    t.row(
        "Sqoop export (paper 385 -> 343s, -11.3%)",
        vec![sv, sr, reduction_pct(sv, sr)],
    );
    t.note("hybrid 4-VM setup, 2.0 GHz; 1.5M simulated rows projected to the paper's 30M");
    t.note("paper: Sqoop gains less because MySQL insert throughput bounds the export");
    vec![t]
}

//! Figure 13 — HDFS write throughput with and without vRead: the mount
//! refresh (`vRead_update`) triggered by every finalized block must not
//! hurt the write path.

use vread_apps::dfsio::DfsioMode;
use vread_hdfs::HdfsMeta;

use crate::report::Table;
use crate::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};

use super::dfsio_pass;

const FILES: usize = 4;
const FILE_BYTES: u64 = 64 << 20; // 256 MB total, scaled from 5 GB

fn write_mbps(path: ReadPath, locality: Locality) -> f64 {
    let mut tb = Testbed::build(TestbedOpts::new().path(path));
    // Small blocks so several finalizations (and hence mount refreshes)
    // happen per file.
    tb.w.ext.get_mut::<HdfsMeta>().expect("meta").block_bytes = 32 << 20;
    let client = tb.make_client();
    tb.configure_write_locality(locality);
    let files: Vec<String> = (0..FILES).map(|i| format!("/out/{i}")).collect();
    let r = dfsio_pass(&mut tb, client, DfsioMode::Write, &files, FILE_BYTES);
    r.mbps
}

/// Runs Figure 13.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "fig13",
        "TestDFSIO write throughput (MB/s), 2.0 GHz",
        &["scenario", "vanilla", "vRead", "overhead %"],
    );
    for locality in [Locality::CoLocated, Locality::Remote, Locality::Hybrid] {
        let vanilla = write_mbps(ReadPath::Vanilla, locality);
        let vread = write_mbps(ReadPath::VreadRdma, locality);
        t.row(
            locality.label(),
            vec![vanilla, vread, (1.0 - vread / vanilla) * 100.0],
        );
    }
    t.note("256 MB per run (scaled from 5 GB); vRead deployed => every block finalization triggers a daemon mount refresh");
    t.note("paper: the mount-refresh overhead is negligible");
    vec![t]
}

//! Figure 9 — data access delay of virtual HDFS reads, vanilla vs vRead,
//! 2 VMs vs 4 VMs, with and without caches.

use crate::report::Table;
use crate::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};

use super::reader_pass;

const FILE: u64 = 256 << 20; // scaled from 1 GB
const REQUESTS: [(u64, &str); 3] = [(64 << 10, "64KB"), (1 << 20, "1MB"), (4 << 20, "4MB")];

fn delays(path: ReadPath, four_vms: bool, request: u64) -> (f64, f64) {
    let mut tb = Testbed::build(TestbedOpts::new().four_vms(four_vms).path(path));
    tb.populate("/f", FILE, Locality::CoLocated);
    let client = tb.make_client();
    let cold = reader_pass(&mut tb, client, "/f", request, FILE);
    let warm = reader_pass(&mut tb, client, "/f", request, FILE);
    (cold, warm)
}

/// Runs Figure 9 (a: without cache, b: with cache).
pub fn run() -> Vec<Table> {
    let cols = [
        "request",
        "vanilla-2vms",
        "vRead-2vms",
        "vanilla-4vms",
        "vRead-4vms",
    ];
    let mut a = Table::new("fig9a", "HDFS data access delay without cache (ms)", &cols);
    let mut b = Table::new("fig9b", "HDFS data access delay with cache (ms)", &cols);
    for (req, label) in REQUESTS {
        let (va2c, va2w) = delays(ReadPath::Vanilla, false, req);
        let (vr2c, vr2w) = delays(ReadPath::VreadRdma, false, req);
        let (va4c, va4w) = delays(ReadPath::Vanilla, true, req);
        let (vr4c, vr4w) = delays(ReadPath::VreadRdma, true, req);
        a.row(label, vec![va2c, vr2c, va4c, vr4c]);
        b.row(label, vec![va2w, vr2w, va4w, vr4w]);
    }
    for t in [&mut a, &mut b] {
        t.note("co-located read, 2.0 GHz, 256 MB file (scaled from 1 GB)");
        t.note("paper: vRead cuts delay up to 40% (2vms) / 50% (4vms); gap widens at 4vms");
    }
    vec![a, b]
}

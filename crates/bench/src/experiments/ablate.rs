//! Design-choice ablations (DESIGN.md §7):
//!
//! * ring slot size — the paper defaults to 1024 × 4 KB slots;
//! * host-filesystem bypass — §6's "direct read bypassing the file
//!   system in the host" alternative, which forfeits the host page cache;
//! * HVE topology awareness — replica choice with and without the
//!   co-located preference;
//! * content-addressed host store — dedup across co-located replicas vs
//!   the per-VM LRU page cache, sweeping the hash admission cost.

use vread_apps::driver::run_jobs_settled;
use vread_apps::java_reader::{JavaReader, ReaderMode};
use vread_core::daemon::SetBypassHostFs;
use vread_core::VreadRegistry;
use vread_hdfs::populate::{populate_file, Placement};
use vread_hdfs::HdfsMeta;
use vread_host::cluster::HostCacheMode;
use vread_host::costs::Costs;
use vread_sim::prelude::*;

use crate::deploy::{DeployPlan, Deployment};
use crate::report::Table;
use crate::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};
use crate::spans::SpanSummary;
use crate::spec::{FileSpec, HostCacheReport, HostCacheSpec, VmRole};

use super::{reader_pass, CAP};

const FILE: u64 = 128 << 20;
const REQUEST: u64 = 1 << 20;

fn read_mbps(tb: &mut Testbed, client: vread_sim::ActorId, path: &str) -> f64 {
    let _ = reader_pass(tb, client, path, REQUEST, FILE);
    let secs = tb.w.metrics.mean("reader_done_at_s") - tb.w.metrics.mean("reader_start_at_s");
    FILE as f64 / 1e6 / secs
}

/// Ring-slot-size sweep: cold read and re-read throughput.
pub fn run_ring() -> Vec<Table> {
    let mut t = Table::new(
        "ablate-ring",
        "vRead co-located throughput vs ring slot size (MB/s)",
        &["slot", "read", "re-read"],
    );
    for (slot, label) in [
        (1u64 << 10, "1KB"),
        (4 << 10, "4KB (paper)"),
        (16 << 10, "16KB"),
        (64 << 10, "64KB"),
    ] {
        // keep the ring capacity at 4 MB like the paper's default
        let costs = Costs {
            ring_slot_bytes: slot,
            ring_slots: (4 << 20) / slot,
            ..Default::default()
        };
        let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::VreadRdma).costs(costs));
        tb.populate("/f", FILE, Locality::CoLocated);
        let client = tb.make_client();
        let cold = read_mbps(&mut tb, client, "/f");
        let warm = read_mbps(&mut tb, client, "/f");
        t.row(label, vec![cold, warm]);
    }
    t.note("smaller slots cost more per-slot spinlock/bookkeeping work per byte");
    vec![t]
}

/// Host-FS bypass: mounted-image reads (host page cache) vs raw-device
/// reads with manual address translation.
pub fn run_bypass() -> Vec<Table> {
    let mut t = Table::new(
        "ablate-bypass",
        "vRead mounted-image reads vs raw-device bypass (MB/s)",
        &["variant", "read", "re-read"],
    );
    for (bypass, label) in [
        (false, "mounted (paper design)"),
        (true, "bypass host FS (§6)"),
    ] {
        let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::VreadRdma));
        tb.populate("/f", FILE, Locality::CoLocated);
        let client = tb.make_client();
        if bypass {
            let daemons: Vec<_> = {
                let reg = tb.w.ext.get::<VreadRegistry>().expect("vread deployed");
                reg.daemons.values().map(|(a, _)| *a).collect()
            };
            for d in daemons {
                tb.w.send_now(d, SetBypassHostFs(true));
            }
        }
        let cold = read_mbps(&mut tb, client, "/f");
        let warm = read_mbps(&mut tb, client, "/f");
        t.row(label, vec![cold, warm]);
    }
    t.note("the bypass cannot benefit from the host page cache: re-reads stay disk-bound (the paper's §6 argument)");
    vec![t]
}

/// SR-IOV device assignment vs vRead (paper §6 "Interplay with Modern
/// Hardware"): direct NIC assignment helps inter-host traffic but does
/// nothing for the co-located inter-VM path vRead targets.
pub fn run_sriov() -> Vec<Table> {
    let mut t = Table::new(
        "ablate-sriov",
        "remote & co-located vanilla reads with SR-IOV NICs vs vRead (MB/s, re-read)",
        &["variant", "remote", "co-located"],
    );
    let measure = |path: ReadPath, sriov: bool| -> (f64, f64) {
        let mut out = [0.0f64; 2];
        for (i, locality) in [Locality::Remote, Locality::CoLocated].iter().enumerate() {
            let costs = Costs {
                sriov_nics: sriov,
                ..Default::default()
            };
            let mut tb = Testbed::build(TestbedOpts::new().path(path).costs(costs));
            tb.populate("/f", FILE, *locality);
            let client = tb.make_client();
            let _cold = read_mbps(&mut tb, client, "/f");
            out[i] = read_mbps(&mut tb, client, "/f"); // re-read (CPU bound)
        }
        (out[0], out[1])
    };
    for (label, path, sriov) in [
        ("vanilla", ReadPath::Vanilla, false),
        ("vanilla + SR-IOV", ReadPath::Vanilla, true),
        ("vRead", ReadPath::VreadRdma, false),
    ] {
        let (remote, colocated) = measure(path, sriov);
        t.row(label, vec![remote, colocated]);
    }
    t.note("SR-IOV speeds up the remote vanilla path but cannot touch the co-located inter-VM flow (paper §6)");
    vec![t]
}

const CAS_FILE: u64 = 128 << 20;

/// One reader pass over `path` on a raw [`Deployment`]; returns MB/s.
fn deployment_read_mbps(
    d: &mut Deployment,
    client: ActorId,
    client_vm: vread_host::cluster::VmId,
    path: &str,
) -> f64 {
    d.w.metrics.reset();
    let job = d.w.register_job("reader");
    let reader = JavaReader::new(
        client_vm,
        ReaderMode::Dfs {
            client,
            path: path.to_owned(),
        },
        REQUEST,
        CAS_FILE,
    )
    .with_job(job);
    let a = d.w.add_actor("reader", reader);
    d.w.send_now(a, Start);
    let ok = run_jobs_settled(&mut d.w, CAP, SimDuration::from_millis(50));
    assert!(ok, "cas reader pass did not finish within the cap");
    let secs = d.w.metrics.mean("reader_done_at_s") - d.w.metrics.mean("reader_start_at_s");
    CAS_FILE as f64 / 1e6 / secs
}

/// Content-addressed host store vs per-VM LRU, sweeping the hash
/// admission cost (DESIGN.md §15).
///
/// Topology: one host carrying *two* client VMs and *two* datanode VMs,
/// a 2-way replicated file across both datanodes — the multi-tenant
/// shape where two co-located images hold byte-identical blocks. Tenant
/// 1 reads cold through the rotating primaries; then every block's
/// replica list is rotated and tenant 2 (its own vfd table) re-reads
/// through the *sibling* replicas. A content-addressed store serves
/// tenant 2 from already-resident content (zero-copy map, one copy per
/// read); the LRU store keys by image object and goes back to disk.
pub fn run_cas() -> Vec<Table> {
    let mut t = Table::new(
        "ablate-cas",
        "content-addressed host store vs per-VM LRU (2-way co-located replicas; MB/s, copies, capacity)",
        &["store", "cold", "sibling re-read", "copies/read", "capacity_x"],
    );
    let mut run = |label: &str, mode: HostCacheMode, hash: f64| {
        let costs = Costs {
            cas_hash_cyc_per_byte: hash,
            ..Default::default()
        };
        let plan = DeployPlan::new(42)
            .path(ReadPath::VreadRdma)
            .spans(true)
            .costs(costs)
            .host("h1", 8, 2.0)
            .vm("client", "h1", VmRole::Client, None)
            .vm("client2", "h1", VmRole::Client, None)
            .vm("dn1", "h1", VmRole::Datanode, None)
            .vm("dn2", "h1", VmRole::Datanode, None)
            .file(FileSpec {
                path: "/f".to_owned(),
                mb: CAS_FILE >> 20,
                placement: vec!["dn1".to_owned(), "dn2".to_owned()],
                replicate: true,
            })
            .host_cache(HostCacheSpec {
                mode,
                capacity_mb: None,
                chunk_kb: None,
            });
        let mut d = Deployment::build(plan).expect("cas ablation deploys");
        let vm1 = d.client_vm(Some("client")).expect("client VM");
        let vm2 = d.client_vm(Some("client2")).expect("client2 VM");
        let client1 = d.make_client(vm1);
        let client2 = d.add_client_on(vm2);
        let cold = deployment_read_mbps(&mut d, client1, vm1, "/f");
        // Isolate tenant 2 in the flight recorder, then send every
        // block's read to its sibling replica.
        let _ = d.w.spans.drain();
        let meta = d.w.ext.get_mut::<HdfsMeta>().expect("meta");
        for f in meta.files.values_mut() {
            for b in &mut f.blocks {
                b.replicas.rotate_left(1);
            }
        }
        let sibling = deployment_read_mbps(&mut d, client2, vm2, "/f");
        let spans = SpanSummary::collect(&mut d.w);
        let copies = spans.reads().copies_per_read();
        let cl =
            d.w.ext
                .get::<vread_host::cluster::Cluster>()
                .expect("cluster");
        let capacity_x = HostCacheReport::collect(cl).effective_capacity_x;
        t.row(label, vec![cold, sibling, copies, capacity_x]);
    };
    run("lru", HostCacheMode::Lru, 0.45);
    run("cas hash=0", HostCacheMode::Cas, 0.0);
    run("cas hash=0.45 (default)", HostCacheMode::Cas, 0.45);
    run("cas hash=2", HostCacheMode::Cas, 2.0);
    run("cas hash=8", HostCacheMode::Cas, 8.0);
    t.note("sibling re-reads hit content another image admitted: served by page mapping (1 copy/read) at 2x effective capacity; the hash cost taxes only cold admissions");
    vec![t]
}

/// HVE topology awareness on/off with 2-way replicated blocks.
pub fn run_hve() -> Vec<Table> {
    let mut t = Table::new(
        "ablate-hve",
        "replica choice with/without HVE topology awareness (MB/s, vanilla reads)",
        &["variant", "read"],
    );
    for (aware, label) in [(true, "HVE on (prefer co-located)"), (false, "HVE off")] {
        let mut tb = Testbed::build(TestbedOpts::new());
        // every block on both datanodes, primary rotating
        let placement = Placement::Replicated(vec![tb.dn_local, tb.dn_remote]);
        populate_file(&mut tb.w, "/f", FILE, &placement);
        tb.w.ext
            .get_mut::<vread_hdfs::HdfsMeta>()
            .expect("meta")
            .topology_aware = aware;
        let client = tb.make_client();
        let mbps = read_mbps(&mut tb, client, "/f");
        t.row(label, vec![mbps]);
    }
    t.note("without awareness half the reads go to the remote replica");
    vec![t]
}

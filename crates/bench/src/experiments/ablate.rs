//! Design-choice ablations (DESIGN.md §7):
//!
//! * ring slot size — the paper defaults to 1024 × 4 KB slots;
//! * host-filesystem bypass — §6's "direct read bypassing the file
//!   system in the host" alternative, which forfeits the host page cache;
//! * HVE topology awareness — replica choice with and without the
//!   co-located preference.

use vread_core::daemon::SetBypassHostFs;
use vread_core::VreadRegistry;
use vread_hdfs::populate::{populate_file, Placement};
use vread_host::costs::Costs;

use crate::report::Table;
use crate::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};

use super::reader_pass;

const FILE: u64 = 128 << 20;
const REQUEST: u64 = 1 << 20;

fn read_mbps(tb: &mut Testbed, client: vread_sim::ActorId, path: &str) -> f64 {
    let _ = reader_pass(tb, client, path, REQUEST, FILE);
    let secs = tb.w.metrics.mean("reader_done_at_s") - tb.w.metrics.mean("reader_start_at_s");
    FILE as f64 / 1e6 / secs
}

/// Ring-slot-size sweep: cold read and re-read throughput.
pub fn run_ring() -> Vec<Table> {
    let mut t = Table::new(
        "ablate-ring",
        "vRead co-located throughput vs ring slot size (MB/s)",
        &["slot", "read", "re-read"],
    );
    for (slot, label) in [
        (1u64 << 10, "1KB"),
        (4 << 10, "4KB (paper)"),
        (16 << 10, "16KB"),
        (64 << 10, "64KB"),
    ] {
        // keep the ring capacity at 4 MB like the paper's default
        let costs = Costs {
            ring_slot_bytes: slot,
            ring_slots: (4 << 20) / slot,
            ..Default::default()
        };
        let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::VreadRdma).costs(costs));
        tb.populate("/f", FILE, Locality::CoLocated);
        let client = tb.make_client();
        let cold = read_mbps(&mut tb, client, "/f");
        let warm = read_mbps(&mut tb, client, "/f");
        t.row(label, vec![cold, warm]);
    }
    t.note("smaller slots cost more per-slot spinlock/bookkeeping work per byte");
    vec![t]
}

/// Host-FS bypass: mounted-image reads (host page cache) vs raw-device
/// reads with manual address translation.
pub fn run_bypass() -> Vec<Table> {
    let mut t = Table::new(
        "ablate-bypass",
        "vRead mounted-image reads vs raw-device bypass (MB/s)",
        &["variant", "read", "re-read"],
    );
    for (bypass, label) in [
        (false, "mounted (paper design)"),
        (true, "bypass host FS (§6)"),
    ] {
        let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::VreadRdma));
        tb.populate("/f", FILE, Locality::CoLocated);
        let client = tb.make_client();
        if bypass {
            let daemons: Vec<_> = {
                let reg = tb.w.ext.get::<VreadRegistry>().expect("vread deployed");
                reg.daemons.values().map(|(a, _)| *a).collect()
            };
            for d in daemons {
                tb.w.send_now(d, SetBypassHostFs(true));
            }
        }
        let cold = read_mbps(&mut tb, client, "/f");
        let warm = read_mbps(&mut tb, client, "/f");
        t.row(label, vec![cold, warm]);
    }
    t.note("the bypass cannot benefit from the host page cache: re-reads stay disk-bound (the paper's §6 argument)");
    vec![t]
}

/// SR-IOV device assignment vs vRead (paper §6 "Interplay with Modern
/// Hardware"): direct NIC assignment helps inter-host traffic but does
/// nothing for the co-located inter-VM path vRead targets.
pub fn run_sriov() -> Vec<Table> {
    let mut t = Table::new(
        "ablate-sriov",
        "remote & co-located vanilla reads with SR-IOV NICs vs vRead (MB/s, re-read)",
        &["variant", "remote", "co-located"],
    );
    let measure = |path: ReadPath, sriov: bool| -> (f64, f64) {
        let mut out = [0.0f64; 2];
        for (i, locality) in [Locality::Remote, Locality::CoLocated].iter().enumerate() {
            let costs = Costs {
                sriov_nics: sriov,
                ..Default::default()
            };
            let mut tb = Testbed::build(TestbedOpts::new().path(path).costs(costs));
            tb.populate("/f", FILE, *locality);
            let client = tb.make_client();
            let _cold = read_mbps(&mut tb, client, "/f");
            out[i] = read_mbps(&mut tb, client, "/f"); // re-read (CPU bound)
        }
        (out[0], out[1])
    };
    for (label, path, sriov) in [
        ("vanilla", ReadPath::Vanilla, false),
        ("vanilla + SR-IOV", ReadPath::Vanilla, true),
        ("vRead", ReadPath::VreadRdma, false),
    ] {
        let (remote, colocated) = measure(path, sriov);
        t.row(label, vec![remote, colocated]);
    }
    t.note("SR-IOV speeds up the remote vanilla path but cannot touch the co-located inter-VM flow (paper §6)");
    vec![t]
}

/// HVE topology awareness on/off with 2-way replicated blocks.
pub fn run_hve() -> Vec<Table> {
    let mut t = Table::new(
        "ablate-hve",
        "replica choice with/without HVE topology awareness (MB/s, vanilla reads)",
        &["variant", "read"],
    );
    for (aware, label) in [(true, "HVE on (prefer co-located)"), (false, "HVE off")] {
        let mut tb = Testbed::build(TestbedOpts::new());
        // every block on both datanodes, primary rotating
        let placement = Placement::Replicated(vec![tb.dn_local, tb.dn_remote]);
        populate_file(&mut tb.w, "/f", FILE, &placement);
        tb.w.ext
            .get_mut::<vread_hdfs::HdfsMeta>()
            .expect("meta")
            .topology_aware = aware;
        let client = tb.make_client();
        let mbps = read_mbps(&mut tb, client, "/f");
        t.row(label, vec![mbps]);
    }
    t.note("without awareness half the reads go to the remote replica");
    vec![t]
}

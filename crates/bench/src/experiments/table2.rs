//! Table 2 — HBase PerformanceEvaluation: scan / sequential read /
//! random read throughput (MB/s), vanilla vs vRead, on the hybrid 4-VM
//! setup at 2.0 GHz.

use vread_apps::driver::run_jobs_settled;
use vread_apps::hbase::{HbaseClient, HbaseConfig, HbaseOp};
use vread_sim::prelude::*;

use crate::report::{improvement_pct, Table};
use crate::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};

use super::CAP;

/// Rows scaled from the paper's 5 million.
const SCAN_ROWS: u64 = 120_000;
const RANDOM_ROWS: u64 = 15_000;

fn mbps(path: ReadPath, op: HbaseOp) -> f64 {
    let mut tb = Testbed::build(TestbedOpts::new().four_vms(true).path(path));
    let cfg = HbaseConfig::default();
    let table_rows = SCAN_ROWS;
    let rows = match op {
        HbaseOp::RandomRead => RANDOM_ROWS,
        _ => SCAN_ROWS,
    };
    tb.populate(
        "/hbase/t1",
        HbaseClient::table_bytes(table_rows, &cfg),
        Locality::Hybrid,
    );
    let client = tb.make_client();
    let job = tb.w.register_job("hbase");
    let hb = HbaseClient::new(
        client,
        tb.client_vm,
        op,
        "/hbase/t1".into(),
        rows,
        cfg,
        tb.opts.seed,
    )
    .with_job(job);
    let a = tb.w.add_actor("hbase", hb);
    tb.w.send_now(a, Start);
    let ok = run_jobs_settled(&mut tb.w, CAP, SimDuration::from_millis(200));
    assert!(ok, "hbase run did not finish");
    let secs = tb.w.metrics.mean("hbase_done_at_s") - tb.w.metrics.mean("hbase_start_at_s");
    tb.w.metrics.counter("hbase_bytes") / 1e6 / secs.max(1e-9)
}

/// Runs Table 2.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "table2",
        "HBase PerformanceEvaluation throughput (MB/s)",
        &["operation", "vanilla", "vRead", "improvement %"],
    );
    for (op, label, paper) in [
        (HbaseOp::Scan, "Scan", 27.3),
        (HbaseOp::SequentialRead, "SequentialRead", 23.6),
        (HbaseOp::RandomRead, "RandomRead", 17.3),
    ] {
        let vanilla = mbps(ReadPath::Vanilla, op);
        let vread = mbps(ReadPath::VreadRdma, op);
        let imp = improvement_pct(vanilla, vread);
        t.row(
            format!("{label} (paper +{paper}%)"),
            vec![vanilla, vread, imp],
        );
    }
    t.note("hybrid 4-VM setup, 2.0 GHz; rows scaled from the paper's 5 million");
    t.note("paper: vanilla 6.26 / 3.01 / 2.48 MB/s; improvements 27.3 / 23.6 / 17.3 %");
    vec![t]
}

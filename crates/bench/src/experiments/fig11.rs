//! Figures 11 & 12 — TestDFSIO read/re-read throughput and CPU running
//! time: {co-located, remote, hybrid} × {1.6, 2.0, 3.2 GHz} × {2, 4 VMs}
//! × {vanilla, vRead}. Both figures come from the same runs, so they are
//! computed once and cached per process.

use std::sync::OnceLock;

use vread_apps::dfsio::DfsioMode;

use crate::report::Table;
use crate::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};

use super::{dfsio_pass, DfsioResult};

/// 5 files (map tasks); total scaled from the paper's 5 GB.
const FILES: usize = 5;
const FILE_BYTES: u64 = 96 << 20; // 480 MB total
/// CPU-time scale factor back to the paper's 5 GB.
const CPU_SCALE: f64 = 5.0 * 1024.0 / 480.0;

const FREQS: [f64; 3] = [1.6, 2.0, 3.2];
const LOCALITIES: [Locality; 3] = [Locality::CoLocated, Locality::Remote, Locality::Hybrid];

#[derive(Debug, Clone, Copy)]
struct Cell {
    read: DfsioResult,
    reread: DfsioResult,
}

/// One full matrix of results, keyed `[locality][freq][four_vms][path]`.
type Matrix = Vec<((Locality, f64, bool, ReadPath), Cell)>;

fn compute() -> Matrix {
    let mut out = Vec::new();
    for locality in LOCALITIES {
        for ghz in FREQS {
            for four_vms in [false, true] {
                for path in [ReadPath::Vanilla, ReadPath::VreadRdma] {
                    let mut tb =
                        Testbed::build(TestbedOpts::new().ghz(ghz).four_vms(four_vms).path(path));
                    let files: Vec<String> = (0..FILES).map(|i| format!("/dfsio/{i}")).collect();
                    for f in &files {
                        tb.populate(f, FILE_BYTES, locality);
                    }
                    let client = tb.make_client();
                    let read = dfsio_pass(&mut tb, client, DfsioMode::Read, &files, FILE_BYTES);
                    let reread = dfsio_pass(&mut tb, client, DfsioMode::Read, &files, FILE_BYTES);
                    out.push(((locality, ghz, four_vms, path), Cell { read, reread }));
                }
            }
        }
    }
    out
}

fn matrix() -> &'static Matrix {
    static M: OnceLock<Matrix> = OnceLock::new();
    M.get_or_init(compute)
}

fn cell(m: &Matrix, locality: Locality, ghz: f64, four: bool, path: ReadPath) -> Cell {
    m.iter()
        .find(|((l, g, f, p), _)| *l == locality && *g == ghz && *f == four && *p == path)
        .map(|(_, c)| *c)
        .expect("matrix cell missing")
}

fn panels(value: impl Fn(&Cell, bool) -> f64, id_prefix: &str, unit: &str) -> Vec<Table> {
    let m = matrix();
    let mut tables = Vec::new();
    for (panel, locality, reread) in [
        ("a", Locality::CoLocated, false),
        ("b", Locality::Remote, false),
        ("c", Locality::Hybrid, false),
        ("d", Locality::CoLocated, true),
        ("e", Locality::Remote, true),
        ("f", Locality::Hybrid, true),
    ] {
        let kind = if reread { "re-read" } else { "read" };
        let mut t = Table::new(
            &format!("{id_prefix}{panel}"),
            &format!("TestDFSIO {unit}, {} {kind}", locality.label()),
            &[
                "freq",
                "vanilla-2vms",
                "vRead-2vms",
                "vanilla-4vms",
                "vRead-4vms",
            ],
        );
        for ghz in FREQS {
            t.row(
                format!("{ghz:.1}GHz"),
                vec![
                    value(&cell(m, locality, ghz, false, ReadPath::Vanilla), reread),
                    value(&cell(m, locality, ghz, false, ReadPath::VreadRdma), reread),
                    value(&cell(m, locality, ghz, true, ReadPath::Vanilla), reread),
                    value(&cell(m, locality, ghz, true, ReadPath::VreadRdma), reread),
                ],
            );
        }
        tables.push(t);
    }
    tables
}

/// Figure 11 — DFSIO throughput (MB/s), six panels.
pub fn run_fig11() -> Vec<Table> {
    let mut ts = panels(
        |c, reread| if reread { c.reread.mbps } else { c.read.mbps },
        "fig11",
        "throughput (MB/s)",
    );
    if let Some(first) = ts.first_mut() {
        first.note("480 MB per run (scaled from 5 GB), 1 MB buffer");
        first.note("paper: ~20% gain at 3.2 GHz growing to ~41% at 1.6 GHz (2vms), up to 65% at 4vms; up to 150% on re-read");
    }
    ts
}

/// Figure 12 — DFSIO CPU running time (ms, scaled to the paper's 5 GB).
pub fn run_fig12() -> Vec<Table> {
    let mut ts = panels(
        |c, reread| {
            let v = if reread {
                c.reread.cpu_ms
            } else {
                c.read.cpu_ms
            };
            v * CPU_SCALE
        },
        "fig12",
        "CPU running time (ms, scaled to 5 GB)",
    );
    if let Some(first) = ts.first_mut() {
        first.note("client-VM vCPU busy time over the pass, scaled to the paper's 5 GB data set");
        first.note("paper: vRead saves significant CPU cycles in every configuration");
    }
    ts
}

//! Figures 6–8 — CPU-utilization breakdowns for a 1 GB HDFS read
//! (request size 1 MB): co-located (Fig 6), remote over RDMA (Fig 7),
//! remote over the daemon TCP fallback (Fig 8). Utilization is reported
//! as percent of one core over the transfer, stacked by the paper's
//! legend categories.

use std::collections::BTreeMap;

use vread_sim::cpu::CpuCategory;
use vread_sim::prelude::*;

use crate::report::Table;
use crate::scenarios::{Locality, ReadPath, Testbed, TestbedOpts};

use super::reader_pass;

const FILE: u64 = 256 << 20; // scaled from 1 GB
const REQUEST: u64 = 1 << 20;

/// Per-bucket utilization (% of one core) for a set of threads.
fn breakdown(
    tb: &Testbed,
    before: &vread_sim::cpu::CpuAccounting,
    threads: &[ThreadId],
    elapsed_ns: f64,
) -> BTreeMap<&'static str, f64> {
    let ghz = tb.opts.ghz;
    let diff = tb.w.acct.diff(before);
    let mut out: BTreeMap<&'static str, f64> = BTreeMap::new();
    for &t in threads {
        for cat in CpuCategory::ALL {
            let cycles = diff.cycles(t.index(), cat);
            if cycles > 0.0 && cat != CpuCategory::Lookbusy {
                let pct = cycles / ghz / elapsed_ns * 100.0;
                *out.entry(cat.figure_bucket()).or_insert(0.0) += pct;
            }
        }
    }
    out
}

/// Runs one CPU-breakdown measurement; returns (client-side map,
/// datanode-side map).
fn measure(
    path: ReadPath,
    locality: Locality,
) -> (BTreeMap<&'static str, f64>, BTreeMap<&'static str, f64>) {
    let mut tb = Testbed::build(TestbedOpts::new().path(path));
    tb.populate("/f", FILE, locality);
    let client = tb.make_client();
    let (cvcpu, cvhost, dvcpu, dvhost) = tb.key_threads();
    let serving_dn_threads = match locality {
        Locality::CoLocated | Locality::Hybrid => (dvcpu, dvhost),
        Locality::Remote => {
            let cl = tb.w.ext.get::<vread_host::Cluster>().expect("cluster");
            (cl.vm(tb.dn_vms.1).vcpu, cl.vm(tb.dn_vms.1).vhost)
        }
    };
    let daemons = tb.daemon_threads();

    let before = tb.w.acct.snapshot();
    let _delay = reader_pass(&mut tb, client, "/f", REQUEST, FILE);
    let elapsed_ns =
        (tb.w.metrics.mean("reader_done_at_s") - tb.w.metrics.mean("reader_start_at_s")) * 1e9;

    let (client_threads, dn_threads): (Vec<ThreadId>, Vec<ThreadId>) = match path {
        ReadPath::Vanilla => (
            vec![cvcpu, cvhost],
            vec![serving_dn_threads.0, serving_dn_threads.1],
        ),
        ReadPath::VreadRdma | ReadPath::VreadTcp => {
            let (d1, d2) = daemons.expect("vread deployed");
            match locality {
                // Local reads: the host1 daemon IS the datanode side
                // (Fig 6b compares "vRead-daemon" vs "vanilla-datanode").
                Locality::CoLocated | Locality::Hybrid => (vec![cvcpu, cvhost], vec![d1]),
                // Remote: the local daemon's work shows on the client
                // side, the remote daemon is the datanode side.
                Locality::Remote => (vec![cvcpu, cvhost, d1], vec![d2]),
            }
        }
    };
    (
        breakdown(&tb, &before, &client_threads, elapsed_ns),
        breakdown(&tb, &before, &dn_threads, elapsed_ns),
    )
}

fn build_table(id: &str, title: &str, locality: Locality, vread_kind: ReadPath) -> Table {
    let (vr_client, vr_dn) = measure(vread_kind, locality);
    let (va_client, va_dn) = measure(ReadPath::Vanilla, locality);
    let mut t = Table::new(
        id,
        title,
        &[
            "category",
            "vRead-client",
            "vanilla-client",
            "vRead-dnside",
            "vanilla-dnside",
        ],
    );
    let mut cats: Vec<&'static str> = vr_client
        .keys()
        .chain(va_client.keys())
        .chain(vr_dn.keys())
        .chain(va_dn.keys())
        .copied()
        .collect();
    cats.sort_unstable();
    cats.dedup();
    let mut totals = [0.0f64; 4];
    for c in cats {
        let vals = [
            vr_client.get(c).copied().unwrap_or(0.0),
            va_client.get(c).copied().unwrap_or(0.0),
            vr_dn.get(c).copied().unwrap_or(0.0),
            va_dn.get(c).copied().unwrap_or(0.0),
        ];
        for (t, v) in totals.iter_mut().zip(vals) {
            *t += v;
        }
        t.row(c, vals.to_vec());
    }
    t.row("TOTAL", totals.to_vec());
    t.note("percent of one core during the transfer; 2.0 GHz, 1 MB requests, 256 MB file");
    t
}

/// Figure 6 — co-located read.
pub fn run_fig6() -> Vec<Table> {
    let mut t = build_table(
        "fig6",
        "CPU utilization, co-located 1 GB read (scaled)",
        Locality::CoLocated,
        ReadPath::VreadRdma,
    );
    t.note("paper: vRead saves ~40% of client-side and ~65% of datanode-side CPU");
    vec![t]
}

/// Figure 7 — remote read, RDMA daemons.
pub fn run_fig7() -> Vec<Table> {
    let mut t = build_table(
        "fig7",
        "CPU utilization, remote read with RDMA",
        Locality::Remote,
        ReadPath::VreadRdma,
    );
    t.note(
        "paper: ~45% client-side / >50% datanode-side CPU savings; rdma cost far below vhost-net",
    );
    vec![t]
}

/// Figure 8 — remote read, user-space TCP daemons.
pub fn run_fig8() -> Vec<Table> {
    let mut t = build_table(
        "fig8",
        "CPU utilization, remote read with the TCP fallback",
        Locality::Remote,
        ReadPath::VreadTcp,
    );
    t.note("paper: total still slightly below vanilla, but vRead-net costs more than vhost-net");
    vec![t]
}

//! One module per table/figure of the paper's evaluation (§5), plus the
//! design ablations called out in DESIGN.md §7.
//!
//! Every experiment returns [`Table`]s; the `repro` binary prints them
//! and writes JSON next to EXPERIMENTS.md. The harness scales data sizes
//! down from the paper's (5 GB → hundreds of MB, 30 M rows → 1–2 M);
//! every scaled quantity is reported as a *rate* (MB/s, transactions/s)
//! or projected back, with a note in the table.

pub mod ablate;
pub mod fig02;
pub mod fig03;
pub mod fig06;
pub mod fig09;
pub mod fig11;
pub mod fig13;
pub mod table2;
pub mod table3;

use vread_apps::dfsio::{DfsioConfig, DfsioMode, TestDfsio};
use vread_apps::driver::run_jobs_settled;
use vread_apps::java_reader::{JavaReader, ReaderMode};
use vread_sim::prelude::*;

use crate::report::Table;
use crate::scenarios::Testbed;

/// An experiment entry point: renders one or more [`Table`]s.
pub type Runner = fn() -> Vec<Table>;

/// All experiments, in paper order: `(id, runner)`.
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("fig2", fig02::run as Runner),
        ("fig3", fig03::run),
        ("fig6", fig06::run_fig6),
        ("fig7", fig06::run_fig7),
        ("fig8", fig06::run_fig8),
        ("fig9", fig09::run),
        ("fig11", fig11::run_fig11),
        ("fig12", fig11::run_fig12),
        ("fig13", fig13::run),
        ("table2", table2::run),
        ("table3", table3::run),
        ("ablate-ring", ablate::run_ring),
        ("ablate-bypass", ablate::run_bypass),
        ("ablate-hve", ablate::run_hve),
        ("ablate-sriov", ablate::run_sriov),
        ("ablate-cas", ablate::run_cas),
    ]
}

/// Simulated-time cap for any single measurement (generous; experiments
/// report a failure note instead of hanging if it is ever hit).
pub(crate) const CAP: SimDuration = SimDuration::from_secs(3_000);

/// Runs a [`JavaReader`] pass over an HDFS file; returns the mean
/// per-request delay in ms. Resets metrics before the pass.
pub(crate) fn reader_pass(
    tb: &mut Testbed,
    client: ActorId,
    path: &str,
    request: u64,
    total: u64,
) -> f64 {
    tb.w.metrics.reset();
    let job = tb.w.register_job("reader");
    let reader = JavaReader::new(
        tb.client_vm,
        ReaderMode::Dfs {
            client,
            path: path.to_owned(),
        },
        request,
        total,
    )
    .with_job(job);
    let a = tb.w.add_actor("reader", reader);
    tb.w.send_now(a, Start);
    let ok = run_jobs_settled(&mut tb.w, CAP, SimDuration::from_millis(50));
    assert!(ok, "reader pass did not finish within the cap");
    tb.w.metrics.mean("reader_delay_ms")
}

/// Runs a local-filesystem [`JavaReader`] pass; returns mean delay (ms).
pub(crate) fn local_reader_pass(tb: &mut Testbed, path: &str, request: u64, total: u64) -> f64 {
    tb.w.metrics.reset();
    let job = tb.w.register_job("reader");
    let reader = JavaReader::new(
        tb.client_vm,
        ReaderMode::Local {
            path: path.to_owned(),
        },
        request,
        total,
    )
    .with_job(job);
    let a = tb.w.add_actor("reader", reader);
    tb.w.send_now(a, Start);
    let ok = run_jobs_settled(&mut tb.w, CAP, SimDuration::from_millis(50));
    assert!(ok, "local reader pass did not finish within the cap");
    tb.w.metrics.mean("reader_delay_ms")
}

/// Result of one TestDFSIO pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DfsioResult {
    /// Application-level throughput in MB/s.
    pub mbps: f64,
    /// Client-VM vCPU busy time during the pass, in ms.
    pub cpu_ms: f64,
}

/// Runs one TestDFSIO pass over `files` of `file_bytes` each.
pub(crate) fn dfsio_pass(
    tb: &mut Testbed,
    client: ActorId,
    mode: DfsioMode,
    files: &[String],
    file_bytes: u64,
) -> DfsioResult {
    tb.w.metrics.reset();
    let (client_vcpu, ..) = tb.key_threads();
    let busy0 = tb.w.acct.busy_ns(client_vcpu.index());
    let job = tb.w.register_job("dfsio");
    let d = TestDfsio::new(
        client,
        tb.client_vm,
        mode,
        files.to_vec(),
        file_bytes,
        DfsioConfig::default(),
    )
    .with_job(job);
    let a = tb.w.add_actor("dfsio", d);
    tb.w.send_now(a, Start);
    let ok = run_jobs_settled(&mut tb.w, CAP, SimDuration::from_millis(100));
    assert!(ok, "dfsio pass did not finish within the cap");
    let secs = tb.w.metrics.mean("dfsio_done_at_s") - tb.w.metrics.mean("dfsio_start_at_s");
    let bytes = tb.w.metrics.counter("dfsio_bytes");
    let busy1 = tb.w.acct.busy_ns(client_vcpu.index());
    DfsioResult {
        mbps: bytes / 1e6 / secs.max(1e-9),
        cpu_ms: (busy1 - busy0) as f64 / 1e6,
    }
}

//! Figure 3 — netperf TCP_RR transaction rate between two VMs, with and
//! without two 85%-lookbusy background VMs on the same quad-core host.

use vread_apps::lookbusy::{llc_pressure, Lookbusy};
use vread_apps::netperf::deploy_netperf;
use vread_host::cluster::Cluster;
use vread_host::costs::Costs;
use vread_sim::prelude::*;

use crate::report::{reduction_pct, Table};

const REQUESTS: [(u64, &str); 3] = [(32 << 10, "32KB"), (64 << 10, "64KB"), (128 << 10, "128KB")];
const WARMUP: SimDuration = SimDuration::from_millis(100);
const MEASURE: SimDuration = SimDuration::from_secs(1);

fn rate(request: u64, background: usize) -> f64 {
    let mut w = World::new(77);
    let mut cl = Cluster::new(Costs::default());
    let h = cl.add_host(&mut w, "h", 4, 3.2);
    let vma = cl.add_vm(&mut w, h, "netperf-client");
    let vmb = cl.add_vm(&mut w, h, "netperf-server");
    let mut bg = Vec::new();
    for i in 0..background {
        let vm = cl.add_vm(&mut w, h, &format!("bg{i}"));
        bg.push(cl.vm(vm).vcpu);
    }
    let host_id = cl.hosts[h.0].host;
    w.ext.insert(cl);
    for t in bg {
        Lookbusy::spawn_default(&mut w, t);
    }
    if background > 0 {
        w.set_cache_pressure(host_id, llc_pressure(background));
    }
    let client = deploy_netperf(&mut w, vma, vmb, request, SimTime::ZERO + WARMUP);
    w.send_now(client, Start);
    w.run_until(SimTime::ZERO + WARMUP + MEASURE);
    w.metrics.counter("netperf_txns") / MEASURE.as_secs_f64()
}

/// Runs Figure 3.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "fig3",
        "netperf TCP_RR transaction rate (per second)",
        &["request", "2vms", "4vms", "drop %"],
    );
    for (req, label) in REQUESTS {
        let quiet = rate(req, 0);
        let busy = rate(req, 2);
        t.row(label, vec![quiet, busy, reduction_pct(quiet, busy)]);
    }
    t.note("paper: ~20% rate drop with two 85% lookbusy VMs; rate decreases with request size");
    vec![t]
}

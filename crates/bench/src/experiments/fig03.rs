//! Figure 3 — netperf TCP_RR transaction rate between two VMs, with and
//! without two 85%-lookbusy background VMs on the same quad-core host.

use vread_apps::netperf::deploy_netperf;
use vread_sim::prelude::*;

use crate::deploy::{DeployPlan, Deployment};
use crate::report::{reduction_pct, Table};
use crate::spec::VmRole;

const REQUESTS: [(u64, &str); 3] = [(32 << 10, "32KB"), (64 << 10, "64KB"), (128 << 10, "128KB")];
const WARMUP: SimDuration = SimDuration::from_millis(100);
const MEASURE: SimDuration = SimDuration::from_secs(1);

fn rate(request: u64, background: usize) -> f64 {
    let mut plan = DeployPlan::new(77)
        .host("h", 4, 3.2)
        .vm("netperf-client", "h", VmRole::Peer, None)
        .vm("netperf-server", "h", VmRole::Peer, None);
    for i in 0..background {
        plan = plan.vm(&format!("bg{i}"), "h", VmRole::Lookbusy, None);
    }
    let mut d = Deployment::build(plan).expect("netperf plan is well-formed");
    d.start_background();
    let (vma, vmb) = (d.vm_ids["netperf-client"], d.vm_ids["netperf-server"]);
    let client = deploy_netperf(&mut d.w, vma, vmb, request, SimTime::ZERO + WARMUP);
    d.w.send_now(client, Start);
    d.w.run_until(SimTime::ZERO + WARMUP + MEASURE);
    d.w.metrics.counter("netperf_txns") / MEASURE.as_secs_f64()
}

/// Runs Figure 3.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "fig3",
        "netperf TCP_RR transaction rate (per second)",
        &["request", "2vms", "4vms", "drop %"],
    );
    for (req, label) in REQUESTS {
        let quiet = rate(req, 0);
        let busy = rate(req, 2);
        t.row(label, vec![quiet, busy, reduction_pct(quiet, busy)]);
    }
    t.note("paper: ~20% rate drop with two 85% lookbusy VMs; rate decreases with request size");
    vec![t]
}

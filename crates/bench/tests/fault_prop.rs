//! Property tests of the fault-injection subsystem: any random
//! `FaultPlan` — whatever it crashes, stalls, or slows — must leave a
//! scenario that (a) terminates, (b) conserves every payload byte, and
//! (c) is bit-for-bit deterministic when replayed.

use proptest::prelude::*;
use vread_bench::{random_plan, ReadPath, ScenarioSpec, WorkloadSpec};

const FILE_MB: u64 = 64;

/// Builds the canonical two-host faulted scenario for one plan seed.
fn faulted_spec(plan_seed: u64, path: ReadPath) -> ScenarioSpec {
    let plan = random_plan(plan_seed, &["h1", "h2"], &["dn1", "dn2"], 4);
    let mut b = ScenarioSpec::builder()
        .seed(7)
        .path(path)
        .host("h1", 4, 2.0)
        .host("h2", 4, 2.0)
        .client("client", "h1")
        .datanode("dn1", "h1")
        .datanode("dn2", "h2")
        .replicated_file("/d", FILE_MB, &["dn1", "dn2"])
        .workload(WorkloadSpec::Reader {
            path: "/d".into(),
            request_kb: 1024,
        });
    for f in plan {
        b = b.fault(f.at_ms, f.kind);
    }
    b.build().expect("random plans always build a valid spec")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every random fault plan terminates with all bytes delivered and a
    /// deterministic fingerprint (same plan → byte-identical report).
    #[test]
    fn random_fault_plans_terminate_conserve_bytes_and_replay(
        plan_seed in 0u64..1_000_000,
        path_ix in 0usize..3,
    ) {
        let path = ReadPath::ALL[path_ix];
        let spec = faulted_spec(plan_seed, path);
        let a = spec.run().expect("faulted scenario terminates");
        let b = spec.run().expect("replay terminates");
        prop_assert_eq!(a.bytes, FILE_MB << 20, "no byte lost to faults");
        prop_assert_eq!(b.bytes, FILE_MB << 20);
        prop_assert_eq!(a.to_json(), b.to_json(), "replay is bit-identical");
    }
}

//! Engine-thread invariance end to end: the report a scenario renders —
//! every byte of it — must not depend on `--engine-threads`. These are
//! the harness-level counterparts of the protocol-level properties in
//! `vread-sim` (`par_props`): a real multi-workload scenario, a
//! fault-matrix cell, and a partitioned multi-host fan-out.

use std::path::Path;
use vread_bench::spec::WorkloadSpec;
use vread_bench::{run_fanout_bench, FaultKind, ReadPath, ScenarioSpec};

fn scenario_json(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("scenarios")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The shipped multi-workload example (two clients, two files, a
/// lookbusy antagonist) drives the real worker-pool path at 4 threads
/// and must render byte-identically to the sequential run.
#[test]
fn multi_workload_scenario_is_engine_thread_invariant() {
    let spec = ScenarioSpec::from_json(&scenario_json("multi-workload-example.json"))
        .expect("example scenario parses");
    let seq = spec.run_with_engine(1).expect("threads=1 run");
    let par = spec.run_with_engine(4).expect("threads=4 run");
    assert_eq!(seq.to_json(), par.to_json(), "report bytes diverged");
    assert!(seq.bytes > 0, "scenario moved data");
}

/// One fault-matrix cell — replicated file, reader workload, a datanode
/// crash mid-read — rendered at 1 and 4 engine threads.
#[test]
fn fault_matrix_cell_is_engine_thread_invariant() {
    let spec = ScenarioSpec::builder()
        .path(ReadPath::VreadRdma)
        .spans(true)
        .host("h1", 4, 2.0)
        .host("h2", 4, 2.0)
        .client("client", "h1")
        .datanode("dn1", "h1")
        .datanode("dn2", "h2")
        .replicated_file("/d", 128, &["dn1", "dn2"])
        .workload(WorkloadSpec::Reader {
            path: "/d".to_owned(),
            request_kb: 1024,
        })
        .fault(
            40,
            FaultKind::DaemonCrash {
                host: "h1".to_owned(),
            },
        )
        .build()
        .expect("cell spec builds");
    let seq = spec.run_with_engine(1).expect("threads=1 run");
    let par = spec.run_with_engine(4).expect("threads=4 run");
    assert_eq!(seq.to_json(), par.to_json(), "report bytes diverged");
    let f = seq.faults.as_ref().expect("fault report present");
    assert!(f.events > 0, "the injected fault fired");
}

/// The multi-host fan-out splits into per-host shards; the rendered
/// per-component reports must be identical at any worker count.
#[test]
fn partitioned_fanout_is_engine_thread_invariant() {
    let (seq, seq_events) = run_fanout_bench(4, 1);
    let (par, par_events) = run_fanout_bench(4, 4);
    assert_eq!(seq, par, "component report bytes diverged");
    assert_eq!(seq_events, par_events);
    assert_eq!(seq.len(), 4, "one component per host");
}

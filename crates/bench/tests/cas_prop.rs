//! Store-mode equivalence and dedup properties of the host block store.
//!
//! The content-addressed store (DESIGN.md §15) must be an accounting
//! change only: whatever the workload mix, swapping the per-VM LRU page
//! cache for the CAS store may change *cycles* (hash admissions, mapped
//! serves) but never *payload* — every byte still arrives, spans still
//! conserve engine cycles, and replays stay bit-identical. And in the
//! multi-tenant shape the paper motivates (two co-located VMs whose
//! images hold the same replicated blocks), the CAS store must do
//! strictly better than the LRU: dedup hits where the LRU re-reads disk.

use proptest::prelude::*;
use vread_apps::driver::run_jobs_settled;
use vread_apps::java_reader::{JavaReader, ReaderMode};
use vread_bench::spec::{FileSpec, VmRole};
use vread_bench::{
    DeployPlan, Deployment, HostCacheReport, HostCacheSpec, ReadPath, ScenarioSpec, WorkloadSpec,
};
use vread_hdfs::HdfsMeta;
use vread_host::cluster::{Cluster, HostCacheMode, VmId};
use vread_sim::prelude::*;

const FILE: u64 = 32 << 20;
const REQ: u64 = 1 << 20;

/// One full sequential read of `path` by `client` on a raw deployment.
fn read_pass(d: &mut Deployment, client: ActorId, vm: VmId, path: &str) {
    let job = d.w.register_job("reader");
    let rdr = JavaReader::new(
        vm,
        ReaderMode::Dfs {
            client,
            path: path.to_owned(),
        },
        REQ,
        FILE,
    )
    .with_job(job);
    let a = d.w.add_actor("reader", rdr);
    d.w.send_now(a, Start);
    assert!(
        run_jobs_settled(
            &mut d.w,
            SimDuration::from_secs(3_000),
            SimDuration::from_millis(50),
        ),
        "reader pass finishes",
    );
}

/// Two co-located tenants read the same 2-way-replicated file, the
/// second through the sibling replicas (its own vfd table, rotated
/// primaries); returns the host store counters.
fn two_tenant_store_report(mode: HostCacheMode) -> HostCacheReport {
    let plan = DeployPlan::new(42)
        .path(ReadPath::VreadRdma)
        .host("h1", 8, 2.0)
        .vm("t1", "h1", VmRole::Client, None)
        .vm("t2", "h1", VmRole::Client, None)
        .vm("dn1", "h1", VmRole::Datanode, None)
        .vm("dn2", "h1", VmRole::Datanode, None)
        .file(FileSpec {
            path: "/f".to_owned(),
            mb: FILE >> 20,
            placement: vec!["dn1".to_owned(), "dn2".to_owned()],
            replicate: true,
        })
        .host_cache(HostCacheSpec {
            mode,
            capacity_mb: None,
            chunk_kb: None,
        });
    let mut d = Deployment::build(plan).expect("two-tenant plan deploys");
    let vm1 = d.client_vm(Some("t1")).unwrap();
    let vm2 = d.client_vm(Some("t2")).unwrap();
    let c1 = d.make_client(vm1);
    let c2 = d.add_client_on(vm2);
    read_pass(&mut d, c1, vm1, "/f");
    // Send tenant 2's reads to each block's sibling replica — the other
    // image holding the same bytes.
    let meta = d.w.ext.get_mut::<HdfsMeta>().expect("meta");
    for f in meta.files.values_mut() {
        for b in &mut f.blocks {
            b.replicas.rotate_left(1);
        }
    }
    read_pass(&mut d, c2, vm2, "/f");
    let cl = d.w.ext.get::<Cluster>().expect("cluster");
    HostCacheReport::collect(cl)
}

/// Fraction of lookups served without touching disk.
fn hit_ratio(r: &HostCacheReport) -> f64 {
    let total = r.hits + r.misses;
    r.hits as f64 / total.max(1) as f64
}

#[test]
fn cas_dedup_hit_ratio_beats_lru_for_shared_replicas() {
    let lru = two_tenant_store_report(HostCacheMode::Lru);
    let cas = two_tenant_store_report(HostCacheMode::Cas);
    assert_eq!(lru.dedup_hits, 0, "the LRU store cannot dedup: {lru:?}");
    assert!(
        cas.dedup_hits > 0,
        "sibling reads hit shared content: {cas:?}"
    );
    assert!(
        hit_ratio(&cas) >= hit_ratio(&lru),
        "cas {cas:?} vs lru {lru:?}",
    );
    assert!(
        cas.effective_capacity_x > 1.5,
        "2-way replicas nearly halve residency: {cas:?}",
    );
}

/// The two-tenant scenario as a spec, parameterized over store mode.
fn tenant_spec(seed: u64, mb: u64, mode: HostCacheMode) -> ScenarioSpec {
    ScenarioSpec::builder()
        .seed(seed)
        .path(ReadPath::VreadRdma)
        .spans(true)
        .host("h1", 8, 2.0)
        .client("t1", "h1")
        .client("t2", "h1")
        .datanode("dn1", "h1")
        .datanode("dn2", "h1")
        .replicated_file("/d", mb, &["dn1", "dn2"])
        .workload_on(
            "t1",
            0,
            WorkloadSpec::Reader {
                path: "/d".to_owned(),
                request_kb: 1024,
            },
        )
        .workload_on(
            "t2",
            50,
            WorkloadSpec::Reader {
                path: "/d".to_owned(),
                request_kb: 1024,
            },
        )
        .host_cache(HostCacheSpec {
            mode,
            capacity_mb: None,
            chunk_kb: None,
        })
        .build()
        .expect("tenant spec is statically valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the seed and file size, the CAS and LRU runs deliver the
    /// same payload, both conserve engine cycles in the span ledger, the
    /// report block appears only in cas mode, and the cas run replays
    /// bit-identically.
    #[test]
    fn cas_and_lru_agree_on_payload_and_conserve_cycles(
        seed in 0u64..1_000,
        mb in 4u64..16,
    ) {
        let lru = tenant_spec(seed, mb, HostCacheMode::Lru).run().expect("lru run");
        let cas = tenant_spec(seed, mb, HostCacheMode::Cas).run().expect("cas run");
        prop_assert_eq!(lru.bytes, cas.bytes, "payload is store-independent");
        prop_assert_eq!(cas.bytes, 2 * (mb << 20), "both tenants read everything");
        for (name, r) in [("lru", &lru), ("cas", &cas)] {
            let sp = r.spans.as_ref().expect("spans enabled");
            let lhs = sp.report.total_cycles() + sp.report.unattributed_cycles;
            prop_assert!(
                (lhs - sp.acct_cycles).abs() <= sp.acct_cycles.abs() * 1e-6 + 1.0,
                "{}: span {} + unattributed {} != engine {}",
                name,
                sp.report.total_cycles(),
                sp.report.unattributed_cycles,
                sp.acct_cycles,
            );
        }
        prop_assert!(lru.host_cache.is_none(), "lru reports stay unchanged");
        prop_assert!(cas.host_cache.is_some(), "cas runs report their store");
        let again = tenant_spec(seed, mb, HostCacheMode::Cas).run().expect("replay");
        prop_assert_eq!(again.to_json(), cas.to_json(), "cas replay is bit-identical");
    }
}

//! Determinism of the telemetry timeline across execution knobs.
//!
//! The sampler runs as ordinary engine events and the latency windows
//! are log-bucket histograms whose merge is associative, so a scenario's
//! `timeline` report block must be byte-identical whether the world is
//! driven sequentially or through the conservative parallel engine —
//! and scenarios without a `timeline` block must serialize exactly as
//! they did before the timeline existed.

use vread_bench::spec::WorkloadSpec;
use vread_bench::{ReadPath, ScenarioBuilder};

/// A multi-workload scenario with overlapping staggered readers: enough
/// concurrency that per-window histograms see interleaved completions
/// from several jobs.
fn staggered(timeline: bool) -> ScenarioBuilder {
    let mut b = vread_bench::ScenarioSpec::builder()
        .seed(7)
        .path(ReadPath::VreadRdma)
        .host("h1", 4, 2.0)
        .host("h2", 4, 2.0)
        .datanode("dn1", "h1")
        .datanode("dn2", "h2")
        .file("/a", 16, &["dn1"])
        .file("/b", 8, &["dn2"]);
    for (i, path) in ["/a", "/b", "/a"].iter().enumerate() {
        let client = format!("c{i}");
        let host = if i % 2 == 0 { "h1" } else { "h2" };
        b = b.client(&client, host).workload_on(
            &client,
            i as u64 * 25,
            WorkloadSpec::Reader {
                path: (*path).to_owned(),
                request_kb: 1024,
            },
        );
    }
    if timeline {
        b = b.timeline_sample_ms(10);
    }
    b
}

#[test]
fn timeline_report_is_engine_thread_invariant() {
    let seq = staggered(true)
        .build()
        .expect("spec builds")
        .run_with_engine(1)
        .expect("sequential run");
    let par = staggered(true)
        .build()
        .expect("spec builds")
        .run_with_engine(4)
        .expect("parallel run");
    let (a, b) = (seq.to_json(), par.to_json());
    assert!(
        a.contains("\"timeline\""),
        "timeline block present when enabled"
    );
    assert!(
        a.contains("\"windows\"") && a.contains("\"series\""),
        "timeline block carries windows and series"
    );
    assert_eq!(
        a, b,
        "timeline-bearing report must be byte-identical at 1 and 4 engine threads"
    );
    let tl = seq.timeline.expect("summary collected");
    assert!(tl.reads > 0, "readers were observed");
    assert!(tl.ticks > 0, "sampler ticked");
    assert!(!tl.series.is_empty(), "providers were sampled");
}

#[test]
fn timeline_report_and_spliced_trace_reparse() {
    use vread_bench::json::Json;
    let report = staggered(true)
        .spans(true)
        .build()
        .expect("spec builds")
        .run_with_engine(1)
        .expect("run");
    let parsed = Json::parse(&report.to_json()).expect("report JSON re-parses");
    let tl = parsed.get("timeline").expect("timeline block");
    assert_eq!(tl.get("sample_ms").and_then(Json::as_u64), Some(10));
    assert!(!tl.get("windows").unwrap().as_array().unwrap().is_empty());
    assert!(!tl.get("series").unwrap().as_array().unwrap().is_empty());

    let sp = report.spans.as_ref().expect("spans enabled");
    let trace = report
        .timeline
        .as_ref()
        .expect("summary collected")
        .splice_into_chrome_trace(&sp.report.chrome_trace_json());
    let parsed = Json::parse(&trace).expect("spliced Perfetto trace is valid JSON");
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    let counters = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
        .count();
    assert!(counters > 0, "counter tracks were spliced in");
}

#[test]
fn timeline_off_report_has_no_block() {
    let report = staggered(false)
        .build()
        .expect("spec builds")
        .run_with_engine(4)
        .expect("run");
    assert!(report.timeline.is_none());
    assert!(
        !report.to_json().contains("\"timeline\""),
        "timeline-off reports serialize exactly as before the feature"
    );
}

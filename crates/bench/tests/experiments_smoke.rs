//! Smoke tests of the experiment harness: the paper-shape invariants the
//! figures rest on must hold on every build, not just when `repro` runs.

use vread_bench::experiments;

fn table(id: &str) -> vread_bench::Table {
    let registry = experiments::registry();
    let (_, runner) = registry
        .iter()
        .find(|(i, _)| *i == id)
        .unwrap_or_else(|| panic!("experiment {id} not registered"));
    runner()
        .into_iter()
        .find(|t| t.id.starts_with(id))
        .expect("runner returned its table")
}

#[test]
fn fig3_shape_lookbusy_drop() {
    let t = table("fig3");
    for row in &t.rows {
        let (quiet, busy, drop) = (row.values[0], row.values[1], row.values[2]);
        assert!(
            busy < quiet,
            "{}: contention must cost throughput",
            row.label
        );
        assert!(
            (5.0..40.0).contains(&drop),
            "{}: drop {drop}% outside the paper's ballpark (~20%)",
            row.label
        );
    }
    // rate decreases with request size
    let rates: Vec<f64> = t.rows.iter().map(|r| r.values[0]).collect();
    assert!(rates[0] > rates[1] && rates[1] > rates[2]);
}

#[test]
fn fig13_shape_write_overhead_negligible() {
    let t = table("fig13");
    for row in &t.rows {
        let overhead = row.values[2];
        assert!(
            overhead.abs() < 2.0,
            "{}: mount-refresh overhead {overhead}% must be negligible",
            row.label
        );
    }
}

#[test]
fn ablate_bypass_shape_loses_page_cache() {
    let t = table("ablate-bypass");
    let mounted = &t.rows[0];
    let bypass = &t.rows[1];
    // cold reads comparable
    assert!((mounted.values[0] / bypass.values[0] - 1.0).abs() < 0.2);
    // mounted re-reads fly; bypass re-reads stay disk-bound
    assert!(
        mounted.values[1] > bypass.values[1] * 2.0,
        "mounted re-read {} vs bypass {}",
        mounted.values[1],
        bypass.values[1]
    );
    assert!(
        (bypass.values[1] / bypass.values[0] - 1.0).abs() < 0.1,
        "bypass re-read must look like a cold read"
    );
}

#[test]
fn registry_ids_unique_and_runnable_listing() {
    let reg = experiments::registry();
    let mut ids: Vec<&str> = reg.iter().map(|(i, _)| *i).collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate experiment ids");
    // every paper table/figure is covered
    for wanted in [
        "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig11", "fig12", "fig13", "table2",
        "table3",
    ] {
        assert!(ids.contains(&wanted), "missing experiment {wanted}");
    }
}

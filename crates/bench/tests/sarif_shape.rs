//! SARIF 2.1.0 shape validation for the linter's `--format sarif`.
//!
//! vread-lint renders SARIF by hand (the crate is dependency-free by
//! design), so nothing inside it ever re-parses the output. This test
//! closes the loop from the bench side: parse the log with the bench
//! crate's JSON parser and check the 2.1.0 skeleton that code-scanning
//! consumers (GitHub, SARIF viewers) rely on.

use vread_bench::json::Json;
use vread_lint::LintReport;

/// A report with at least one real violation, produced by the actual
/// rule engine rather than hand-built structs.
fn report() -> LintReport {
    let src = "fn f(acct: &mut CpuAccounting) {\n    acct.add(1);\n}\n";
    let violations = vread_lint::lint_source("crates/sim/src/daemon.rs", src);
    assert!(
        violations.iter().any(|v| v.rule == "charge-confine"),
        "fixture must violate charge-confine: {violations:?}"
    );
    LintReport {
        violations,
        files_scanned: 1,
        ..Default::default()
    }
}

fn parse(report: &LintReport) -> Json {
    let log = vread_lint::sarif::render_sarif(report);
    Json::parse(&log).expect("linter SARIF must be valid JSON")
}

#[test]
fn sarif_has_the_2_1_0_skeleton() {
    let j = parse(&report());
    assert_eq!(j.get("version").and_then(Json::as_str), Some("2.1.0"));
    let schema = j.get("$schema").and_then(Json::as_str).expect("$schema");
    assert!(schema.contains("sarif-2.1.0"), "{schema}");
    let runs = j.get("runs").and_then(Json::as_array).expect("runs[]");
    assert_eq!(runs.len(), 1, "one run per invocation");
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("runs[0].tool.driver");
    assert_eq!(
        driver.get("name").and_then(Json::as_str),
        Some("vread-lint")
    );
    assert!(driver
        .get("informationUri")
        .and_then(Json::as_str)
        .is_some());
    let rules = driver.get("rules").and_then(Json::as_array).expect("rules");
    assert!(!rules.is_empty(), "driver must declare its rule catalog");
}

#[test]
fn sarif_results_reference_declared_rules() {
    let j = parse(&report());
    let run = &j.get("runs").and_then(Json::as_array).unwrap()[0];
    let rules = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(Json::as_array)
        .unwrap();
    let ids: Vec<&str> = rules
        .iter()
        .map(|r| r.get("id").and_then(Json::as_str).expect("rule.id"))
        .collect();
    let results = run
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert!(!results.is_empty());
    for r in results {
        let rule_id = r.get("ruleId").and_then(Json::as_str).expect("ruleId");
        let ix = r
            .get("ruleIndex")
            .and_then(Json::as_u64)
            .expect("ruleIndex");
        assert_eq!(
            ids.get(usize::try_from(ix).unwrap()).copied(),
            Some(rule_id),
            "ruleIndex must point at the declared rule"
        );
        assert_eq!(r.get("level").and_then(Json::as_str), Some("error"));
        let text = r
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .expect("message.text");
        assert!(!text.is_empty());
    }
}

#[test]
fn sarif_locations_carry_relative_uri_and_region() {
    let rep = report();
    let j = parse(&rep);
    let results = j.get("runs").and_then(Json::as_array).unwrap()[0]
        .get("results")
        .and_then(Json::as_array)
        .unwrap();
    let v = &rep.violations[0];
    let loc = results[0]
        .get("locations")
        .and_then(Json::as_array)
        .expect("locations")[0]
        .get("physicalLocation")
        .expect("physicalLocation");
    let uri = loc
        .get("artifactLocation")
        .and_then(|a| a.get("uri"))
        .and_then(Json::as_str)
        .expect("artifactLocation.uri");
    assert_eq!(uri, v.file, "uri is the root-relative path");
    assert!(!uri.starts_with('/'), "SARIF uris must stay relative");
    let region = loc.get("region").expect("region");
    assert_eq!(
        region.get("startLine").and_then(Json::as_u64),
        Some(u64::from(v.line))
    );
    assert_eq!(
        region.get("startColumn").and_then(Json::as_u64),
        Some(u64::from(v.col))
    );
}

//! Cross-run determinism: the same seed must reproduce the same world
//! bit-for-bit — event count, clock, and every recorded metric — and a
//! whole experiment must render byte-identical tables on every run.
//! This is what makes the parallel `repro --jobs N` runner safe: each
//! experiment builds its own `World`, so the job count cannot change
//! any output.

use vread_apps::driver::run_jobs_settled;
use vread_apps::java_reader::{JavaReader, ReaderMode};
use vread_bench::experiments;
use vread_bench::{Locality, Testbed, TestbedOpts};
use vread_sim::prelude::*;

/// Full observable state of one finished fig2-style reader pass.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events_processed: u64,
    now_ns: u64,
    metrics: Vec<(String, String)>,
}

fn fig2_pass(seed: u64) -> Fingerprint {
    let mut tb = Testbed::build(TestbedOpts::new().seed(seed));
    let file = 32 << 20;
    tb.populate("/f", file, Locality::CoLocated);
    let client = tb.make_client();
    let job = tb.w.register_job("reader");
    let reader = JavaReader::new(
        tb.client_vm,
        ReaderMode::Dfs {
            client,
            path: "/f".to_owned(),
        },
        1 << 20,
        file,
    )
    .with_job(job);
    let a = tb.w.add_actor("reader", reader);
    tb.w.send_now(a, Start);
    let ok = run_jobs_settled(
        &mut tb.w,
        SimDuration::from_secs(300),
        SimDuration::from_millis(50),
    );
    assert!(ok, "reader pass did not finish");

    let mut metrics: Vec<(String, String)> = Vec::new();
    for k in tb.w.metrics.counter_keys() {
        // Debug-format f64: captures every bit, not a rounded view.
        metrics.push((k.to_owned(), format!("{:?}", tb.w.metrics.counter(k))));
    }
    let sample_keys: Vec<String> = tb.w.metrics.sample_keys().map(str::to_owned).collect();
    for k in &sample_keys {
        let s = tb.w.metrics.samples(k).expect("non-empty sample key");
        metrics.push((k.clone(), format!("{:?}", s.values())));
    }
    Fingerprint {
        events_processed: tb.w.events_processed(),
        now_ns: tb.w.now().as_nanos(),
        metrics,
    }
}

#[test]
fn fig2_scenario_same_seed_same_world() {
    let a = fig2_pass(42);
    let b = fig2_pass(42);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.now_ns, b.now_ns);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn fig2_experiment_tables_are_byte_identical_across_runs() {
    let registry = experiments::registry();
    let (_, runner) = registry
        .iter()
        .find(|(id, _)| *id == "fig2")
        .expect("fig2 registered");
    let a: Vec<String> = runner().iter().map(|t| t.to_json()).collect();
    let b: Vec<String> = runner().iter().map(|t| t.to_json()).collect();
    assert_eq!(a, b);
}

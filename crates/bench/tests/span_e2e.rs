//! End-to-end copy-count invariants from the span flight recorder.
//!
//! The paper's §2 accounting argument, checked per read path against
//! the span ledger's byte-exact `copy_bytes / payload_bytes`:
//!
//! | path                       | copies/read |
//! |----------------------------|-------------|
//! | vanilla, dn page-cache miss| 6           |
//! | vanilla, dn page-cache hit | 5           |
//! | vRead, local ring          | 2           |
//! | vRead, remote over RDMA    | 3           |
//! | vRead, remote over TCP     | 4           |
//!
//! Plus the cycle-conservation property: everything the engine charges
//! while the recorder is on lands either on a span or in the
//! unattributed pool — no lost or double-counted work.

use proptest::prelude::*;
use vread_apps::driver::run_jobs_settled;
use vread_apps::java_reader::{JavaReader, ReaderMode};
use vread_bench::spec::WorkloadSpec;
use vread_bench::{Locality, ReadPath, ScenarioSpec, SpanSummary, Testbed, TestbedOpts};
use vread_sim::prelude::*;

const FILE: u64 = 8 << 20;
const REQ: u64 = 1 << 20;

/// One full sequential read of `/f` on the testbed.
fn reader_pass(tb: &mut Testbed, client: ActorId) {
    tb.w.metrics.reset();
    let job = tb.w.register_job("reader");
    let rdr = JavaReader::new(
        tb.client_vm,
        ReaderMode::Dfs {
            client,
            path: "/f".to_owned(),
        },
        REQ,
        FILE,
    )
    .with_job(job);
    let a = tb.w.add_actor("reader", rdr);
    tb.w.send_now(a, Start);
    assert!(
        run_jobs_settled(
            &mut tb.w,
            SimDuration::from_secs(3_000),
            SimDuration::from_millis(50),
        ),
        "reader pass finishes",
    );
}

/// Asserts every ledger row of a drained summary sits at `expect`
/// copies per read. The ledger is byte-exact, so on paths that move
/// request headers through copying sockets (vanilla's block requests)
/// the ratio sits a hair above the integer — under 0.1% of payload —
/// which the tolerance admits while still distinguishing 5 from 6.
fn assert_copies(summary: &SpanSummary, expect: f64, what: &str) {
    let ledger = summary.report.read_ledger();
    assert!(!ledger.is_empty(), "{what}: ledger has reads");
    for r in &ledger {
        let over = r.copies_per_read - expect;
        assert!(
            (0.0..0.01).contains(&over),
            "{what}: read {:?} shows {} copies/read, expected {expect}",
            r.id,
            r.copies_per_read,
        );
    }
}

#[test]
fn vanilla_cache_miss_then_hit_copies() {
    let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::Vanilla));
    tb.populate("/f", FILE, Locality::CoLocated);
    let client = tb.make_client();
    tb.w.spans.enable();

    // Cold pass: the datanode page cache is empty, so every chunk pays
    // the virtio DMA copy on top of the fused read — 6 copies.
    reader_pass(&mut tb, client);
    let cold = SpanSummary::collect(&mut tb.w);
    assert_copies(&cold, 6.0, "vanilla cold");

    // Warm pass: page-cache hits drop the DMA copy — the paper's
    // canonical 5 copies (Fig 1).
    reader_pass(&mut tb, client);
    let warm = SpanSummary::collect(&mut tb.w);
    assert_copies(&warm, 5.0, "vanilla warm");
}

#[test]
fn vread_local_ring_is_two_copies() {
    let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::VreadRdma));
    tb.populate("/f", FILE, Locality::CoLocated);
    let client = tb.make_client();
    tb.w.spans.enable();

    // Local vRead reads move each byte exactly twice (daemon → shared
    // ring → guest), cold or warm.
    reader_pass(&mut tb, client);
    assert_copies(&SpanSummary::collect(&mut tb.w), 2.0, "vread local cold");
    reader_pass(&mut tb, client);
    assert_copies(&SpanSummary::collect(&mut tb.w), 2.0, "vread local warm");
}

#[test]
fn vread_remote_rdma_is_three_copies() {
    let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::VreadRdma));
    tb.populate("/f", FILE, Locality::Remote);
    let client = tb.make_client();
    tb.w.spans.enable();

    // Remote over RDMA: MR staging copy on the serving host + the two
    // ring copies on the client host.
    reader_pass(&mut tb, client);
    assert_copies(&SpanSummary::collect(&mut tb.w), 3.0, "vread remote rdma");
}

#[test]
fn vread_remote_tcp_is_four_copies() {
    let mut tb = Testbed::build(TestbedOpts::new().path(ReadPath::VreadTcp));
    tb.populate("/f", FILE, Locality::Remote);
    let client = tb.make_client();
    tb.w.spans.enable();

    // Remote over the user-space TCP fallback: sender + receiver copies
    // plus the two ring copies.
    reader_pass(&mut tb, client);
    assert_copies(&SpanSummary::collect(&mut tb.w), 4.0, "vread remote tcp");
}

/// The canonical two-host spec with spans on, parameterized over what a
/// property case varies.
fn spans_spec(seed: u64, path: ReadPath, mb: u64, remote: bool) -> ScenarioSpec {
    let placement: &[&str] = if remote { &["dn2"] } else { &["dn1"] };
    ScenarioSpec::builder()
        .seed(seed)
        .path(path)
        .spans(true)
        .host("h1", 4, 2.0)
        .host("h2", 4, 2.0)
        .client("client", "h1")
        .datanode("dn1", "h1")
        .datanode("dn2", "h2")
        .file("/d", mb, placement)
        .workload(WorkloadSpec::Reader {
            path: "/d".to_owned(),
            request_kb: 1024,
        })
        .build()
        .expect("spec is statically valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(9))]

    /// Cycles attributed to spans plus the unattributed pool equal the
    /// engine's total charged cycles, whatever the seed, path, data
    /// locality, or file size.
    #[test]
    fn span_cycles_conserve_engine_accounting(
        seed in 0u64..1_000,
        path_ix in 0usize..3,
        mb in 2u64..12,
        remote_ix in 0usize..2,
    ) {
        let spec = spans_spec(seed, ReadPath::ALL[path_ix], mb, remote_ix == 1);
        let report = spec.run().expect("scenario terminates");
        let sp = report.spans.expect("spans enabled");
        let lhs = sp.report.total_cycles() + sp.report.unattributed_cycles;
        prop_assert!(
            (lhs - sp.acct_cycles).abs() <= sp.acct_cycles.abs() * 1e-6 + 1.0,
            "span {} + unattributed {} != engine {}",
            sp.report.total_cycles(),
            sp.report.unattributed_cycles,
            sp.acct_cycles,
        );
        // and the ledger accounted every payload byte exactly once
        let agg = sp.reads();
        prop_assert_eq!(agg.payload_bytes, mb << 20);
    }
}

//! The workspace must be lint-clean — this is the load-bearing test
//! behind the determinism guarantees in DESIGN.md §11: any new
//! wall-clock read, unordered iteration over sim-visible hash state,
//! entropy source, narrowing accounting cast, or float reduction fails
//! `cargo test` here before it can break replay-based tests.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

#[test]
fn workspace_is_lint_clean() {
    let report = vread_lint::run_workspace(workspace_root()).expect("walk workspace");
    assert!(report.files_scanned > 50, "walk found the workspace");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render_human()
    );
}

#[test]
fn removing_an_allow_fails_the_run() {
    // The in-tree allow annotations are load-bearing: stripping any
    // one of them re-surfaces its violation. Spot-check the wall-clock
    // allows in the repro binary.
    let path = workspace_root().join("crates/bench/src/bin/repro.rs");
    let src = std::fs::read_to_string(&path).expect("read repro.rs");
    assert!(
        src.contains("vread-lint: allow(wall-clock"),
        "repro.rs carries its wall-clock allows"
    );
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("vread-lint: allow(wall-clock"))
        .map(|l| format!("{l}\n"))
        .collect();
    let violations = vread_lint::lint_source("crates/bench/src/bin/repro.rs", &stripped);
    assert!(
        violations.iter().any(|v| v.rule == "wall-clock"),
        "stripping the allows must re-surface the wall-clock violations, got {violations:?}"
    );
}

#[test]
fn workspace_holds_the_committed_baseline() {
    // The suppression ratchet, run the way CI runs it: current per-rule
    // violation/allow counts may not exceed the committed
    // lint-baseline.json. A shrink is fine (re-anchor the baseline when
    // convenient); growth must be a conscious `--update-baseline`.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is committed at the workspace root");
    let baseline = vread_lint::baseline::Baseline::parse(&text).expect("baseline parses");
    let report = vread_lint::run_workspace(root).expect("walk workspace");
    let regressions = baseline.regressions(&report.rule_counts());
    assert!(
        regressions.is_empty(),
        "suppression ratchet regressed: {regressions:?}\n\
         fix the new site, or consciously run `repro lint --update-baseline`"
    );
}

#[test]
fn json_report_is_byte_stable() {
    let a = vread_lint::run_workspace(workspace_root()).expect("walk");
    let b = vread_lint::run_workspace(workspace_root()).expect("walk");
    assert_eq!(a.render_json(), b.render_json());
}

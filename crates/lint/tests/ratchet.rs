//! End-to-end suppression-ratchet round trip, driving the built binary.
//!
//! The scenario the ratchet exists for: a run is *clean* (every
//! violation carries an allow), but the number of allows has crept up.
//! `vread-lint` must fail that run with its distinguished exit code
//! until someone consciously runs `--update-baseline`.
//!
//! Fixture workspaces live under `CARGO_TARGET_TMPDIR`; the violating
//! code is embedded here as string literals, which the linter's lexer
//! treats as opaque — this test file itself stays lint-clean.

use std::path::{Path, PathBuf};
use std::process::Command;

const ONE_ALLOW: &str = "pub fn stamp() {\n    \
    let _t = std::time::Instant::now(); \
    // vread-lint: allow(wall-clock, \"ratchet fixture\")\n}\n";

const TWO_ALLOWS: &str = "pub fn stamp() {\n    \
    let _t = std::time::Instant::now(); \
    // vread-lint: allow(wall-clock, \"ratchet fixture\")\n}\n\
    pub fn stamp2() {\n    \
    let _t = std::time::Instant::now(); \
    // vread-lint: allow(wall-clock, \"second site\")\n}\n";

const NAKED_VIOLATION: &str = "pub fn stamp() {\n    let _t = std::time::Instant::now();\n}\n";

const STALE_ALLOW: &str = "// vread-lint: allow(wall-clock, \"nothing here fires\")\n\
    pub fn quiet() -> u64 {\n    7\n}\n";

/// Creates a one-file workspace under the target tmpdir.
fn setup(name: &str, src: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("src")).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(root.join("src/lib.rs"), src).unwrap();
    root
}

/// Runs the built `vread-lint` on `root`; returns (exit code, stderr).
fn lint(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_vread-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run vread-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn ratchet_round_trip() {
    let root = setup("ratchet-round-trip", ONE_ALLOW);

    // No baseline committed yet: clean run, nothing to ratchet against.
    let (code, err) = lint(&root, &[]);
    assert_eq!(code, 0, "clean + no baseline must pass: {err}");

    // Record the baseline (wall-clock: 1 allow).
    let (code, err) = lint(&root, &["--update-baseline"]);
    assert_eq!(code, 0, "{err}");
    assert!(root.join("lint-baseline.json").exists());

    // Regress: a second allowed violation. Still *clean*, but the allow
    // count grew — distinguished exit code 4, with a ratchet message.
    std::fs::write(root.join("src/lib.rs"), TWO_ALLOWS).unwrap();
    let (code, err) = lint(&root, &[]);
    assert_eq!(code, 4, "allow growth must fail the ratchet: {err}");
    assert!(err.contains("ratchet"), "{err}");
    assert!(err.contains("wall-clock"), "{err}");

    // Conscious update: ratchet re-anchors, run passes again.
    let (code, err) = lint(&root, &["--update-baseline"]);
    assert_eq!(code, 0, "{err}");
    let (code, err) = lint(&root, &[]);
    assert_eq!(code, 0, "post-update run must pass: {err}");

    // Shrink back to one allow: strictly better, the ratchet lets it by.
    std::fs::write(root.join("src/lib.rs"), ONE_ALLOW).unwrap();
    let (code, err) = lint(&root, &[]);
    assert_eq!(code, 0, "shrinking below baseline must pass: {err}");
}

#[test]
fn naked_violation_exits_1_even_with_baseline_headroom() {
    let root = setup("ratchet-violation", ONE_ALLOW);
    let (code, _) = lint(&root, &["--update-baseline"]);
    assert_eq!(code, 0);
    // An unsuppressed violation is exit 1 regardless of the baseline:
    // the ratchet governs suppressions, not violations.
    std::fs::write(root.join("src/lib.rs"), NAKED_VIOLATION).unwrap();
    let (code, err) = lint(&root, &[]);
    assert_eq!(code, 1, "{err}");
}

#[test]
fn stale_allow_exits_3() {
    let root = setup("ratchet-stale", STALE_ALLOW);
    let (code, err) = lint(&root, &[]);
    assert_eq!(code, 3, "annotation-only problems are exit 3: {err}");
}

#[test]
fn corrupt_baseline_is_an_io_error() {
    let root = setup("ratchet-corrupt", ONE_ALLOW);
    std::fs::write(root.join("lint-baseline.json"), "not json").unwrap();
    let (code, err) = lint(&root, &[]);
    assert_eq!(code, 2, "{err}");
}

// Fixture: ambient entropy sources must fire.
use std::collections::hash_map::RandomState; //~ ambient-entropy

fn hasher() -> RandomState { //~ ambient-entropy
    RandomState::new() //~ ambient-entropy
}

// Fixture: wildcard arms on the workspace's sealed enums.
fn stage_cost(s: &Stage) -> u64 {
    match s {
        Stage::Cpu { cycles, .. } => *cycles,
        Stage::Copy { cycles, .. } => *cycles,
        _ => 0, //~ sealed-match
    }
}

fn is_crash(k: &FaultKind) -> bool {
    match k {
        FaultKind::DaemonCrash { .. } | FaultKind::VmCrash { .. } => true,
        _ => false, //~ sealed-match
    }
}

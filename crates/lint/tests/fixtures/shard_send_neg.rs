// Fixture: the sanctioned cross-shard API and lookalikes.
fn hustle(ctx: &mut Ctx, dst: usize, ev: Event) {
    // The seq-stamping wrapper is the one true send path.
    ctx.post_remote(dst, ev);
}

fn lookalikes(mailbox: &mut Mailbox) {
    // `outbox` as a plain binding (no field access) and an unrelated
    // `deliver` method are not the raw machinery.
    let outbox = mailbox.len();
    mailbox.deliver(outbox);
}

// Fixture: the sim's own "thread" vocabulary and benign std::thread
// tails must not fire — only constructs that actually create OS threads
// or share state across them.
use std::thread;

struct Stage {
    thread: ThreadId,
    cycles: u64,
}

fn ok() -> usize {
    // Capacity probing reads a count; it does not spawn anything.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t = ThreadId::from_raw(0);
    let s = Stage { thread: t, cycles: 7 };
    let _ = s.thread;
    cpus
}

fn wake_thread(thread: ThreadId) -> ThreadId {
    // Parameter named `thread` is sim vocabulary, not std::thread.
    thread
}

fn cmp_order(a: u32, b: u32) -> std::cmp::Ordering {
    // `Ordering` alone is ambiguous with std::cmp and stays unflagged.
    a.cmp(&b)
}

// Fixture: exhaustive sealed matches and benign wildcards.
fn admit(a: Admission) -> &'static str {
    // Fully enumerated: adding a variant breaks this at lint time.
    match a {
        Admission::Hit => "hit",
        Admission::HitDedup => "dedup",
        Admission::Miss => "miss",
    }
}

enum Local {
    A,
    B,
}

fn local(l: Local) -> u8 {
    // Wildcard over a crate-local enum: not sealed, not our business.
    match l {
        Local::A => 0,
        _ => 1,
    }
}

fn make(n: u64) -> FaultKind {
    // Constructs FaultKind in arm *bodies*; the wildcard is over `n`.
    match n {
        0 => FaultKind::LinkFlap { at: 1 },
        _ => FaultKind::DiskSlow { factor: 2 },
    }
}

// Fixture: widening casts are out of the rule's scope even inside
// crates/sim; `as u32` in a string must not fire anywhere.
fn widen(x: u32) -> u64 {
    x as u64
}

fn index(x: u32) -> usize {
    x as usize
}

fn in_string() -> &'static str {
    "cycles as u32"
}

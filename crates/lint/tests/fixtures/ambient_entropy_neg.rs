//! Docs may talk about RandomState and thread_rng freely.

fn deterministic() -> u64 {
    // RandomState, thread_rng, from_entropy in a comment must not fire.
    let s = "RandomState thread_rng from_entropy OsRng";
    s.len() as u64
}

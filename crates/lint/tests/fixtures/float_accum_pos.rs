// Fixture: silent f64 reduction idioms must fire.
fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / 2.0 //~ float-accum
}

fn total(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, b| a + b) //~ float-accum
}

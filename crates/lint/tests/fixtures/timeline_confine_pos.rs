// Fixture: raw telemetry sinks outside the timeline module.
fn leak_points(w: &mut World, now: SimTime) {
    w.timeline.push("sched.h1.runq", now, 3.0); //~ timeline-confine
    Timeline::push(&mut w.timeline, "link.0.mbps", now, 1.0); //~ timeline-confine
}

impl ReadLedger {
    fn settle(&mut self, ns: u64) {
        self.hist.record_raw(ns); //~ timeline-confine
        Hist::record_raw(&mut self.hist, ns); //~ timeline-confine
    }
}

// Fixture: every marked line must produce exactly the marked rule.
use std::sync::mpsc; //~ threading
use std::sync::Mutex; //~ threading
use std::sync::atomic::{AtomicU64, Ordering}; //~ threading

fn fan_out() -> u32 {
    let lock = Mutex::new(0u32); //~ threading
    let count = AtomicU64::new(0); //~ threading
    let guard = RwLock::new(Vec::<u8>::new()); //~ threading
    let h = std::thread::spawn(move || 1u32); //~ threading
    std::thread::scope(|s| { //~ threading
        s.spawn(|| ()); //~ threading
    });
    let b = thread::Builder::new(); //~ threading
    let _ = (lock, count, guard, b);
    h.join().unwrap_or(0)
}

fn sanctioned() {
    // A correctly annotated site is suppressed, not reported.
    let (tx, rx) = mpsc::channel::<u32>(); // vread-lint: allow(threading, "fixture: sanctioned pool")
    let _ = (tx, rx);
}

// Fixture: linted under a virtual crates/sim/src path, so the
// checked-cast rule is in scope.
fn truncate(cycles: u64) -> u32 {
    cycles as u32 //~ checked-cast
}

fn allowed(cycles: u64) -> u32 {
    cycles as u32 // vread-lint: allow(checked-cast, "fixture: truncation is intended")
}

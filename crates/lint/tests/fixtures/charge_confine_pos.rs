// Fixture: raw cycle charges outside the sched.rs charge wrapper.
fn leak_cycles(acct: &mut CpuAccounting, tid: ThreadId) {
    acct.add(tid, CpuCategory::Other, 100); //~ charge-confine
    CpuAccounting::add(acct, tid, CpuCategory::Other, 50); //~ charge-confine
}

impl Daemon {
    fn tick(&mut self) {
        self.acct.add(self.tid, CpuCategory::Daemon, 1); //~ charge-confine
    }
}

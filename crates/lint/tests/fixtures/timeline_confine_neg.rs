// Fixture: sanctioned telemetry paths — gauges register a provider,
// latencies flow through observe_read, and unrelated pushes stay quiet.
fn observe_properly(w: &mut World, start: SimTime, end: SimTime) {
    w.timeline
        .register_provider("sched.h1.runq", Box::new(|w| w.sched.runq_depth(0) as f64));
    w.timeline.observe_read(start, end);
}

fn not_the_sink(rows: &mut Vec<u64>, stats: &mut Stats) {
    // A plain collection push and a record method that is not the
    // histogram's raw sink — neither is confined.
    rows.push(7);
    stats.record(7);
    stats.set_gauge("ring.h0.bytes", 1.0);
}

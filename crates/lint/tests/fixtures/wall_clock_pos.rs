// Fixture: every marked line must produce exactly the marked rule.
use std::time::{Instant, SystemTime}; //~ wall-clock

fn timing() -> u128 {
    let t0 = Instant::now(); //~ wall-clock
    let _epoch = SystemTime::now(); //~ wall-clock
    t0.elapsed().as_nanos()
}

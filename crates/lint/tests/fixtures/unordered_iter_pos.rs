// Fixture: iteration over HashMap/HashSet-typed state must fire.
use std::collections::{HashMap, HashSet};

struct Daemon {
    vfds: HashMap<u64, u32>,
}

impl Daemon {
    fn drain_vfds(&self) -> Vec<u32> {
        self.vfds.values().copied().collect() //~ unordered-iter
    }
}

fn main_loop(d: &Daemon) {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(1);
    for s in &seen { //~ unordered-iter
        let _ = s;
    }
    for (k, v) in d.vfds.iter() { //~ unordered-iter
        let _ = (k, v);
    }
}

// Fixture: handler code reaching into the raw cross-shard machinery.
fn hustle(world: &mut World, shard: usize) {
    let pending = world.take_outbox(shard); //~ shard-send
    for (dst, ev) in pending {
        world.post_remote(dst, ev); //~ shard-send
    }
    deliver_remote(world, shard); //~ shard-send
}

fn forge(dst: usize, seq: u64) -> Outbound { //~ shard-send
    Outbound { dst, seq } //~ shard-send
}

fn drain(world: &mut World) {
    world.outbox.clear(); //~ shard-send
}

// Fixture: ordered collections, point lookups, and rule text inside
// strings/comments must not fire.
use std::collections::{BTreeMap, HashMap};

struct State {
    ordered: BTreeMap<u64, u32>,
    lookup: HashMap<u64, u32>,
}

impl State {
    fn sum_ordered(&self) -> u32 {
        // Iterating a BTreeMap is fine: .values() order is the key order.
        self.ordered.values().sum()
    }

    fn get(&self, k: u64) -> Option<u32> {
        // Point lookups never observe RandomState order.
        self.lookup.get(&k).copied()
    }
}

fn strings_and_comments() {
    // A mention of lookup.values() in a comment must not fire.
    let _s = "for x in lookup.iter() { lookup.values() }";
}

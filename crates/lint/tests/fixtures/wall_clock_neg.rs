// Fixture: none of this may fire — rule text lives in strings,
// comments, and behind a valid allow annotation.

fn not_wall_clock() {
    // Instant::now() in a comment must not fire.
    let _s = "Instant::now() and SystemTime in a string";
    let _r = r#"raw Instant::now() and "SystemTime" too"#;
    /* block comment: Instant::now() SystemTime */
}

// vread-lint: allow(wall-clock, "fixture: legitimate host-timing site")
fn timing_harness() -> std::time::Instant {
    std::time::Instant::now()
}

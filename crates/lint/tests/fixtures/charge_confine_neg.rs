// Fixture: sanctioned charge paths — everything routes via the scheduler.
fn charge_properly(ctx: &mut Ctx) {
    ctx.charge(CpuCategory::Daemon, 100);
    ctx.sched.charge_span(CpuCategory::Other, 50);
}

fn not_the_sink(ledger: &mut Ledger) {
    // `add` on something that is not the accounting sink, and an ident
    // that merely contains `acct` — neither is the raw sink.
    ledger.add(2);
    ledger.acct_add(1);
}

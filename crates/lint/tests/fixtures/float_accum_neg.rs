// Fixture: integer reductions and rule text in strings/comments must
// not fire.
fn count(xs: &[u64]) -> u64 {
    xs.iter().sum()
}

fn comment_only() -> &'static str {
    // sum::<f64>() and fold(0.0, ..) in this comment must not fire.
    "sum::<f64>() fold(0.0, f64::max)"
}

//! Workspace-walk scoping tests.
//!
//! The walk must skip the lint crate's own `tests/fixtures/` (deliberate
//! violations live there) without blinding itself to `fixtures/`
//! directories elsewhere in the tree — a data-fixture dir in another
//! crate is ordinary code and must be scanned.

use std::path::Path;

#[test]
fn fixture_skip_is_scoped_to_the_lint_crate() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("walk-scope");
    let _ = std::fs::remove_dir_all(&root);
    for d in [
        "crates/lint/tests/fixtures",
        "crates/core/fixtures",
        "crates/core/src",
    ] {
        std::fs::create_dir_all(root.join(d)).unwrap();
    }
    std::fs::write(
        root.join("crates/lint/tests/fixtures/skip_me.rs"),
        "fn a() {}\n",
    )
    .unwrap();
    std::fs::write(root.join("crates/core/fixtures/scan_me.rs"), "fn b() {}\n").unwrap();
    std::fs::write(root.join("crates/core/src/lib.rs"), "fn c() {}\n").unwrap();

    let files = vread_lint::collect_rs_files(&root).unwrap();
    let names: Vec<String> = files
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    assert!(
        names
            .iter()
            .any(|p| p.ends_with("crates/core/fixtures/scan_me.rs")),
        "non-lint fixtures/ dirs must be scanned: {names:?}"
    );
    assert!(names.iter().any(|p| p.ends_with("crates/core/src/lib.rs")));
    assert!(
        !names.iter().any(|p| p.contains("lint/tests/fixtures")),
        "the lint crate's own fixtures must stay skipped: {names:?}"
    );
}

#[test]
fn target_and_vcs_dirs_stay_skipped() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("walk-skip");
    let _ = std::fs::remove_dir_all(&root);
    for d in ["target/debug", ".git/objects", "src"] {
        std::fs::create_dir_all(root.join(d)).unwrap();
    }
    std::fs::write(root.join("target/debug/gen.rs"), "fn a() {}\n").unwrap();
    std::fs::write(root.join(".git/objects/x.rs"), "fn b() {}\n").unwrap();
    std::fs::write(root.join("src/lib.rs"), "fn c() {}\n").unwrap();

    let files = vread_lint::collect_rs_files(&root).unwrap();
    assert_eq!(files.len(), 1, "{files:?}");
    assert!(files[0].ends_with("src/lib.rs"));
}

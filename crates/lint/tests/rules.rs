//! Fixture-based rule tests.
//!
//! Each fixture under `tests/fixtures/` marks its expected violations
//! with a trailing `//~ rule-id` comment (compiletest style); negative
//! fixtures carry no markers and must produce nothing. Fixtures are
//! plain text to the linter — they are never compiled, and the
//! workspace walk skips `fixtures/` directories so the deliberate
//! violations inside them cannot fail the self-check.

use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(rule, line)` pairs from `//~ rule` markers.
fn expected(src: &str) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = src
        .lines()
        .enumerate()
        .filter_map(|(i, l)| {
            l.split("//~").nth(1).map(|r| {
                (
                    r.trim().to_owned(),
                    u32::try_from(i + 1).expect("fixture line fits u32"),
                )
            })
        })
        .collect();
    out.sort();
    out
}

/// Lints `name` under `virtual_path` and compares against the markers.
fn check(name: &str, virtual_path: &str) {
    let src = fixture(name);
    let want = expected(&src);
    let mut got: Vec<(String, u32)> = vread_lint::lint_source(virtual_path, &src)
        .into_iter()
        .map(|v| {
            assert_eq!(v.file, virtual_path, "violation carries the linted path");
            (v.rule, v.line)
        })
        .collect();
    got.sort();
    assert_eq!(got, want, "fixture {name} under {virtual_path}");
}

#[test]
fn wall_clock_fixtures() {
    check("wall_clock_pos.rs", "crates/core/src/fixture.rs");
    check("wall_clock_neg.rs", "crates/core/src/fixture.rs");
}

#[test]
fn unordered_iter_fixtures() {
    check("unordered_iter_pos.rs", "crates/core/src/fixture.rs");
    check("unordered_iter_neg.rs", "crates/core/src/fixture.rs");
}

#[test]
fn ambient_entropy_fixtures() {
    check("ambient_entropy_pos.rs", "crates/core/src/fixture.rs");
    check("ambient_entropy_neg.rs", "crates/core/src/fixture.rs");
}

#[test]
fn checked_cast_fixtures() {
    // In scope: the cycle/byte accounting crates.
    check("checked_cast_pos.rs", "crates/sim/src/fixture.rs");
    check("checked_cast_neg.rs", "crates/sim/src/fixture.rs");
}

#[test]
fn checked_cast_out_of_scope_is_silent() {
    // The same narrowing casts outside crates/sim//crates/host do not
    // fire — but the now-unused allow annotation does.
    let src = fixture("checked_cast_pos.rs");
    let v = vread_lint::lint_source("crates/apps/src/fixture.rs", &src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "unused-allow");
}

#[test]
fn threading_fixtures() {
    check("threading_pos.rs", "crates/core/src/fixture.rs");
    check("threading_neg.rs", "crates/core/src/fixture.rs");
}

#[test]
fn float_accum_fixtures() {
    check("float_accum_pos.rs", "crates/core/src/fixture.rs");
    check("float_accum_neg.rs", "crates/core/src/fixture.rs");
}

#[test]
fn charge_confine_fixtures() {
    check("charge_confine_pos.rs", "crates/sim/src/daemon.rs");
    check("charge_confine_neg.rs", "crates/sim/src/daemon.rs");
}

#[test]
fn charge_confine_sanctioned_paths_are_silent() {
    // The same raw charges inside the wrapper's own files are the point
    // of those files, not violations.
    let src = fixture("charge_confine_pos.rs");
    for path in ["crates/sim/src/sched.rs", "crates/sim/src/cpu.rs"] {
        let v = vread_lint::lint_source(path, &src);
        assert!(v.is_empty(), "{path}: {v:?}");
    }
}

#[test]
fn timeline_confine_fixtures() {
    check("timeline_confine_pos.rs", "crates/hdfs/src/client.rs");
    check("timeline_confine_neg.rs", "crates/hdfs/src/client.rs");
}

#[test]
fn timeline_confine_sanctioned_path_is_silent() {
    // The raw sinks inside the timeline module itself are the sampler
    // and observe_read — the sanctioned implementation, not violations.
    let src = fixture("timeline_confine_pos.rs");
    let v = vread_lint::lint_source("crates/sim/src/timeline.rs", &src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn shard_send_fixtures() {
    check("shard_send_pos.rs", "crates/sim/src/handlers.rs");
    check("shard_send_neg.rs", "crates/sim/src/handlers.rs");
}

#[test]
fn shard_send_sanctioned_paths_are_silent() {
    let src = fixture("shard_send_pos.rs");
    for path in ["crates/sim/src/par.rs", "crates/sim/src/engine.rs"] {
        let v = vread_lint::lint_source(path, &src);
        assert!(v.is_empty(), "{path}: {v:?}");
    }
}

#[test]
fn shard_send_bench_engine_is_not_sanctioned() {
    // Suffix matching must not leak to crates/bench/src/engine.rs.
    let src = fixture("shard_send_pos.rs");
    let v = vread_lint::lint_source("crates/bench/src/engine.rs", &src);
    assert!(
        v.iter().any(|v| v.rule == "shard-send"),
        "bench's engine.rs is not the sim engine: {v:?}"
    );
}

#[test]
fn sealed_match_fixtures() {
    check("sealed_match_pos.rs", "crates/core/src/fixture.rs");
    check("sealed_match_neg.rs", "crates/core/src/fixture.rs");
}

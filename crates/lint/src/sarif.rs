//! SARIF 2.1.0 output.
//!
//! `--format sarif` renders the report as a minimal, schema-valid
//! [SARIF 2.1.0](https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html)
//! log so CI can upload it for inline PR annotation (GitHub code
//! scanning and most SARIF viewers resolve the relative artifact URIs
//! against the checkout root, which is exactly how the report's paths
//! are already spelled).
//!
//! The output is deliberately small — one run, one driver, the rule
//! catalog as `reportingDescriptor`s, one `result` per violation — and
//! byte-stable: violations are already sorted by the engine and every
//! field is emitted in a fixed order.

use crate::rules::{META_RULES, RULES};
use crate::{json_escape, LintReport};
use std::fmt::Write as _;

/// Rule ids in driver order: the catalog first, then the meta rules.
fn driver_rule_ids() -> Vec<&'static str> {
    RULES
        .iter()
        .map(|r| r.id)
        .chain(META_RULES.iter().copied())
        .collect()
}

/// Renders the report as a SARIF 2.1.0 log (stable field order, sorted
/// results — byte-identical across runs).
pub fn render_sarif(report: &LintReport) -> String {
    let ids = driver_rule_ids();
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"vread-lint\",\n");
    out.push_str(
        "          \"informationUri\": \"https://github.com/vread-rs/vread-rs/tree/main/crates/lint\",\n",
    );
    out.push_str("          \"rules\": [\n");
    for (i, id) in ids.iter().enumerate() {
        let summary = RULES
            .iter()
            .find(|r| r.id == *id)
            .map(|r| r.summary.to_owned())
            .unwrap_or_else(|| {
                format!("meta rule: a malformed or stale `allow` annotation ({id})")
            });
        let _ = write!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(id),
            json_escape(&summary)
        );
        out.push_str(if i + 1 < ids.len() { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, v) in report.violations.iter().enumerate() {
        let rule_index = ids.iter().position(|id| *id == v.rule);
        let _ = write!(out, "        {{\"ruleId\": \"{}\", ", json_escape(&v.rule));
        if let Some(ix) = rule_index {
            let _ = write!(out, "\"ruleIndex\": {ix}, ");
        }
        let _ = write!(
            out,
            "\"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            json_escape(&v.message),
            json_escape(&v.file),
            v.line,
            v.col
        );
        out.push_str(if i + 1 < report.violations.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    #[test]
    fn sarif_carries_every_violation_with_location() {
        let report = LintReport {
            violations: vec![Violation {
                rule: "sealed-match".into(),
                file: "crates/core/src/ring.rs".into(),
                line: 12,
                col: 9,
                message: "wildcard \"_\" arm".into(),
            }],
            ..Default::default()
        };
        let s = render_sarif(&report);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"sealed-match\""));
        assert!(s.contains("\"startLine\": 12"));
        assert!(s.contains("wildcard \\\"_\\\" arm"));
        // Every catalog + meta rule appears exactly once in the driver.
        for r in RULES {
            assert_eq!(s.matches(&format!("\"id\": \"{}\"", r.id)).count(), 1);
        }
    }

    #[test]
    fn sarif_is_byte_stable() {
        let report = LintReport::default();
        assert_eq!(render_sarif(&report), render_sarif(&report));
    }
}

//! The suppression ratchet: `lint-baseline.json`.
//!
//! The `allow(rule, "reason")` annotation is the rule catalog's
//! pressure valve — and an unguarded valve creeps open one reasonable
//! exception at a time. The baseline file records, per rule, how many
//! violations and how many *used* allows the workspace currently
//! carries. A lint run compares itself against the committed baseline
//! and fails on any growth; `--update-baseline` rewrites the file from
//! the current run, which is how counts ratchet *down* (deleting an
//! allow without updating the baseline passes — shrinking is always
//! legal — but the next `--update-baseline` locks the lower number in).
//!
//! The file is plain JSON with a stable field order so diffs are
//! reviewable; parsing is hand-rolled (the crate is dependency-free by
//! design) and tolerant of whitespace but not of structural liberties.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-rule baseline counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleCounts {
    /// Unsuppressed violations (normally 0 on a committed baseline —
    /// the lint gate fails on any — but tracked so a deliberately
    /// red baseline still ratchets).
    pub violations: u64,
    /// Used `allow(…)` annotations.
    pub allows: u64,
}

/// The committed per-rule counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Counts keyed by rule id (catalog rules and meta rules alike).
    pub rules: BTreeMap<String, RuleCounts>,
}

/// One counter that grew past its baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Rule id.
    pub rule: String,
    /// `"violations"` or `"allows"`.
    pub counter: &'static str,
    /// Committed count.
    pub baseline: u64,
    /// Observed count.
    pub current: u64,
}

impl Baseline {
    /// Builds a baseline from observed per-rule counts.
    pub fn from_counts(counts: &BTreeMap<String, RuleCounts>) -> Self {
        Baseline {
            rules: counts.clone(),
        }
    }

    /// Every counter in `current` that exceeds this baseline. Rules
    /// absent from the baseline count as 0 — a brand-new rule starts
    /// ratcheted shut.
    pub fn regressions(&self, current: &BTreeMap<String, RuleCounts>) -> Vec<Regression> {
        let mut out = Vec::new();
        for (rule, cur) in current {
            let base = self.rules.get(rule).copied().unwrap_or_default();
            if cur.violations > base.violations {
                out.push(Regression {
                    rule: rule.clone(),
                    counter: "violations",
                    baseline: base.violations,
                    current: cur.violations,
                });
            }
            if cur.allows > base.allows {
                out.push(Regression {
                    rule: rule.clone(),
                    counter: "allows",
                    baseline: base.allows,
                    current: cur.allows,
                });
            }
        }
        out
    }

    /// Renders the stable JSON form (sorted rules, fixed field order —
    /// byte-identical for equal contents).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"vread-lint-baseline\",\n  \"rules\": {\n");
        for (i, (rule, c)) in self.rules.iter().enumerate() {
            let _ = write!(
                out,
                "    \"{}\": {{\"violations\": {}, \"allows\": {}}}",
                rule, c.violations, c.allows
            );
            out.push_str(if i + 1 < self.rules.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the JSON form. Field order inside a rule entry is free;
    /// unknown top-level keys are ignored.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Cursor {
            b: text.as_bytes(),
            i: 0,
        };
        let mut rules = BTreeMap::new();
        p.expect(b'{')?;
        loop {
            p.ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.expect(b':')?;
            if key == "rules" {
                p.expect(b'{')?;
                loop {
                    p.ws();
                    if p.eat(b'}') {
                        break;
                    }
                    let rule = p.string()?;
                    p.expect(b':')?;
                    let mut counts = RuleCounts::default();
                    p.expect(b'{')?;
                    loop {
                        p.ws();
                        if p.eat(b'}') {
                            break;
                        }
                        let field = p.string()?;
                        p.expect(b':')?;
                        let n = p.number()?;
                        match field.as_str() {
                            "violations" => counts.violations = n,
                            "allows" => counts.allows = n,
                            other => return Err(format!("unknown counter {other:?} in {rule:?}")),
                        }
                        p.ws();
                        p.eat(b',');
                    }
                    rules.insert(rule, counts);
                    p.ws();
                    p.eat(b',');
                }
            } else {
                p.skip_value()?;
            }
            p.ws();
            p.eat(b',');
        }
        Ok(Baseline { rules })
    }
}

/// Minimal byte cursor for the baseline's own JSON dialect.
struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cursor<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline: expected {:?} at byte {}",
                c as char, self.i
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            if self.b[self.i] == b'\\' {
                return Err("baseline: escaped strings are not used".to_owned());
            }
            self.i += 1;
        }
        if self.i >= self.b.len() {
            return Err("baseline: unterminated string".to_owned());
        }
        let s = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "baseline: non-utf8 string".to_owned())?
            .to_owned();
        self.i += 1;
        Ok(s)
    }

    fn number(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("baseline: expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "baseline: bad number".to_owned())
    }

    /// Skips one value (string or number) for ignored top-level keys.
    fn skip_value(&mut self) -> Result<(), String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'"') => {
                self.string()?;
            }
            Some(c) if c.is_ascii_digit() => {
                self.number()?;
            }
            _ => return Err("baseline: unsupported value shape".to_owned()),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u64, u64)]) -> BTreeMap<String, RuleCounts> {
        pairs
            .iter()
            .map(|&(r, v, a)| {
                (
                    r.to_owned(),
                    RuleCounts {
                        violations: v,
                        allows: a,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn render_parse_round_trip() {
        let b = Baseline::from_counts(&counts(&[("wall-clock", 0, 7), ("sealed-match", 0, 1)]));
        let parsed = Baseline::parse(&b.render()).expect("parse own output");
        assert_eq!(parsed, b);
    }

    #[test]
    fn growth_is_a_regression_shrink_is_not() {
        let b = Baseline::from_counts(&counts(&[("threading", 0, 7)]));
        assert!(b.regressions(&counts(&[("threading", 0, 7)])).is_empty());
        assert!(b.regressions(&counts(&[("threading", 0, 6)])).is_empty());
        let r = b.regressions(&counts(&[("threading", 0, 8)]));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].counter, "allows");
        assert_eq!((r[0].baseline, r[0].current), (7, 8));
    }

    #[test]
    fn unknown_rule_in_current_starts_at_zero() {
        let b = Baseline::default();
        let r = b.regressions(&counts(&[("charge-confine", 0, 1)]));
        assert_eq!(r.len(), 1, "{r:?}");
    }

    #[test]
    fn tolerates_whitespace_and_field_order() {
        let text = "{ \"rules\" : { \"x\" : { \"allows\" : 2 , \"violations\" : 1 } } , \
                    \"tool\" : \"vread-lint-baseline\" }";
        let b = Baseline::parse(text).expect("parse");
        assert_eq!(
            b.rules["x"],
            RuleCounts {
                violations: 1,
                allows: 2
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{\"rules\": {\"x\": {\"bogus\": 1}}}").is_err());
    }
}

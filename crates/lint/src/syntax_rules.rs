//! The syntax-aware invariant rules (lint v2).
//!
//! Each rule here statically enforces an invariant that was previously
//! guarded only at runtime or by reviewer discipline:
//!
//! * `charge-confine` — the span+unattributed == engine-total cycle
//!   conservation proptest (DESIGN.md §12) holds because *every* cycle
//!   charge flows through the scheduler's charge wrapper in
//!   `crates/sim/src/sched.rs`. A new `acct.add(…)` call site anywhere
//!   else would bypass span attribution silently.
//! * `shard-send` — byte-identical replay at any `--engine-threads N`
//!   (DESIGN.md §14) holds because cross-shard traffic moves only via
//!   `post_remote` with lookahead, and the raw outbox/delivery
//!   machinery is confined to `vread_sim::par` + `engine.rs`. Handler
//!   code touching the outbox directly would skip the canonical
//!   `(time, shard, seq)` barrier order.
//! * `sealed-match` — the workspace's load-bearing enums may not be
//!   matched with a wildcard `_` arm: adding a variant (PR 7's
//!   `Stage::Map`) must force every consumer — ledger, report rollups,
//!   Perfetto export — to handle it instead of silently falling
//!   through.
//! * `timeline-confine` — timeline reports are byte-identical at any
//!   `--engine-threads N` because every series point and histogram
//!   sample flows through `vread_sim::timeline`'s deterministic sinks
//!   (`Timeline::push` via the sim-tick sampler, `Hist::record_raw` via
//!   `observe_read`). A raw push or record anywhere else would inject
//!   host-order-dependent points past the merge discipline.
//!
//! All of these are path-scoped over-approximations in the house style:
//! the `allow(rule, "reason")` annotation is the pressure valve, and
//! the suppression ratchet (`lint-baseline.json`) keeps the valve from
//! creeping open.

use crate::lexer::Tok;
use crate::rules::{cand, Candidate};
use crate::syntax::{self, CallVia};

/// Runs every syntax rule over one file's code tokens.
pub fn check_syntax_rules(path: &str, code: &[Tok<'_>], out: &mut Vec<Candidate>) {
    let items = syntax::parse_items(code);
    let calls = syntax::call_paths(code);
    charge_confine(path, code, &items, &calls, out);
    shard_send(path, code, &items, &calls, out);
    sealed_match(code, out);
    timeline_confine(path, code, &items, &calls, out);
}

/// Appends `in fn \`name\`` context when the call is inside a function.
fn fn_context(items: &[syntax::Item], ix: usize) -> String {
    match syntax::enclosing_fn(items, ix) {
        Some(f) => format!(" (in fn `{}`)", f.name),
        None => String::new(),
    }
}

// ---------------------------------------------------------------------------
// charge-confine
// ---------------------------------------------------------------------------

/// Files allowed to call the raw accounting sink: the scheduler's
/// charge wrapper (the only sanctioned caller) and the accounting
/// structure's own module.
const CHARGE_FILES: &[&str] = &["crates/sim/src/sched.rs", "crates/sim/src/cpu.rs"];

fn charge_confine(
    path: &str,
    code: &[Tok<'_>],
    items: &[syntax::Item],
    calls: &[syntax::CallPath],
    out: &mut Vec<Candidate>,
) {
    if CHARGE_FILES.iter().any(|f| path.ends_with(f)) {
        return;
    }
    for c in calls {
        let direct_sink = (c.via == CallVia::Method && c.ends_with(&["acct", "add"]))
            || (c.via == CallVia::Path
                && (c.ends_with(&["CpuAccounting", "add"]) || c.ends_with(&["Accounting", "add"])));
        if direct_sink {
            let t = &code[c.callee_ix];
            out.push(cand(
                "charge-confine",
                t,
                format!(
                    "`{}` charges cycles directly, bypassing the sched.rs charge \
                     wrapper that attributes them to spans; route the charge through \
                     the scheduler so span + unattributed == engine total holds{}",
                    c.segments.join("."),
                    fn_context(items, c.callee_ix)
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// shard-send
// ---------------------------------------------------------------------------

/// Files that own the cross-shard machinery.
const SHARD_FILES: &[&str] = &["crates/sim/src/par.rs", "crates/sim/src/engine.rs"];

/// The raw machinery: outbox drain/delivery entry points and the
/// in-flight message types. `Ctx::post_remote` is the sanctioned API
/// and is deliberately *not* in this list.
const SHARD_CALLEES: &[&str] = &["take_outbox", "deliver_remote"];
const SHARD_TYPES: &[&str] = &["Outbound"];

fn shard_send(
    path: &str,
    code: &[Tok<'_>],
    items: &[syntax::Item],
    calls: &[syntax::CallPath],
    out: &mut Vec<Candidate>,
) {
    if SHARD_FILES.iter().any(|f| path.ends_with(f)) {
        return;
    }
    for c in calls {
        if SHARD_CALLEES.contains(&c.callee()) {
            let t = &code[c.callee_ix];
            out.push(cand(
                "shard-send",
                t,
                format!(
                    "`{}` touches the raw cross-shard outbox; handler code must send \
                     via `ctx.post_remote(…)` so deliveries keep the canonical \
                     (time, shard, seq) barrier order{}",
                    c.segments.join("."),
                    fn_context(items, c.callee_ix)
                ),
            ));
            continue;
        }
        // `world.post_remote(…)` / `World::post_remote(…)`: the
        // engine-side entry point, below the seq-stamping Ctx wrapper.
        let raw_post = c.callee() == "post_remote"
            && ((c.via == CallVia::Method && c.ends_with(&["world", "post_remote"]))
                || (c.via == CallVia::Path && c.ends_with(&["World", "post_remote"])));
        if raw_post {
            let t = &code[c.callee_ix];
            out.push(cand(
                "shard-send",
                t,
                format!(
                    "`{}` posts to the outbox below the Ctx wrapper; handler code \
                     must use `ctx.post_remote(…)`{}",
                    c.segments.join("."),
                    fn_context(items, c.callee_ix)
                ),
            ));
        }
    }
    // Type mentions and field access: `Outbound`, `.outbox`.
    for (i, t) in code.iter().enumerate() {
        if SHARD_TYPES.iter().any(|ty| t.is_ident(ty)) {
            out.push(cand(
                "shard-send",
                t,
                format!(
                    "`{}` is the raw in-flight cross-shard message type, owned by \
                     vread_sim::par; handler code must not construct or inspect it{}",
                    t.text,
                    fn_context(items, i)
                ),
            ));
        }
        if t.is_ident("outbox")
            && matches!(i.checked_sub(1).and_then(|p| code.get(p)), Some(p) if p.is_punct('.'))
        {
            out.push(cand(
                "shard-send",
                t,
                format!(
                    "`.outbox` reaches into the raw cross-shard queue; handler code \
                     must send via `ctx.post_remote(…)`{}",
                    fn_context(items, i)
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// timeline-confine
// ---------------------------------------------------------------------------

/// The one file allowed to feed the timeline's raw sinks: the timeline
/// module itself (the sampler calls `push`, `observe_read` calls
/// `record_raw`). Everyone else goes through `register_provider` /
/// `observe_read`, which the sampler drains deterministically.
const TIMELINE_FILES: &[&str] = &["crates/sim/src/timeline.rs"];

fn timeline_confine(
    path: &str,
    code: &[Tok<'_>],
    items: &[syntax::Item],
    calls: &[syntax::CallPath],
    out: &mut Vec<Candidate>,
) {
    if TIMELINE_FILES.iter().any(|f| path.ends_with(f)) {
        return;
    }
    for c in calls {
        let raw_push = (c.via == CallVia::Method && c.ends_with(&["timeline", "push"]))
            || (c.via == CallVia::Path && c.ends_with(&["Timeline", "push"]));
        if raw_push {
            let t = &code[c.callee_ix];
            out.push(cand(
                "timeline-confine",
                t,
                format!(
                    "`{}` appends a series point outside the sim-tick sampler; \
                     register a gauge via `timeline.register_provider(…)` so every \
                     point lands at a deterministic tick time{}",
                    c.segments.join("."),
                    fn_context(items, c.callee_ix)
                ),
            ));
            continue;
        }
        let raw_record = (c.via == CallVia::Method && c.callee() == "record_raw")
            || (c.via == CallVia::Path && c.ends_with(&["Hist", "record_raw"]));
        if raw_record {
            let t = &code[c.callee_ix];
            out.push(cand(
                "timeline-confine",
                t,
                format!(
                    "`{}` records into a latency histogram directly; observations \
                     must flow through `timeline.observe_read(start, end)` so window \
                     assignment and shard merge stay byte-identical{}",
                    c.segments.join("."),
                    fn_context(items, c.callee_ix)
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// sealed-match
// ---------------------------------------------------------------------------

/// The workspace's load-bearing enums: adding a variant to any of these
/// must be a compile-time (here: lint-time) event at every consumer.
/// `Stage` gained `Map` in PR 7 — a wildcard arm in the ledger or the
/// Perfetto export would have silently dropped mapped bytes.
pub const SEALED_ENUMS: &[&str] = &[
    "Stage",
    "Admission",
    "FaultKind",
    "ReadPath",
    "HostCacheMode",
    "TraceKind",
];

fn sealed_match(code: &[Tok<'_>], out: &mut Vec<Candidate>) {
    for m in syntax::parse_matches(code) {
        // Which sealed enum (if any) do the arm *patterns* mention?
        // Scrutinee and arm bodies are deliberately ignored: `match n {
        // 3 => FaultKind::DiskSlow { … } }` constructs, not destructures.
        let sealed = SEALED_ENUMS.iter().find(|e| {
            m.arms
                .iter()
                .any(|a| syntax::range_mentions_path_head(code, a.pat.clone(), e))
        });
        let Some(sealed) = sealed else { continue };
        for a in &m.arms {
            if m.arm_is_wildcard(code, a) {
                let t = &code[a.pat.start];
                out.push(cand(
                    "sealed-match",
                    t,
                    format!(
                        "wildcard `_` arm in a match over sealed enum `{sealed}`; \
                         list the remaining variants so adding one forces every \
                         consumer to handle it"
                    ),
                ));
            }
        }
    }
}

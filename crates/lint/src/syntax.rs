//! The syntax layer: brace-matched structure on top of the lossless
//! lexer.
//!
//! The token rules in [`crate::token_rules`] are deliberately flat —
//! they pattern-match short token windows and cannot see function
//! boundaries, `match` arms, or call structure. The invariant rules in
//! [`crate::syntax_rules`] need exactly that structure: *which function
//! is this call in*, *is this `_` arm part of a `match` over a sealed
//! enum*, *what dotted path does this call site spell*. This module
//! recovers those three views from the code token stream (comments
//! already stripped by the engine), with no external crates:
//!
//! * [`parse_items`] — a tree of `fn`/`impl`/`mod`/`trait` items with
//!   brace-matched body ranges, flattened in source order.
//! * [`parse_matches`] — every `match` expression with its arms split
//!   into pattern and body token ranges (guards handled, nested
//!   matches found independently, `match` inside macro arguments
//!   included because macros are just balanced token trees here).
//! * [`call_paths`] — every call site `a.b.c(…)` / `A::b(…)` as its
//!   dotted segment list, so rules can confine an operation to a
//!   wrapper at call-path granularity instead of banning an identifier.
//!
//! This is still not a parser for Rust — it is a *brace-matcher with
//! opinions*, and it over-approximates exactly like the token rules
//! do. The properties it relies on are lexical and stable: `match`,
//! `fn`, `mod`, `impl`, `trait` are reserved words; delimiters inside
//! code tokens are balanced once strings, chars, lifetimes, and
//! comments have been lexed away; a `match` scrutinee cannot contain a
//! bare `{` at depth 0 (struct literals there require parentheses).

use crate::lexer::{Tok, TokKind};

/// Kind of a recovered item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(…) { … }` (or a bodiless trait-method declaration).
    Fn,
    /// `mod name { … }` or `mod name;`.
    Mod,
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl,
    /// `trait Name { … }`.
    Trait,
}

/// One recovered item, with token-index and line extents.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The item's name: the `fn`/`mod`/`trait` identifier, or for
    /// `impl` blocks the last type-path segment of the implemented-for
    /// type (`impl Foo for Bar` → `Bar`).
    pub name: String,
    /// Token index of the introducing keyword.
    pub kw_ix: usize,
    /// Token range of the body, *excluding* the delimiting braces.
    /// Empty for bodiless items (`mod foo;`, trait-method decls).
    pub body: std::ops::Range<usize>,
    /// 1-based line of the introducing keyword.
    pub line: u32,
}

/// Parses the flat item list of one file, in source order. Nested items
/// (a `fn` inside a `mod`, a test `fn` inside an inline `mod tests`)
/// appear after their parents; [`enclosing_fn`] resolves containment.
pub fn parse_items(code: &[Tok<'_>]) -> Vec<Item> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let t = &code[i];
        let kind = match t.text {
            "fn" if t.kind == TokKind::Ident => Some(ItemKind::Fn),
            "mod" if t.kind == TokKind::Ident => Some(ItemKind::Mod),
            "impl" if t.kind == TokKind::Ident => Some(ItemKind::Impl),
            "trait" if t.kind == TokKind::Ident => Some(ItemKind::Trait),
            _ => None,
        };
        let Some(kind) = kind else {
            i += 1;
            continue;
        };
        // `fn` in a fn-pointer type (`fn(u32) -> u32`) has no name; skip.
        if kind == ItemKind::Fn && !matches!(code.get(i + 1), Some(n) if n.kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        // Header: everything up to the body `{` or a terminating `;` at
        // delimiter depth 0. Generics/where-clauses keep `()[]` balanced.
        let mut depth = 0i32;
        let mut body_open = None;
        let mut header_end = code.len();
        for (j, u) in code.iter().enumerate().skip(i + 1) {
            if u.is_punct('(') || u.is_punct('[') {
                depth += 1;
            } else if u.is_punct(')') || u.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && u.is_punct('{') {
                body_open = Some(j);
                header_end = j;
                break;
            } else if depth == 0 && u.is_punct(';') {
                header_end = j;
                break;
            }
        }
        let name = item_name(kind, &code[i + 1..header_end]);
        let body = match body_open {
            Some(open) => open + 1..match_brace(code, open),
            None => header_end..header_end,
        };
        out.push(Item {
            kind,
            name,
            kw_ix: i,
            body,
            line: t.line,
        });
        // Step one token, not over the body: the same forward scan then
        // finds items nested inside it (item headers never contain
        // another item keyword, so headers cannot double-report).
        i += 1;
    }
    out
}

/// Name extraction from an item header (keyword already stripped).
fn item_name(kind: ItemKind, header: &[Tok<'_>]) -> String {
    match kind {
        ItemKind::Fn | ItemKind::Mod | ItemKind::Trait => header
            .first()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.to_owned())
            .unwrap_or_default(),
        ItemKind::Impl => {
            // `impl<G> Trait for Type` → last ident after `for`;
            // `impl Type` → last ident of the first type path (stop at
            // `where`). Either way "the last plain ident before the body
            // that is not a generic parameter" is a good label.
            let mut after_for: Option<&Tok<'_>> = None;
            let mut last: Option<&Tok<'_>> = None;
            let mut seen_for = false;
            let mut angle = 0i32;
            for t in header {
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                } else if t.is_ident("where") {
                    break;
                } else if t.is_ident("for") {
                    seen_for = true;
                } else if t.kind == TokKind::Ident && angle <= 0 {
                    if seen_for {
                        after_for = Some(t);
                    } else {
                        last = Some(t);
                    }
                }
            }
            after_for
                .or(last)
                .map(|t| t.text.to_owned())
                .unwrap_or_default()
        }
    }
}

/// Index one past the brace that closes the `{` at `open`; `code.len()`
/// if unclosed (malformed input — the compiler reports the real error).
fn match_brace(code: &[Tok<'_>], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    code.len()
}

/// The innermost `fn` item whose body contains token index `ix`.
pub fn enclosing_fn(items: &[Item], ix: usize) -> Option<&Item> {
    items
        .iter()
        .filter(|it| it.kind == ItemKind::Fn && it.body.contains(&ix))
        .min_by_key(|it| it.body.len())
}

// ---------------------------------------------------------------------------
// match expressions
// ---------------------------------------------------------------------------

/// One arm of a `match`: pattern (including any `if` guard) and body
/// token ranges.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Tokens of the pattern *and* guard (everything left of `=>`).
    pub pat: std::ops::Range<usize>,
    /// Tokens of the arm body (block braces excluded).
    pub body: std::ops::Range<usize>,
}

/// One `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// Token index of the `match` keyword.
    pub kw_ix: usize,
    /// Tokens of the scrutinee expression.
    pub scrutinee: std::ops::Range<usize>,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
}

impl MatchExpr {
    /// Whether arm `a`'s pattern is a bare wildcard `_` (no guard).
    pub fn arm_is_wildcard(&self, code: &[Tok<'_>], a: &Arm) -> bool {
        let toks = &code[a.pat.clone()];
        toks.len() == 1 && toks[0].is_ident("_")
    }
}

/// Finds every `match` expression in `code`, including ones nested in
/// arm bodies or inside macro arguments (macro bodies are balanced
/// token trees, so the same brace matching applies).
pub fn parse_matches(code: &[Tok<'_>]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("match") {
            continue;
        }
        // Scrutinee: to the first `{` at delimiter depth 0. Rust forbids
        // bare struct literals in this position, so that `{` opens the
        // arm block. A `match` followed by `{` directly (macro fragment)
        // parses as an empty scrutinee.
        let mut depth = 0i32;
        let mut open = None;
        for (j, u) in code.iter().enumerate().skip(i + 1) {
            if u.is_punct('(') || u.is_punct('[') {
                depth += 1;
            } else if u.is_punct(')') || u.is_punct(']') {
                if depth == 0 {
                    break; // `match` was a macro fragment like `$m:ident match`…
                }
                depth -= 1;
            } else if depth == 0 && u.is_punct('{') {
                open = Some(j);
                break;
            } else if depth == 0 && (u.is_punct(';') || u.is_punct('}')) {
                break;
            }
        }
        let Some(open) = open else { continue };
        let close = match_brace(code, open);
        let arms = parse_arms(code, open + 1, close);
        out.push(MatchExpr {
            kw_ix: i,
            scrutinee: i + 1..open,
            arms,
        });
    }
    out
}

/// Whether tokens `i` and `i+1` spell the `=>` arrow (adjacent `=`, `>`).
fn is_fat_arrow(code: &[Tok<'_>], i: usize) -> bool {
    match (code.get(i), code.get(i + 1)) {
        (Some(a), Some(b)) => {
            a.is_punct('=') && b.is_punct('>') && a.line == b.line && b.col == a.col + 1
        }
        _ => false,
    }
}

/// Splits the arm block `code[from..to]` into arms.
fn parse_arms(code: &[Tok<'_>], from: usize, to: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = from;
    while i < to {
        // Pattern: up to `=>` at depth 0. Depth counts all three
        // delimiter kinds — tuple/slice patterns and guard calls nest.
        let pat_start = i;
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < to {
            let u = &code[j];
            if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                depth += 1;
            } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && is_fat_arrow(code, j) {
                arrow = Some(j);
                break;
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        // Body: a block runs to its matching brace (then an optional
        // `,`); an expression runs to the `,` at depth 0 or the end of
        // the arm block.
        let body_start = arrow + 2;
        let (body, next) = if matches!(code.get(body_start), Some(b) if b.is_punct('{')) {
            let close = match_brace(code, body_start).min(to);
            let mut n = close + 1;
            if matches!(code.get(n), Some(c) if c.is_punct(',')) {
                n += 1;
            }
            (body_start + 1..close, n)
        } else {
            let mut depth = 0i32;
            let mut end = to;
            let mut k = body_start;
            while k < to {
                let u = &code[k];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && u.is_punct(',') {
                    end = k;
                    break;
                }
                k += 1;
            }
            (body_start..end, end + 1)
        };
        arms.push(Arm {
            pat: pat_start..arrow,
            body,
        });
        i = next.max(i + 1);
    }
    arms
}

// ---------------------------------------------------------------------------
// call paths
// ---------------------------------------------------------------------------

/// How the final segment of a [`CallPath`] is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallVia {
    /// `recv.method(…)` — last segment joined by `.`.
    Method,
    /// `path::func(…)` — last segment joined by `::`.
    Path,
    /// A bare `func(…)` call.
    Bare,
}

/// One call site, as its dotted/colon path. `self.acct.add(x)` yields
/// segments `["self", "acct", "add"]` via [`CallVia::Method`];
/// `CpuAccounting::add(…)` yields `["CpuAccounting", "add"]` via
/// [`CallVia::Path`].
#[derive(Debug, Clone)]
pub struct CallPath {
    /// Path segments, outermost receiver first; the called name last.
    pub segments: Vec<String>,
    /// Token index of the *called* segment (for diagnostics).
    pub callee_ix: usize,
    /// How the callee is reached.
    pub via: CallVia,
}

impl CallPath {
    /// The called segment.
    pub fn callee(&self) -> &str {
        self.segments.last().map(String::as_str).unwrap_or("")
    }

    /// Whether the path ends with `segments` (e.g. `["acct", "add"]`
    /// matches `self.acct.add` and `world.acct.add`).
    pub fn ends_with(&self, suffix: &[&str]) -> bool {
        self.segments.len() >= suffix.len()
            && self
                .segments
                .iter()
                .rev()
                .zip(suffix.iter().rev())
                .all(|(a, b)| a == b)
    }
}

/// Extracts every call site: an identifier directly followed by `(`,
/// with its leading `.`/`::` chain walked backwards through plain
/// identifier segments. Chains through expressions (`f(x).g(…)`,
/// indexing, turbofish) stop at the nearest non-ident link, which is
/// exactly the conservative behavior the confinement rules want.
pub fn call_paths(code: &[Tok<'_>]) -> Vec<CallPath> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident || !matches!(code.get(i + 1), Some(n) if n.is_punct('(')) {
            continue;
        }
        // Keyword guards: `if (…)`, `while (…)`, `for`, `match (…)`,
        // `return (…)` are not calls.
        if matches!(
            t.text,
            "if" | "while" | "for" | "match" | "return" | "in" | "loop" | "move" | "fn" | "as"
        ) {
            continue;
        }
        let mut segments = vec![t.text.to_owned()];
        let mut via = CallVia::Bare;
        let mut j = i;
        // Look backwards for `. ident` or `:: ident`.
        while let Some(prev) = j.checked_sub(1).map(|p| &code[p]) {
            if prev.is_punct('.') {
                let Some(recv) = j.checked_sub(2).map(|p| &code[p]) else {
                    break;
                };
                if recv.kind == TokKind::Ident {
                    if via == CallVia::Bare {
                        via = CallVia::Method;
                    }
                    segments.insert(0, recv.text.to_owned());
                    j -= 2;
                    continue;
                }
                // `f(x).g(…)` — expression receiver; still a method call.
                if via == CallVia::Bare {
                    via = CallVia::Method;
                }
                break;
            }
            if prev.is_punct(':')
                && j >= 2
                && code[j - 2].is_punct(':')
                && j >= 3
                && code[j - 3].kind == TokKind::Ident
            {
                if via == CallVia::Bare {
                    via = CallVia::Path;
                }
                segments.insert(0, code[j - 3].text.to_owned());
                j -= 3;
                continue;
            }
            break;
        }
        out.push(CallPath {
            segments,
            callee_ix: i,
            via,
        });
    }
    out
}

/// Whether any token in `range` spells the path head `head ::` (an
/// enum/type path mention like `Stage::…`). Used on match-arm pattern
/// ranges by the sealed-match rule.
pub fn range_mentions_path_head(
    code: &[Tok<'_>],
    range: std::ops::Range<usize>,
    head: &str,
) -> bool {
    let hi = range.end.min(code.len());
    for i in range.start..hi {
        if code[i].is_ident(head)
            && matches!(code.get(i + 1), Some(a) if a.is_punct(':'))
            && matches!(code.get(i + 2), Some(b) if b.is_punct(':'))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code(src: &str) -> Vec<Tok<'_>> {
        lex(src).into_iter().filter(|t| !t.is_comment()).collect()
    }

    #[test]
    fn items_with_nesting() {
        let src = "mod outer { fn a() { { { } } } impl Foo { fn b(&self) {} } }";
        let toks = code(src);
        let items = parse_items(&toks);
        let names: Vec<(ItemKind, &str)> =
            items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(
            names,
            vec![
                (ItemKind::Mod, "outer"),
                (ItemKind::Fn, "a"),
                (ItemKind::Impl, "Foo"),
                (ItemKind::Fn, "b"),
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let toks = code("impl<T> Display for Wrapper<T> { fn fmt(&self) {} }");
        let items = parse_items(&toks);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name, "Wrapper");
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let src = "fn outer() { fn inner() { target(); } }";
        let toks = code(src);
        let items = parse_items(&toks);
        let target_ix = toks.iter().position(|t| t.is_ident("target")).unwrap();
        assert_eq!(enclosing_fn(&items, target_ix).unwrap().name, "inner");
    }

    #[test]
    fn match_arms_split_on_depth_zero_arrow() {
        let src = "match x { A::B { n } => n + 1, C(_, y) if y > 0 => { y }, _ => 0 }";
        let toks = code(src);
        let ms = parse_matches(&toks);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].arms.len(), 3);
        assert!(ms[0].arm_is_wildcard(&toks, &ms[0].arms[2]));
        assert!(!ms[0].arm_is_wildcard(&toks, &ms[0].arms[1]));
        assert!(range_mentions_path_head(
            &toks,
            ms[0].arms[0].pat.clone(),
            "A"
        ));
    }

    #[test]
    fn nested_match_in_arm_body_is_found() {
        let src = "match a { X => match b { Y => 1, _ => 2 }, _ => 0 }";
        let toks = code(src);
        let ms = parse_matches(&toks);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].arms.len(), 2);
        assert_eq!(ms[1].arms.len(), 2);
    }

    #[test]
    fn match_inside_macro_args() {
        let src = "println!(\"{}\", match k { Stage::Cpu { .. } => 1, _ => 0 });";
        let toks = code(src);
        let ms = parse_matches(&toks);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].arms.len(), 2);
        assert!(range_mentions_path_head(
            &toks,
            ms[0].arms[0].pat.clone(),
            "Stage"
        ));
    }

    #[test]
    fn match_text_in_raw_string_is_opaque() {
        let src = "let s = r#\"match x { _ => 0 }\"#; match y { Z => 1, _ => 2 }";
        let toks = code(src);
        let ms = parse_matches(&toks);
        assert_eq!(ms.len(), 1, "{ms:?}");
        assert_eq!(ms[0].arms.len(), 2);
    }

    #[test]
    fn guard_with_comparison_does_not_break_arrow_detection() {
        // `y > 0` inside the guard: the `>` must not pair with a stray
        // `=` into a phantom arrow; the real `=>` tokens are adjacent.
        let src = "match x { A if y >= 0 => 1, _ => 2 }";
        let toks = code(src);
        let ms = parse_matches(&toks);
        assert_eq!(ms[0].arms.len(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals_in_patterns() {
        let src = "fn f<'a>(x: &'a str) { match c { 'x' => 1, '\\n' => 2, _ => 0 }; }";
        let toks = code(src);
        let ms = parse_matches(&toks);
        assert_eq!(ms[0].arms.len(), 3);
        assert!(ms[0].arm_is_wildcard(&toks, &ms[0].arms[2]));
    }

    #[test]
    fn call_path_extraction() {
        let src = "self.acct.add(t, c); CpuAccounting::add(a); world.take_outbox();";
        let toks = code(src);
        let calls = call_paths(&toks);
        assert_eq!(calls.len(), 3);
        assert!(calls[0].ends_with(&["acct", "add"]));
        assert_eq!(calls[0].via, CallVia::Method);
        assert!(calls[1].ends_with(&["CpuAccounting", "add"]));
        assert_eq!(calls[1].via, CallVia::Path);
        assert!(calls[2].ends_with(&["world", "take_outbox"]));
    }

    #[test]
    fn expression_receiver_stops_the_chain() {
        let src = "f(x).add(y);";
        let toks = code(src);
        let calls = call_paths(&toks);
        // Both `f(…)` and `.add(…)` are calls; the chain behind `add`
        // stops at the `)` so its path is just ["add"].
        let add = calls.iter().find(|c| c.callee() == "add").unwrap();
        assert_eq!(add.segments, vec!["add"]);
        assert_eq!(add.via, CallVia::Method);
    }
}

//! The rule catalog and dispatch.
//!
//! Every rule guards an invariant the deterministic replay actually
//! depends on (DESIGN.md §11, §16). Rules come in two families:
//!
//! * **token rules** ([`crate::token_rules`]) pattern-match short
//!   windows of the code token stream (comments and string literals
//!   are already stripped by the engine), so rule text inside strings
//!   or comments never fires;
//! * **syntax rules** ([`crate::syntax_rules`]) run over the
//!   brace-matched [`crate::syntax`] layer — item boundaries, `match`
//!   arms, dotted call paths — and enforce *confinement*: an operation
//!   is legal only inside its sanctioned wrapper file.
//!
//! Rules are deliberately approximate: they over-approximate, and the
//! `// vread-lint: allow(rule, "reason")` annotation is the pressure
//! valve. An allow without a reason, or one that suppresses nothing, is
//! itself a violation — annotations stay honest — and the suppression
//! ratchet (`lint-baseline.json`, DESIGN.md §16) fails the build when
//! the per-rule allow count grows.

use crate::lexer::Tok;

pub use crate::token_rules::checked_cast_in_scope;

/// Static description of one rule.
pub struct RuleInfo {
    /// Stable rule id, as used in `allow(...)`.
    pub id: &'static str,
    /// One-line summary for `--list-rules` and docs.
    pub summary: &'static str,
}

/// All suppressible rules, in catalog order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        summary: "Instant::now()/SystemTime read host wall-clock time; sim-visible \
                  code must use World::now(). Annotate legitimate host-timing sites.",
    },
    RuleInfo {
        id: "unordered-iter",
        summary: "iteration over HashMap/HashSet-typed state observes RandomState \
                  order; use BTreeMap/BTreeSet or a sorted drain, or justify why \
                  order cannot escape.",
    },
    RuleInfo {
        id: "ambient-entropy",
        summary: "RandomState/DefaultHasher/OsRng-style ambient entropy sources \
                  break replay; seed explicitly via vread_sim::rng.",
    },
    RuleInfo {
        id: "checked-cast",
        summary: "narrowing `as` cast in sim/host accounting paths can silently \
                  truncate cycle/byte counts; use try_into or justify the cast.",
    },
    RuleInfo {
        id: "float-accum",
        summary: "f64 reduction idioms (sum::<f64>, fold(0.0, ..)) are \
                  order-sensitive; the iteration source must have a fixed order.",
    },
    RuleInfo {
        id: "threading",
        summary: "ad-hoc OS threading and shared state (thread::spawn/scope, \
                  channels, locks, atomics) fragments the determinism story; \
                  route parallelism through the vread_sim::par worker pool.",
    },
    RuleInfo {
        id: "charge-confine",
        summary: "direct cycle accounting (acct.add / CpuAccounting::add) outside \
                  the sched.rs charge wrapper bypasses span attribution and the \
                  cycle-conservation proptest; charge through the scheduler.",
    },
    RuleInfo {
        id: "shard-send",
        summary: "raw cross-shard machinery (take_outbox/deliver_remote/Outbound, \
                  .outbox, World::post_remote) outside vread_sim::par + engine.rs \
                  skips the canonical (time, shard, seq) barrier order; handlers \
                  must send via ctx.post_remote.",
    },
    RuleInfo {
        id: "sealed-match",
        summary: "wildcard `_` arm in a match over a load-bearing enum (Stage, \
                  Admission, FaultKind, ReadPath, HostCacheMode, TraceKind); list \
                  the variants so adding one forces every consumer to handle it.",
    },
    RuleInfo {
        id: "timeline-confine",
        summary: "raw telemetry sinks (timeline.push / Hist::record_raw) outside \
                  crates/sim/src/timeline.rs bypass the deterministic sampler; \
                  register gauges via register_provider and report latencies via \
                  timeline.observe_read.",
    },
];

/// Ids of the non-suppressible meta rules (violations about the
/// annotations themselves).
pub const META_RULES: &[&str] = &["bad-allow", "unused-allow"];

/// Whether `id` names a suppressible rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// A raw rule hit, before suppression filtering.
pub struct Candidate {
    /// Rule id.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
}

pub(crate) fn cand(rule: &'static str, t: &Tok<'_>, message: String) -> Candidate {
    Candidate {
        rule,
        line: t.line,
        col: t.col,
        message,
    }
}

/// Runs every rule — token family then syntax family — over `code`
/// (comment- and whitespace-free tokens of one file). `path` uses `/`
/// separators and is consulted by the path-scoped rules (checked-cast,
/// charge-confine, shard-send).
pub fn check_all(path: &str, code: &[Tok<'_>]) -> Vec<Candidate> {
    let mut out = Vec::new();
    crate::token_rules::check_token_rules(path, code, &mut out);
    crate::syntax_rules::check_syntax_rules(path, code, &mut out);
    out
}

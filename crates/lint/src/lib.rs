//! `vread-lint` — workspace-native determinism & simulation-safety
//! static analyzer.
//!
//! The repo's core claim is bit-identical replay of the vRead
//! cycle-accounting simulation (`repro --jobs N` output is byte-equal
//! for every N). That property dies silently: one unordered `HashMap`
//! iteration that leaks into event order, one `Instant::now()` feeding
//! a metric, one truncating `as u32` in the byte accounting, and every
//! replay-based test breaks with no compiler diagnostic. This crate is
//! the compiler-adjacent guard: a lossless lexer ([`lexer`]), a rule
//! catalog ([`rules`]), and an engine (this module) that walks the
//! workspace's own sources, applies the rules, and honors
//! `// vread-lint: allow(rule, "reason")` suppressions.
//!
//! Self-contained by design — no external crates — matching the
//! workspace's offline-build constraint.
//!
//! # Suppressions
//!
//! ```text
//! let t0 = Instant::now(); // vread-lint: allow(wall-clock, "reporting only")
//!
//! // vread-lint: allow(unordered-iter, "sorted before use")
//! fn drain_sorted(&mut self) { … }   // covers the whole item
//! ```
//!
//! A trailing annotation suppresses its own line; a standalone comment
//! suppresses the statement or item that starts on the next code line
//! (through the matching `}` or terminating `;`/`,`). Every allow must
//! name a known rule and carry a reason string, and must actually
//! suppress something — otherwise the run fails with `bad-allow` /
//! `unused-allow`.
//!
//! # Exit codes (stable)
//!
//! * `0` — clean
//! * `1` — at least one catalog-rule violation
//! * `2` — usage or I/O error
//! * `3` — only annotation problems (`bad-allow` / `unused-allow`)
//! * `4` — clean, but a per-rule count grew past `lint-baseline.json`
//!   (the suppression ratchet; see [`baseline`])

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod syntax;
pub mod syntax_rules;
pub mod token_rules;

use baseline::RuleCounts;
use lexer::{lex, Tok};
use rules::{check_all, is_known_rule};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One confirmed violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (catalog rule or `bad-allow`/`unused-allow`).
    pub rule: String,
    /// Path relative to the scanned root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All violations, sorted by (file, line, col, rule).
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Used `allow(…)` annotations per rule — the suppression
    /// ratchet's raw material (see [`baseline`]).
    pub allow_counts: BTreeMap<String, u64>,
}

/// How a lint run classifies, in decreasing severity. The binaries map
/// this (plus the ratchet result) onto distinct exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// At least one catalog-rule violation.
    Violations,
    /// Only annotation problems (`bad-allow` / `unused-allow`).
    BadAllow,
    /// No violations of any kind.
    Clean,
}

impl LintReport {
    /// Whether the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Severity class of this run (ratchet regressions are judged
    /// separately, against a [`baseline::Baseline`]).
    pub fn gate(&self) -> Gate {
        if self
            .violations
            .iter()
            .any(|v| !rules::META_RULES.contains(&v.rule.as_str()))
        {
            Gate::Violations
        } else if !self.violations.is_empty() {
            Gate::BadAllow
        } else {
            Gate::Clean
        }
    }

    /// Per-rule `(violations, allows)` counters for the ratchet. Every
    /// catalog and meta rule appears, so a baseline diff lists rules
    /// whose counts are zero too.
    pub fn rule_counts(&self) -> BTreeMap<String, RuleCounts> {
        let mut out: BTreeMap<String, RuleCounts> = rules::RULES
            .iter()
            .map(|r| r.id.to_owned())
            .chain(rules::META_RULES.iter().map(|r| (*r).to_owned()))
            .map(|id| (id, RuleCounts::default()))
            .collect();
        for v in &self.violations {
            out.entry(v.rule.clone()).or_default().violations += 1;
        }
        for (rule, n) in &self.allow_counts {
            out.entry(rule.clone()).or_default().allows += n;
        }
        out
    }

    /// Renders the human-readable report (one line per violation plus a
    /// summary).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                v.file, v.line, v.col, v.rule, v.message
            );
        }
        let files: std::collections::BTreeSet<&str> =
            self.violations.iter().map(|v| v.file.as_str()).collect();
        let _ = writeln!(
            out,
            "vread-lint: {} violation(s) in {} file(s); {} file(s) scanned",
            self.violations.len(),
            files.len(),
            self.files_scanned
        );
        out
    }

    /// Renders the machine-readable report (stable field order, sorted
    /// violations — byte-identical across runs).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"vread-lint\",\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
                json_escape(&v.rule),
                json_escape(&v.file),
                v.line,
                v.col,
                json_escape(&v.message)
            );
            out.push_str(if i + 1 < self.violations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Allow {
    rule: String,
    /// Inclusive line range the allow covers.
    from: u32,
    to: u32,
    /// Line of the annotation itself (for unused-allow reporting).
    at: u32,
    used: bool,
}

/// Parses every `vread-lint:` annotation out of the comment tokens.
/// Returns the allows plus any `bad-allow` violations.
fn parse_allows(toks: &[Tok<'_>]) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (ix, t) in toks.iter().enumerate() {
        // Only the tool-name-plus-colon marker makes a comment an
        // annotation attempt; prose merely naming the tool is left
        // alone. The marker is spliced so this comment stays prose.
        if !t.is_comment() || !t.text.contains(concat!("vread-lint", ":")) {
            continue;
        }
        // Doc comments (`///`, `//!`, `/**`, `/*!`) are documentation,
        // not annotations — they may *describe* the allow syntax.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let trailing = ix
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .is_some_and(|p| !p.is_comment() && p.line == t.line);
        let mut found_any = false;
        let mut rest = t.text;
        while let Some(pos) = rest.find("allow(") {
            rest = &rest[pos + "allow(".len()..];
            found_any = true;
            // Rule id runs to the first `,` or `)`; the reason is a
            // quoted string that may itself contain parentheses.
            let id_end = rest.find([',', ')']).unwrap_or(rest.len());
            let rule = rest[..id_end].trim().to_owned();
            let mut reason = String::new();
            if rest[id_end..].starts_with(',') {
                let after = &rest[id_end + 1..];
                if let Some(q0) = after.find('"') {
                    if let Some(q1) = after[q0 + 1..].find('"') {
                        reason = after[q0..=q0 + 1 + q1].to_owned();
                        rest = &after[q0 + q1 + 2..];
                    } else {
                        rest = "";
                    }
                } else {
                    rest = after;
                }
            } else {
                // No reason clause: skip past the rule id (and the `)`
                // if present) before scanning for the next allow.
                rest = &rest[(id_end + 1).min(rest.len())..];
            }
            let (rule, reason) = (rule.as_str(), reason.as_str());
            if !is_known_rule(rule) {
                bad.push(Violation {
                    rule: "bad-allow".to_owned(),
                    file: String::new(),
                    line: t.line,
                    col: t.col,
                    message: format!("allow names unknown rule `{rule}`"),
                });
                continue;
            }
            if reason.len() < 2 || !reason.starts_with('"') || !reason.ends_with('"') {
                bad.push(Violation {
                    rule: "bad-allow".to_owned(),
                    file: String::new(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "allow({rule}) must carry a quoted reason: \
                         allow({rule}, \"why this is safe\")"
                    ),
                });
                continue;
            }
            if reason.trim_matches('"').trim().is_empty() {
                bad.push(Violation {
                    rule: "bad-allow".to_owned(),
                    file: String::new(),
                    line: t.line,
                    col: t.col,
                    message: format!("allow({rule}) has an empty reason"),
                });
                continue;
            }
            let (from, to) = if trailing {
                (t.line, t.line)
            } else {
                standalone_span(toks, ix)
            };
            allows.push(Allow {
                rule: rule.to_owned(),
                from,
                to,
                at: t.line,
                used: false,
            });
        }
        if !found_any {
            bad.push(Violation {
                rule: "bad-allow".to_owned(),
                file: String::new(),
                line: t.line,
                col: t.col,
                message: "`vread-lint:` marker with no parsable \
                          allow(rule, \"reason\") clause"
                    .to_owned(),
            });
        }
    }
    (allows, bad)
}

/// Line span covered by a standalone allow at token index `ix`: the
/// statement or item starting at the next code token, through its
/// matching close brace or terminating `;`/`,` at depth zero.
fn standalone_span(toks: &[Tok<'_>], ix: usize) -> (u32, u32) {
    let mut start = None;
    for t in toks.iter().skip(ix + 1) {
        if !t.is_comment() {
            start = Some(t);
            break;
        }
    }
    let Some(start) = start else {
        // Annotation at end of file covers nothing beyond its own line.
        return (toks[ix].line, toks[ix].line);
    };
    let from = start.line;
    let mut depth = 0i32;
    let mut last = from;
    for t in toks.iter().skip(ix + 1) {
        if t.is_comment() {
            continue;
        }
        last = t.line;
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            // A `}` closing back to depth 0 ends an item body; any
            // closer going negative closes an *enclosing* scope (e.g.
            // the annotated statement was the last in its block).
            if (depth == 0 && t.is_punct('}')) || depth < 0 {
                return (from, t.line);
            }
        } else if depth == 0 && (t.is_punct(';') || t.is_punct(',')) {
            return (from, t.line);
        }
    }
    (from, last)
}

// ---------------------------------------------------------------------------
// Per-file and workspace entry points
// ---------------------------------------------------------------------------

/// Lints one source text. `virtual_path` determines path-scoped rules
/// and appears in the violations; it needs `/` separators.
pub fn lint_source(virtual_path: &str, src: &str) -> Vec<Violation> {
    lint_source_counted(virtual_path, src).0
}

/// Like [`lint_source`], but also returns the rule ids of every *used*
/// allow annotation (one entry per annotation — the ratchet's unit of
/// growth).
pub fn lint_source_counted(virtual_path: &str, src: &str) -> (Vec<Violation>, Vec<String>) {
    let toks = lex(src);
    let code: Vec<Tok<'_>> = toks.iter().filter(|t| !t.is_comment()).copied().collect();
    let (mut allows, mut out) = parse_allows(&toks);
    for v in &mut out {
        v.file = virtual_path.to_owned();
    }
    for c in check_all(virtual_path, &code) {
        let suppressed = allows
            .iter_mut()
            .find(|a| a.rule == c.rule && (a.from..=a.to).contains(&c.line));
        match suppressed {
            Some(a) => a.used = true,
            None => out.push(Violation {
                rule: c.rule.to_owned(),
                file: virtual_path.to_owned(),
                line: c.line,
                col: c.col,
                message: c.message,
            }),
        }
    }
    let mut used = Vec::new();
    for a in &allows {
        if a.used {
            used.push(a.rule.clone());
        } else {
            out.push(Violation {
                rule: "unused-allow".to_owned(),
                file: virtual_path.to_owned(),
                line: a.at,
                col: 1,
                message: format!(
                    "allow({}) suppresses nothing (lines {}..={}); remove it or \
                     move it next to the violation",
                    a.rule, a.from, a.to
                ),
            });
        }
    }
    (out, used)
}

/// Directory names the workspace walk never descends into anywhere in
/// the tree: build output, VCS state, vendored JS.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Whether `path` is the lint crate's own fixtures directory (which
/// contains deliberate violations and must not fail the self-check).
/// The skip is scoped to `crates/lint/…/fixtures` on purpose: a future
/// `fixtures/` directory of *real* code anywhere else in the workspace
/// must be scanned, not silently skipped by its bare name.
fn is_lint_fixture_dir(name: &str, path: &Path) -> bool {
    name == "fixtures"
        && path
            .to_string_lossy()
            .replace('\\', "/")
            .contains("crates/lint/")
}

/// Recursively collects the workspace's `.rs` files under `root`,
/// sorted for deterministic report order.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !is_lint_fixture_dir(&name, &path) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under `root` (skipping `target/`, `.git/`,
/// and `fixtures/`).
pub fn run_workspace(root: &Path) -> std::io::Result<LintReport> {
    let files = collect_rs_files(root)?;
    run_files(root, &files)
}

/// Lints an explicit file list, reporting paths relative to `root`.
pub fn run_files(root: &Path, files: &[PathBuf]) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let (violations, used) = lint_source_counted(&rel, &src);
        report.violations.extend(violations);
        for rule in used {
            *report.allow_counts.entry(rule).or_insert(0) += 1;
        }
        report.files_scanned += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok(report)
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src =
            "fn f() { let t = Instant::now(); // vread-lint: allow(wall-clock, \"test\")\n}\n";
        let v = lint_source("x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn standalone_allow_covers_item() {
        let src = "// vread-lint: allow(wall-clock, \"timing harness\")\n\
                   fn measure() {\n    let a = Instant::now();\n    let b = Instant::now();\n}\n";
        let v = lint_source("x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unused_allow_fails() {
        let src = "// vread-lint: allow(wall-clock, \"nothing here\")\nfn f() {}\n";
        let v = lint_source("x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unused-allow");
    }

    #[test]
    fn allow_without_reason_is_bad() {
        let src = "fn f() { let t = Instant::now(); } // vread-lint: allow(wall-clock)\n";
        let v = lint_source("x.rs", src);
        assert!(v.iter().any(|v| v.rule == "bad-allow"), "{v:?}");
        // The wall-clock violation itself still fires (no valid allow).
        assert!(v.iter().any(|v| v.rule == "wall-clock"), "{v:?}");
    }

    #[test]
    fn unknown_rule_is_bad() {
        let src = "// vread-lint: allow(no-such-rule, \"x\")\nfn f() {}\n";
        let v = lint_source("x.rs", src);
        assert!(v.iter().any(|v| v.rule == "bad-allow"), "{v:?}");
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let report = LintReport {
            violations: vec![Violation {
                rule: "wall-clock".into(),
                file: "a\"b.rs".into(),
                line: 1,
                col: 2,
                message: "x".into(),
            }],
            files_scanned: 1,
            ..Default::default()
        };
        let j = report.render_json();
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("\"files_scanned\": 1,"));
    }
}

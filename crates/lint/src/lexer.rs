//! A small lossless Rust lexer.
//!
//! `vread-lint` needs just enough lexical structure to (a) never match
//! rule patterns inside string literals or comments, and (b) read
//! suppression annotations *out of* comments. A full parser would be
//! overkill (and would drag in external crates, breaking the offline
//! build); a token stream with correct handling of the tricky cases —
//! nested block comments, raw strings with arbitrary `#` fences, byte
//! strings, char literals vs. lifetimes — is exactly enough.
//!
//! Whitespace is skipped; everything else (including comments) is
//! emitted with a 1-based line/column so diagnostics point at source.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, …).
    Ident,
    /// Lifetime (`'a`, `'static`), without the trailing ident rules.
    Lifetime,
    /// Numeric literal (integer or float, suffix included).
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), quotes
    /// and fences included in `text`.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// A single punctuation byte (`.`, `:`, `<`, …).
    Punct,
    /// `// …` comment (leading slashes included, newline excluded).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
}

/// One token with its source position.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The exact source slice.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl<'a> Tok<'a> {
    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens. Never panics: malformed input (unterminated
/// strings or comments) produces a final token running to end-of-file,
/// which is the right behavior for a linter (the compiler will report
/// the real error).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances line/col over src[from..to].
    let bump = |from: usize, to: usize, line: &mut u32, col: &mut u32| {
        for &c in &b[from..to] {
            if c == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        }
    };

    while i < b.len() {
        let start = i;
        let (sl, sc) = (line, col);
        let c = b[i];

        // -- whitespace ---------------------------------------------------
        if c.is_ascii_whitespace() {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            bump(start, i, &mut line, &mut col);
            continue;
        }

        // -- comments -----------------------------------------------------
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::LineComment,
                text: &src[start..i],
                line: sl,
                col: sc,
            });
            bump(start, i, &mut line, &mut col);
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.push(Tok {
                kind: TokKind::BlockComment,
                text: &src[start..i],
                line: sl,
                col: sc,
            });
            bump(start, i, &mut line, &mut col);
            continue;
        }

        // -- string-literal prefixes (r"", r#""#, b"", br#""#, b'') -------
        if c == b'r' || c == b'b' {
            // Candidate prefix run: `r`, `b`, `br`, `rb` (rb isn't real
            // Rust but accepting it is harmless), followed by `#`* then
            // a quote.
            let mut j = i;
            while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
                j += 1;
            }
            let mut hashes = 0usize;
            let mut k = j;
            while k < b.len() && b[k] == b'#' {
                hashes += 1;
                k += 1;
            }
            let raw = src[i..j].contains('r');
            if k < b.len() && b[k] == b'"' && (raw || hashes == 0) {
                i = if raw {
                    scan_raw_string(b, k, hashes)
                } else {
                    scan_string(b, k)
                };
                out.push(Tok {
                    kind: TokKind::Str,
                    text: &src[start..i],
                    line: sl,
                    col: sc,
                });
                bump(start, i, &mut line, &mut col);
                continue;
            }
            if j == i + 1 && c == b'b' && j < b.len() && b[j] == b'\'' {
                i = scan_char(b, j);
                out.push(Tok {
                    kind: TokKind::Char,
                    text: &src[start..i],
                    line: sl,
                    col: sc,
                });
                bump(start, i, &mut line, &mut col);
                continue;
            }
            // `r#ident` raw identifier.
            if c == b'r' && hashes == 1 && k < b.len() && is_ident_start(b[k]) {
                i = k;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: &src[start..i],
                    line: sl,
                    col: sc,
                });
                bump(start, i, &mut line, &mut col);
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        // -- plain strings ------------------------------------------------
        if c == b'"' {
            i = scan_string(b, i);
            out.push(Tok {
                kind: TokKind::Str,
                text: &src[start..i],
                line: sl,
                col: sc,
            });
            bump(start, i, &mut line, &mut col);
            continue;
        }

        // -- char literal vs lifetime -------------------------------------
        if c == b'\'' {
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                i = scan_char(b, i);
                out.push(Tok {
                    kind: TokKind::Char,
                    text: &src[start..i],
                    line: sl,
                    col: sc,
                });
            } else if i + 1 < b.len() && is_ident_start(b[i + 1]) {
                let mut k = i + 1;
                while k < b.len() && is_ident_cont(b[k]) {
                    k += 1;
                }
                if k < b.len() && b[k] == b'\'' {
                    // 'a' — char literal.
                    i = k + 1;
                    out.push(Tok {
                        kind: TokKind::Char,
                        text: &src[start..i],
                        line: sl,
                        col: sc,
                    });
                } else {
                    // 'a — lifetime.
                    i = k;
                    out.push(Tok {
                        kind: TokKind::Lifetime,
                        text: &src[start..i],
                        line: sl,
                        col: sc,
                    });
                }
            } else {
                // '%' style char literal (or stray quote at EOF).
                i = scan_char(b, i);
                out.push(Tok {
                    kind: TokKind::Char,
                    text: &src[start..i],
                    line: sl,
                    col: sc,
                });
            }
            bump(start, i, &mut line, &mut col);
            continue;
        }

        // -- identifiers --------------------------------------------------
        if is_ident_start(c) {
            while i < b.len() && is_ident_cont(b[i]) {
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::Ident,
                text: &src[start..i],
                line: sl,
                col: sc,
            });
            bump(start, i, &mut line, &mut col);
            continue;
        }

        // -- numbers ------------------------------------------------------
        if c.is_ascii_digit() {
            while i < b.len() && (is_ident_cont(b[i])) {
                i += 1;
            }
            // Fractional part: `.` followed by a digit (so `0..n` range
            // syntax and `0.method()` stay three tokens).
            if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
            }
            out.push(Tok {
                kind: TokKind::Number,
                text: &src[start..i],
                line: sl,
                col: sc,
            });
            bump(start, i, &mut line, &mut col);
            continue;
        }

        // -- punctuation --------------------------------------------------
        i += 1;
        out.push(Tok {
            kind: TokKind::Punct,
            text: &src[start..i],
            line: sl,
            col: sc,
        });
        bump(start, i, &mut line, &mut col);
    }
    out
}

/// Scans a `"…"` body starting at the opening quote; returns the index
/// one past the closing quote (or EOF).
fn scan_string(b: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Scans a raw string whose opening quote is at `open` with `hashes`
/// `#`-fence characters; returns the index one past the full closer.
fn scan_raw_string(b: &[u8], open: usize, hashes: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        if b[i] == b'"' {
            let mut k = i + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        i += 1;
    }
    b.len()
}

/// Scans a `'…'` char/byte-char body starting at the opening quote.
fn scan_char(b: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text.to_owned()))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = kinds(r##"let s = "Instant::now()"; // Instant::now()"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("Instant")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::LineComment && t.contains("Instant")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "Instant"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"a \" quote\"#; x";
        let toks = kinds(src);
        assert_eq!(toks[3].0, TokKind::Str);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let s = ' '; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "'y'"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "' '"));
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* outer /* inner */ still */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.ends_with("still */"));
        assert_eq!(toks[1].1, "ident");
    }

    #[test]
    fn numbers_and_floats() {
        let toks = kinds("fold(0.0, 1e3); 0..10; x.0");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Number && t == "0.0"));
        // Range syntax stays split.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Number && t == "10"));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}

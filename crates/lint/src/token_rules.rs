//! The token-window rules (lint v1).
//!
//! These rules pattern-match short windows of the code token stream
//! and need no structure beyond it: a `Instant::now` path, a narrowing
//! `as` cast, an iteration method on a hash-typed name. Structural
//! rules — confinement at call-path granularity, match-arm analysis —
//! live in [`crate::syntax_rules`] on top of [`crate::syntax`].

use crate::lexer::{Tok, TokKind};
use crate::rules::{cand, Candidate};
use std::collections::BTreeSet;

/// Runs every token rule over `code` (comment- and whitespace-free
/// tokens of one file). `path` uses `/` separators and is only
/// consulted for path-scoped rules (checked-cast).
pub fn check_token_rules(path: &str, code: &[Tok<'_>], out: &mut Vec<Candidate>) {
    wall_clock(code, out);
    unordered_iter(code, out);
    ambient_entropy(code, out);
    if checked_cast_in_scope(path) {
        checked_cast(code, out);
    }
    float_accum(code, out);
    threading(code, out);
}

/// checked-cast guards the cycle/byte accounting of the simulator and
/// the virtualization substrate; other crates stay unscoped to avoid
/// drowning the signal in index arithmetic.
pub fn checked_cast_in_scope(path: &str) -> bool {
    path.contains("crates/sim/src") || path.contains("crates/host/src")
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

fn wall_clock(code: &[Tok<'_>], out: &mut Vec<Candidate>) {
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("Instant")
            && matches!(code.get(i + 1), Some(n) if n.is_punct(':'))
            && matches!(code.get(i + 2), Some(n) if n.is_punct(':'))
            && matches!(code.get(i + 3), Some(n) if n.is_ident("now"))
        {
            out.push(cand(
                "wall-clock",
                t,
                "Instant::now() reads host wall-clock time; sim-visible code must \
                 derive time from World::now()"
                    .to_owned(),
            ));
        }
        if t.is_ident("SystemTime") {
            out.push(cand(
                "wall-clock",
                t,
                "SystemTime is host wall-clock state; sim-visible code must derive \
                 time from World::now()"
                    .to_owned(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Collects identifiers that this file declares (or ascribes) with a
/// `HashMap`/`HashSet` type: struct fields, `let` bindings with type
/// ascriptions, and `let x = HashMap::new()`-style initializers.
fn hash_named(code: &[Tok<'_>]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name: …HashMap<…>…` — a field or an ascription. Skip `a::b`
        // paths on either side of the colon.
        if matches!(code.get(i + 1), Some(n) if n.is_punct(':'))
            && !matches!(code.get(i + 2), Some(n) if n.is_punct(':'))
            && !matches!(i.checked_sub(1).and_then(|p| code.get(p)), Some(p) if p.is_punct(':'))
        {
            let mut depth = 0i32;
            for u in code.iter().take(code.len().min(i + 64)).skip(i + 2) {
                if depth == 0
                    && (u.is_punct(',')
                        || u.is_punct(';')
                        || u.is_punct('=')
                        || u.is_punct(')')
                        || u.is_punct('{')
                        || u.is_punct('}'))
                {
                    break;
                }
                if u.is_punct('<') || u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct('>') || u.is_punct(')') || u.is_punct(']') {
                    depth -= 1;
                } else if u.is_ident("HashMap") || u.is_ident("HashSet") {
                    names.insert(t.text.to_owned());
                    break;
                }
            }
        }
        // `let [mut] name … = … HashMap::… ;`
        if t.is_ident("let") {
            let mut j = i + 1;
            if matches!(code.get(j), Some(n) if n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = code.get(j).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            for u in code.iter().skip(j + 1).take(64) {
                if u.is_punct(';') {
                    break;
                }
                if u.is_ident("HashMap") || u.is_ident("HashSet") {
                    names.insert(name.text.to_owned());
                    break;
                }
            }
        }
    }
    names
}

fn unordered_iter(code: &[Tok<'_>], out: &mut Vec<Candidate>) {
    let names = hash_named(code);
    if names.is_empty() {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        // `name.iter()` / `reg.name.values()` — the receiver's last path
        // segment is a known hash-typed name.
        if t.kind == TokKind::Ident
            && names.contains(t.text)
            && matches!(code.get(i + 1), Some(n) if n.is_punct('.'))
        {
            if let Some(m) = code.get(i + 2) {
                if m.kind == TokKind::Ident
                    && ITER_METHODS.contains(&m.text)
                    && matches!(code.get(i + 3), Some(n) if n.is_punct('('))
                {
                    out.push(cand(
                        "unordered-iter",
                        t,
                        format!(
                            "`{}.{}()` iterates a HashMap/HashSet in RandomState order; \
                             use BTreeMap/BTreeSet or drain through a sorted buffer",
                            t.text, m.text
                        ),
                    ));
                }
            }
        }
        // `for pat in [&][mut] [recv.]name { …` — direct for-loop over
        // the collection.
        if t.is_ident("for") {
            // Find the `in` at paren-depth 0 (patterns may contain `(`).
            let mut depth = 0i32;
            let mut in_ix = None;
            for (j, u) in code
                .iter()
                .enumerate()
                .take(code.len().min(i + 24))
                .skip(i + 1)
            {
                if u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && u.is_ident("in") {
                    in_ix = Some(j);
                    break;
                }
            }
            let Some(in_ix) = in_ix else { continue };
            // Tokens between `in` and the loop body `{`.
            let mut expr: Vec<&Tok<'_>> = Vec::new();
            for u in code.iter().skip(in_ix + 1).take(12) {
                if u.is_punct('{') {
                    break;
                }
                expr.push(u);
            }
            let mut e = expr.as_slice();
            while let Some(first) = e.first() {
                if first.is_punct('&') || first.is_ident("mut") {
                    e = &e[1..];
                } else {
                    break;
                }
            }
            let target = match e {
                [x] => Some(x),
                [_, dot, x] if dot.is_punct('.') => Some(x),
                _ => None,
            };
            if let Some(x) = target {
                if x.kind == TokKind::Ident && names.contains(x.text) {
                    out.push(cand(
                        "unordered-iter",
                        x,
                        format!(
                            "`for … in {}` iterates a HashMap/HashSet in RandomState \
                             order; use BTreeMap/BTreeSet or drain through a sorted buffer",
                            x.text
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ambient-entropy
// ---------------------------------------------------------------------------

const ENTROPY_IDENTS: &[&str] = &[
    "RandomState",
    "DefaultHasher",
    "OsRng",
    "ThreadRng",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

fn ambient_entropy(code: &[Tok<'_>], out: &mut Vec<Candidate>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text) {
            out.push(cand(
                "ambient-entropy",
                t,
                format!(
                    "`{}` draws ambient entropy, which breaks bit-identical replay; \
                     seed explicitly via vread_sim::rng",
                    t.text
                ),
            ));
        }
        // `rand::random` / `rand::thread_rng` path heads.
        if t.is_ident("rand")
            && matches!(code.get(i + 1), Some(n) if n.is_punct(':'))
            && matches!(code.get(i + 2), Some(n) if n.is_punct(':'))
        {
            out.push(cand(
                "ambient-entropy",
                t,
                "the `rand` crate's ambient generators break bit-identical replay; \
                 seed explicitly via vread_sim::rng"
                    .to_owned(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// checked-cast
// ---------------------------------------------------------------------------

/// Target types for which an `as` cast can silently truncate a 64-bit
/// cycle or byte count. `usize`/`u64`/`i64`/`f64` are excluded: on the
/// supported 64-bit targets those are lossless widenings for the id and
/// counter types the accounting paths use.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

fn checked_cast(code: &[Tok<'_>], out: &mut Vec<Candidate>) {
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("as") {
            if let Some(ty) = code.get(i + 1) {
                if ty.kind == TokKind::Ident && NARROW_TYPES.contains(&ty.text) {
                    out.push(cand(
                        "checked-cast",
                        t,
                        format!(
                            "narrowing `as {}` can silently truncate accounting values; \
                             use try_into() or justify the cast",
                            ty.text
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// threading
// ---------------------------------------------------------------------------

/// Shared-state type and module names whose bare mention marks ad-hoc
/// concurrency. The bare ident `thread` is *not* in this list: the sim's
/// own vocabulary (ThreadId fields, `thread_host`, …) uses it heavily,
/// and `use std::thread;` alone does nothing — only the spawning tails
/// below actually create OS threads.
const THREADING_IDENTS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "mpsc",
    "rayon",
    "crossbeam",
];

/// `thread::…` path tails that create OS threads. Benign tails like
/// `thread::available_parallelism` stay unflagged.
const THREAD_SPAWN_TAILS: &[&str] = &["spawn", "scope", "Builder"];

fn threading(code: &[Tok<'_>], out: &mut Vec<Candidate>) {
    for (i, t) in code.iter().enumerate() {
        // `thread::spawn` / `thread::scope` / `thread::Builder` paths.
        if t.is_ident("thread")
            && matches!(code.get(i + 1), Some(n) if n.is_punct(':'))
            && matches!(code.get(i + 2), Some(n) if n.is_punct(':'))
            && matches!(code.get(i + 3),
                Some(n) if n.kind == TokKind::Ident && THREAD_SPAWN_TAILS.contains(&n.text))
        {
            out.push(cand(
                "threading",
                t,
                format!(
                    "`thread::{}` starts OS threads outside the sanctioned worker \
                     pool; route parallelism through vread_sim::par",
                    code[i + 3].text
                ),
            ));
        }
        // `.spawn(` method calls — scoped-thread and builder handles.
        if t.is_ident("spawn")
            && matches!(i.checked_sub(1).and_then(|p| code.get(p)), Some(p) if p.is_punct('.'))
            && matches!(code.get(i + 1), Some(n) if n.is_punct('('))
        {
            out.push(cand(
                "threading",
                t,
                "`.spawn(…)` starts an OS thread outside the sanctioned worker \
                 pool; route parallelism through vread_sim::par"
                    .to_owned(),
            ));
        }
        // Shared-state primitives and concurrency crates by name.
        if t.kind == TokKind::Ident
            && (THREADING_IDENTS.contains(&t.text)
                || (t.text.starts_with("Atomic") && t.text.len() > "Atomic".len()))
        {
            out.push(cand(
                "threading",
                t,
                format!(
                    "`{}` is cross-thread shared state; sim results must flow \
                     through vread_sim::par message passing instead",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// float-accum
// ---------------------------------------------------------------------------

fn float_accum(code: &[Tok<'_>], out: &mut Vec<Candidate>) {
    for (i, t) in code.iter().enumerate() {
        // `.sum::<f64>()` / `.product::<f32>()` turbofish reductions.
        if (t.is_ident("sum") || t.is_ident("product"))
            && matches!(code.get(i + 1), Some(n) if n.is_punct(':'))
            && matches!(code.get(i + 2), Some(n) if n.is_punct(':'))
            && matches!(code.get(i + 3), Some(n) if n.is_punct('<'))
            && matches!(code.get(i + 4), Some(n) if n.is_ident("f64") || n.is_ident("f32"))
        {
            out.push(cand(
                "float-accum",
                t,
                format!(
                    "`{}::<{}>()` accumulates floats in iteration order; assert the \
                     source order is fixed, or accumulate integers",
                    t.text,
                    code[i + 4].text
                ),
            ));
        }
        // `.fold(0.0, …)` — float seed reduction.
        if t.is_ident("fold") && matches!(code.get(i + 1), Some(n) if n.is_punct('(')) {
            if let Some(seed) = code.get(i + 2) {
                if seed.kind == TokKind::Number && seed.text.contains('.') {
                    out.push(cand(
                        "float-accum",
                        t,
                        "`fold` with a float seed accumulates in iteration order; \
                         assert the source order is fixed, or accumulate integers"
                            .to_owned(),
                    ));
                }
            }
        }
    }
}

//! `vread-lint` command-line entry point.
//!
//! ```text
//! vread-lint [--format text|json|sarif] [--root DIR] [--list-rules]
//!            [--baseline FILE] [--update-baseline] [FILE...]
//! ```
//!
//! With no files, lints the whole workspace (found by walking up from
//! `--root`/cwd to the first `Cargo.toml` declaring `[workspace]`) and
//! ratchets the per-rule violation/allow counts against
//! `<root>/lint-baseline.json` when that file exists (`--baseline`
//! overrides the path; `--update-baseline` rewrites it from this run).
//! Explicit file arguments skip the ratchet — partial scans would
//! undercount.
//!
//! Exit codes (stable):
//!
//! * `0` — clean
//! * `1` — at least one catalog-rule violation
//! * `2` — usage or I/O error
//! * `3` — only annotation problems (`bad-allow` / `unused-allow`)
//! * `4` — clean, but a per-rule count grew past the baseline

use std::path::PathBuf;
use std::process::ExitCode;
use vread_lint::Gate;

fn main() -> ExitCode {
    let mut format = "text".to_owned();
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                // `human` stays as an alias for the pre-SARIF spelling.
                Some("human") => format = "text".to_owned(),
                Some(f @ ("text" | "json" | "sarif")) => format = f.to_owned(),
                other => {
                    eprintln!("--format needs `text`, `json` or `sarif`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(f) => baseline_path = Some(PathBuf::from(f)),
                None => {
                    eprintln!("--baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update_baseline = true,
            "--list-rules" => {
                for r in vread_lint::rules::RULES {
                    println!("{:<16} {}", r.id, r.summary);
                }
                for id in vread_lint::rules::META_RULES {
                    println!("{id:<16} (meta rule, not suppressible)");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: vread-lint [--format text|json|sarif] [--root DIR] [--list-rules] \
                     [--baseline FILE] [--update-baseline] [FILE...]"
                );
                println!(
                    "exit codes: 0 clean, 1 violations, 2 usage/IO, 3 bad/stale allows, \
                     4 ratchet regression"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::from(2);
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            vread_lint::find_workspace_root(&cwd).unwrap_or(cwd)
        }
    };
    let workspace_mode = files.is_empty();

    let report = if workspace_mode {
        vread_lint::run_workspace(&root)
    } else {
        // Expand directory arguments; lint files as given.
        let mut expanded = Vec::new();
        for f in files {
            if f.is_dir() {
                match vread_lint::collect_rs_files(&f) {
                    Ok(fs) => expanded.extend(fs),
                    Err(e) => {
                        eprintln!("cannot walk {}: {e}", f.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                expanded.push(f);
            }
        }
        vread_lint::run_files(&root, &expanded)
    };

    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vread-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match format.as_str() {
        "json" => print!("{}", report.render_json()),
        "sarif" => print!("{}", vread_lint::sarif::render_sarif(&report)),
        _ => print!("{}", report.render_human()),
    }

    // The ratchet: workspace runs only (partial scans would undercount).
    let mut ratchet_regressed = false;
    if workspace_mode {
        let path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));
        let counts = report.rule_counts();
        if update_baseline {
            let b = vread_lint::baseline::Baseline::from_counts(&counts);
            if let Err(e) = std::fs::write(&path, b.render()) {
                eprintln!("vread-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("vread-lint: baseline written to {}", path.display());
        } else {
            match std::fs::read_to_string(&path) {
                Ok(text) => match vread_lint::baseline::Baseline::parse(&text) {
                    Ok(b) => {
                        for r in b.regressions(&counts) {
                            ratchet_regressed = true;
                            eprintln!(
                                "vread-lint: ratchet: {} {} grew {} -> {} (fix the new site \
                                 or consciously `--update-baseline`)",
                                r.rule, r.counter, r.baseline, r.current
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("vread-lint: {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                },
                // No baseline committed: nothing to ratchet against.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    eprintln!("vread-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    match report.gate() {
        Gate::Violations => ExitCode::from(1),
        Gate::BadAllow => ExitCode::from(3),
        Gate::Clean if ratchet_regressed => ExitCode::from(4),
        Gate::Clean => ExitCode::SUCCESS,
    }
}

//! `vread-lint` command-line entry point.
//!
//! ```text
//! vread-lint [--format human|json] [--root DIR] [--list-rules] [FILE...]
//! ```
//!
//! With no files, lints the whole workspace (found by walking up from
//! `--root`/cwd to the first `Cargo.toml` declaring `[workspace]`).
//! Exit codes: 0 clean, 1 violations, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = "human".to_owned();
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some(f @ ("human" | "json")) => format = f.to_owned(),
                other => {
                    eprintln!("--format needs `human` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in vread_lint::rules::RULES {
                    println!("{:<16} {}", r.id, r.summary);
                }
                for id in vread_lint::rules::META_RULES {
                    println!("{id:<16} (meta rule, not suppressible)");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: vread-lint [--format human|json] [--root DIR] [--list-rules] [FILE...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::from(2);
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            vread_lint::find_workspace_root(&cwd).unwrap_or(cwd)
        }
    };

    let report = if files.is_empty() {
        vread_lint::run_workspace(&root)
    } else {
        // Expand directory arguments; lint files as given.
        let mut expanded = Vec::new();
        for f in files {
            if f.is_dir() {
                match vread_lint::collect_rs_files(&f) {
                    Ok(fs) => expanded.extend(fs),
                    Err(e) => {
                        eprintln!("cannot walk {}: {e}", f.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                expanded.push(f);
            }
        }
        vread_lint::run_files(&root, &expanded)
    };

    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vread-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match format.as_str() {
        "json" => print!("{}", report.render_json()),
        _ => print!("{}", report.render_human()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

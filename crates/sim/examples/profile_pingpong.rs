//! Ad-hoc throughput probe for the engine's serial message hot path.
//!
//! Runs the same workload as the `engine/message_pingpong_100k` bench in a
//! flat loop, printing ns/event — handy for quick A/B timing without the
//! bench harness.

use std::time::Instant;

use vread_sim::prelude::*;

struct PingPong {
    left: u32,
}

struct Ball;

impl Actor for PingPong {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() || msg.is::<Ball>() {
            if self.left == 0 {
                return;
            }
            self.left -= 1;
            let me = ctx.me();
            ctx.send(me, Ball);
        }
    }
}

fn main() {
    const EVENTS: u32 = 1_000_000;
    const ROUNDS: usize = 30;
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let mut w = World::new(1);
        let a = w.add_actor("a", PingPong { left: EVENTS });
        w.send_now(a, Start);
        // vread-lint: allow(wall-clock, "host-side profiling harness; wall time never feeds back into the simulation")
        let t = Instant::now();
        w.run();
        let ns = t.elapsed().as_nanos() as f64 / f64::from(EVENTS);
        assert_eq!(w.events_processed(), u64::from(EVENTS) + 1);
        best = best.min(ns);
    }
    println!("pingpong: {best:.2} ns/event (best of {ROUNDS})");
}

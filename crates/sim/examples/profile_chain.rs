//! Wall-clock probe of the chain/scheduler path (mirrors the
//! `engine/chain_5stage_x2000` bench): 2000 five-stage CPU chains over
//! 5 threads on a 4-core host. Prints best-of-N ns/event.

use std::time::Instant;

use vread_sim::prelude::*;

struct Fin;
struct Sink;
impl Actor for Sink {
    fn handle(&mut self, _msg: BoxMsg, _ctx: &mut Ctx<'_>) {}
}

fn build() -> World {
    let mut w = World::new(1);
    let h = w.add_host("h", 4, 2.0);
    let ts: Vec<ThreadId> = (0..5).map(|i| w.add_thread(h, &format!("t{i}"))).collect();
    let sink = w.add_actor("sink", Sink);
    for _ in 0..2000 {
        let st: Vec<Stage> = ts
            .iter()
            .map(|&t| Stage::cpu(t, 10_000, CpuCategory::Other))
            .collect();
        w.start_chain(st, sink, Fin);
    }
    w
}

fn main() {
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..30 {
        let mut w = build();
        // vread-lint: allow(wall-clock, "host-side profiling harness; wall time never feeds back into the simulation")
        let t0 = Instant::now();
        w.run();
        let dt = t0.elapsed().as_nanos() as f64;
        events = w.events_processed();
        if dt < best {
            best = dt;
        }
    }
    println!(
        "chain: {:.0} ns total, {} events, {:.2} ns/event (best of 30)",
        best,
        events,
        best / events as f64
    );
}

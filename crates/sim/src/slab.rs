//! Free-list slab for in-flight chains.
//!
//! Chains are created and retired at very high rates (one per I/O request
//! hop in the data-path models), so the engine stores them in a slab
//! indexed directly by [`ChainId`] instead of a hash map: insert pops a
//! free slot (or grows the backing `Vec`), lookup is a bounds-checked
//! array access, and remove pushes the slot back on the free list.
//!
//! A [`ChainId`] packs `generation << 32 | slot`. The generation is bumped
//! every time a slot is vacated, so a stale id — e.g. a `ChainResume`
//! event racing a chain that already completed — misses cleanly instead of
//! resuming whatever chain happens to occupy the recycled slot.

use crate::chain::Chain;
use crate::ids::ChainId;

struct Slot {
    /// Incremented on each vacate; occupied ids must match.
    gen: u32,
    chain: Option<Chain>,
}

/// Slab of in-flight chains with generation-tagged ids.
#[derive(Default)]
pub(crate) struct ChainSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

fn pack(gen: u32, slot: u32) -> ChainId {
    ChainId::from_raw((u64::from(gen) << 32) | u64::from(slot))
}

// vread-lint: allow(checked-cast, "intentional bit-slice of the packed generation|slot id")
fn unpack(id: ChainId) -> (u32, u32) {
    let raw = id.raw();
    ((raw >> 32) as u32, raw as u32)
}

impl ChainSlab {
    pub(crate) fn new() -> Self {
        ChainSlab::default()
    }

    /// Number of chains currently in flight.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Stores `chain`, returning its id.
    pub(crate) fn insert(&mut self, chain: Chain) -> ChainId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.chain.is_none());
            s.chain = Some(chain);
            pack(s.gen, slot)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("chain slab overflow");
            self.slots.push(Slot {
                gen: 0,
                chain: Some(chain),
            });
            pack(0, slot)
        }
    }

    /// The chain for `id`, unless it already completed (stale generation).
    pub(crate) fn get_mut(&mut self, id: ChainId) -> Option<&mut Chain> {
        let (gen, slot) = unpack(id);
        let s = self.slots.get_mut(slot as usize)?;
        if s.gen != gen {
            return None;
        }
        s.chain.as_mut()
    }

    /// Removes and returns the chain for `id`, bumping the slot generation.
    pub(crate) fn remove(&mut self, id: ChainId) -> Option<Chain> {
        let (gen, slot) = unpack(id);
        let s = self.slots.get_mut(slot as usize)?;
        if s.gen != gen {
            return None;
        }
        let chain = s.chain.take()?;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        Some(chain)
    }

    /// In-flight chains in slot order (deterministic, for diagnostics).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (ChainId, &Chain)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            let slot = i.try_into().expect("slab slot index fits u32");
            s.chain.as_ref().map(|c| (pack(s.gen, slot), c))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::StageList;
    use crate::ids::ActorId;

    fn chain() -> Chain {
        Chain::new(StageList::new(), ActorId::from_raw(0), Box::new(()))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = ChainSlab::new();
        let a = s.insert(chain());
        let b = s.insert(chain());
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert!(s.get_mut(a).is_some());
        assert!(s.remove(a).is_some());
        assert_eq!(s.len(), 1);
        assert!(s.get_mut(a).is_none(), "removed id must miss");
        assert!(s.remove(a).is_none(), "double remove must miss");
        assert!(s.get_mut(b).is_some());
    }

    #[test]
    fn recycled_slot_gets_new_generation() {
        let mut s = ChainSlab::new();
        let a = s.insert(chain());
        s.remove(a).unwrap();
        let b = s.insert(chain());
        // Same slot, different generation: the stale id must not alias.
        assert_ne!(a, b);
        assert!(s.get_mut(a).is_none());
        assert!(s.get_mut(b).is_some());
    }

    #[test]
    fn iteration_is_slot_ordered() {
        let mut s = ChainSlab::new();
        let ids: Vec<ChainId> = (0..5).map(|_| s.insert(chain())).collect();
        s.remove(ids[2]).unwrap();
        let seen: Vec<ChainId> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(seen, vec![ids[0], ids[1], ids[3], ids[4]]);
    }
}

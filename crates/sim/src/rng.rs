//! Deterministic pseudo-random numbers for the simulation.
//!
//! The engine must be bit-for-bit reproducible across runs and platforms,
//! so it carries its own tiny SplitMix64/xoshiro-style generator instead of
//! depending on thread-local entropy. Workload generators in higher crates
//! draw from the world's RNG (or a fork of it) so a scenario is fully
//! described by its seed.

/// A small, fast, deterministic PRNG (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point without changing user-visible
        // behaviour for other seeds.
        SimRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // ranges used in workloads (≪ 2^48).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// An exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(1e-12);
        -mean * u.ln()
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks an independent generator (e.g. one per workload actor) whose
    /// stream does not perturb the parent's.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut r = SimRng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn exp_mean_close() {
        let mut r = SimRng::new(13);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            sum += r.exp(4.0);
        }
        let mean = sum / 20_000.0;
        assert!((mean - 4.0).abs() < 0.2, "exp mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut a = SimRng::new(5);
        let mut f = a.fork();
        // the fork's next value differs from the parent's next value
        assert_ne!(a.next_u64(), f.next_u64());
    }
}

//! A CFS-like fair CPU scheduler for simulated hosts.
//!
//! Each host has a fixed number of cores and a set of threads (vCPUs,
//! vhost-net I/O threads, hypervisor daemon threads, load generators).
//! Threads receive *work items* — the CPU stages of [`crate::Stage`]
//! chains — and become runnable whenever their work queue is non-empty.
//!
//! The policy mirrors Linux CFS closely enough to reproduce the phenomena
//! the paper measures:
//!
//! * **virtual runtime ordering** — the runnable thread with the smallest
//!   vruntime runs next; each host keeps one global run queue (the hosts in
//!   the paper are quad-cores; per-core queues + load balancing would add
//!   noise without changing the emergent behaviour);
//! * **slices** — a running thread is preempted after
//!   `clamp(latency / nr_runnable, min_granularity, latency)`;
//! * **wake-up placement** — a woken thread's vruntime is clamped to
//!   `min_vruntime − wakeup_bonus`, the CFS sleeper credit, so interactive
//!   I/O threads win the CPU quickly *when a core can be taken*;
//! * **wake-up preemption** — a woken thread preempts the running thread
//!   with the largest vruntime if it leads it by more than
//!   `wakeup_granularity`.
//!
//! This is where the paper's "I/O threads synchronization overhead"
//! (Figure 3) comes from: with 4 VMs' worth of vCPU + vhost threads on 4
//! cores, wakeups stop finding idle cores and inter-VM round trips absorb
//! run-queue latency.

use std::collections::{BTreeSet, VecDeque};

use crate::cpu::CpuCategory;
use crate::engine::World;
use crate::ids::{ChainId, HostId, ThreadId};
use crate::span::SpanId;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceDetail, TraceRef};

/// Tunable scheduler constants (per host).
#[derive(Debug, Clone)]
pub struct SchedParams {
    /// CFS `sched_latency`: target period in which every runnable thread
    /// runs once.
    pub latency: SimDuration,
    /// CFS `min_granularity`: minimum slice length.
    pub min_granularity: SimDuration,
    /// CFS `wakeup_granularity`: vruntime lead required for wake-up
    /// preemption.
    pub wakeup_granularity: SimDuration,
    /// Sleeper credit applied on wake-up placement (CFS uses
    /// `latency / 2`).
    pub wakeup_bonus: SimDuration,
    /// Direct cost of a context switch, charged to the incoming thread.
    pub ctx_switch_cycles: u64,
    /// Extra cost when a thread is dispatched on a core other than the
    /// one it last ran on (cache/TLB refill after migration). This is the
    /// mechanism behind the paper's Figure 3: background lookbusy VMs
    /// push the netperf VMs' threads off their warm cores.
    pub migration_cycles: u64,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            latency: SimDuration::from_millis(6),
            min_granularity: SimDuration::from_micros(750),
            wakeup_granularity: SimDuration::from_millis(1),
            wakeup_bonus: SimDuration::from_millis(3),
            ctx_switch_cycles: 3_000,
            migration_cycles: 26_000,
        }
    }
}

/// Converts cycles to wall nanoseconds at `ghz` (cycles per ns).
#[inline]
pub(crate) fn cycles_to_ns(cycles: f64, ghz: f64) -> u64 {
    (cycles / ghz).ceil().max(0.0) as u64
}

/// One queued unit of CPU work (a CPU stage of a chain).
#[derive(Debug)]
pub(crate) struct Work {
    pub chain: ChainId,
    pub cycles_left: f64,
    pub cat: CpuCategory,
    /// Span the executed cycles are attributed to ([`SpanId::NONE`] when
    /// untraced).
    pub span: SpanId,
}

/// Thread run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    /// No queued work.
    Idle,
    /// Runnable, waiting in the host run queue.
    Queued,
    /// Executing on core `core`.
    Running { core: usize },
}

/// Scheduler-side per-thread state.
#[derive(Debug)]
pub(crate) struct ThreadSched {
    pub host: HostId,
    pub name: String,
    pub vr: u64,
    pub state: TState,
    pub work: VecDeque<Work>,
    /// The core this thread last ran on (cache affinity).
    pub prev_core: Option<usize>,
    /// When the thread last entered the run queue (for span queue-wait
    /// attribution; only read while `state == Queued`).
    pub queued_at: SimTime,
}

/// What a core is currently doing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Running {
    pub thread: u32,
    pub slice_end: SimTime,
    pub charged_until: SimTime,
}

/// One core of a host.
#[derive(Debug, Default)]
pub(crate) struct Core {
    pub running: Option<Running>,
    /// Timer generation; stale `CoreTimer` events are ignored.
    pub gen: u64,
}

/// Scheduler-side per-host state.
#[derive(Debug)]
pub(crate) struct HostSched {
    pub name: String,
    /// Clock frequency in cycles per nanosecond (== GHz).
    pub ghz: f64,
    pub cores: Vec<Core>,
    /// Runnable (not running) threads, ordered by `(vruntime, id)`.
    pub runq: BTreeSet<(u64, u32)>,
    /// Monotonic minimum vruntime reference for wake-up placement.
    pub min_vr: u64,
    pub params: SchedParams,
    /// Shared-LLC contention factor: CPU work on this host (other than
    /// the polluters themselves) is inflated by this factor. 1.0 = no
    /// pressure. Calibrated against the paper's Figure 3 (two 85%
    /// lookbusy VMs cost an inter-VM TCP_RR pair ≈20%).
    pub cache_pressure: f64,
    /// Index of this host's first core in the world's core-timer table.
    pub core_base: usize,
}

impl HostSched {
    fn nr_runnable(&self) -> usize {
        self.runq.len() + self.cores.iter().filter(|c| c.running.is_some()).count()
    }

    fn quantum(&self) -> SimDuration {
        let nr = self.nr_runnable().max(1) as u64;
        (self.params.latency / nr).clamp(self.params.min_granularity, self.params.latency)
    }
}

/// All scheduler state of the world.
#[derive(Debug, Default)]
pub(crate) struct Sched {
    pub hosts: Vec<HostSched>,
    pub threads: Vec<ThreadSched>,
}

impl Sched {
    pub fn add_host(
        &mut self,
        name: &str,
        cores: usize,
        ghz: f64,
        params: SchedParams,
        core_base: usize,
    ) -> HostId {
        assert!(cores > 0, "a host needs at least one core");
        assert!(ghz > 0.0, "clock frequency must be positive");
        let id = HostId::from_raw(self.hosts.len().try_into().expect("host table fits u16"));
        self.hosts.push(HostSched {
            name: name.to_owned(),
            ghz,
            cores: (0..cores).map(|_| Core::default()).collect(),
            runq: BTreeSet::new(),
            min_vr: 0,
            params,
            cache_pressure: 1.0,
            core_base,
        });
        id
    }

    pub fn add_thread(&mut self, host: HostId, name: &str) -> ThreadId {
        assert!((host.index()) < self.hosts.len(), "unknown host {host}");
        let id = ThreadId::from_raw(
            self.threads
                .len()
                .try_into()
                .expect("thread table fits u32"),
        );
        self.threads.push(ThreadSched {
            host,
            name: name.to_owned(),
            vr: 0,
            state: TState::Idle,
            work: VecDeque::new(),
            prev_core: None,
            queued_at: SimTime::ZERO,
        });
        id
    }
}

// ---------------------------------------------------------------------------
// Scheduling logic, implemented on `World` because it must push events and
// touch accounting/chains.
// ---------------------------------------------------------------------------

impl World {
    /// Queues a CPU work item on `thread`, waking it if idle.
    pub(crate) fn sched_enqueue(
        &mut self,
        thread: ThreadId,
        chain: ChainId,
        cycles: u64,
        cat: CpuCategory,
        span: SpanId,
    ) {
        let tix = thread.index();
        assert!(tix < self.sched.threads.len(), "unknown thread {thread}");
        let host = self.sched.threads[tix].host;
        // LLC pollution: cache-hungry background load (lookbusy) slows
        // everyone else's memory-bound work on the same socket.
        let pressure = if cat == CpuCategory::Lookbusy {
            1.0
        } else {
            self.sched.hosts[host.index()].cache_pressure
        };
        let th = &mut self.sched.threads[tix];
        th.work.push_back(Work {
            chain,
            cycles_left: cycles as f64 * pressure,
            cat,
            span,
        });
        if th.state == TState::Idle {
            self.wake_thread(thread);
        }
    }

    /// Wake-up path: place in run queue with sleeper credit, then take an
    /// idle core or try wake-up preemption.
    fn wake_thread(&mut self, thread: ThreadId) {
        let tix = thread.index();
        let host = self.sched.threads[tix].host;
        let hix = host.index();
        let (bonus_ns, wakeup_gran_ns, min_vr) = {
            let h = &self.sched.hosts[hix];
            // Reference vruntime: the smallest among currently runnable /
            // running threads (CFS's cfs_rq->min_vruntime), falling back
            // to the monotonic watermark when the host is idle.
            let mut ref_vr = h.runq.iter().next().map(|&(vr, _)| vr);
            for core in &h.cores {
                if let Some(r) = core.running {
                    let vvr = self.sched.threads[r.thread as usize].vr;
                    ref_vr = Some(ref_vr.map_or(vvr, |m: u64| m.min(vvr)));
                }
            }
            (
                h.params.wakeup_bonus.as_nanos(),
                h.params.wakeup_granularity.as_nanos(),
                ref_vr.unwrap_or(h.min_vr),
            )
        };
        {
            let now = self.now();
            let th = &mut self.sched.threads[tix];
            th.vr = th.vr.max(min_vr.saturating_sub(bonus_ns));
            th.state = TState::Queued;
            th.queued_at = now;
            let vr = th.vr;
            self.sched.hosts[hix].runq.insert((vr, thread.raw()));
        }

        // Prefer an idle core — the thread's previous (cache-warm) core
        // first, like select_idle_sibling.
        let prev = self.sched.threads[tix].prev_core;
        let idle = match prev {
            Some(p) if self.sched.hosts[hix].cores[p].running.is_none() => Some(p),
            _ => self.sched.hosts[hix]
                .cores
                .iter()
                .position(|c| c.running.is_none()),
        };
        if let Some(cix) = idle {
            self.install(host, cix);
            return;
        }

        // Wake-up preemption: real CFS only tests the wakee's selected
        // CPU (wake affinity), so a wakeup that lands on a core whose
        // current thread is not far ahead in vruntime simply queues — the
        // source of the paper's I/O-thread synchronization delay. We
        // model the selection with a deterministic pseudo-random pick.
        let woken_vr = self.sched.threads[tix].vr;
        let ncores = self.sched.hosts[hix].cores.len() as u64;
        let cix = self.rng.below(ncores) as usize;
        if let Some(r) = self.sched.hosts[hix].cores[cix].running {
            let victim_vr = self.sched.threads[r.thread as usize].vr;
            if woken_vr + wakeup_gran_ns < victim_vr {
                self.preempt(host, cix);
                self.install(host, cix);
            }
        }
    }

    /// Charges all running cores up to the current time, so accounting
    /// reads taken between events (e.g. after `run_until`) are exact.
    pub fn sync_accounting(&mut self) {
        let now = self.now();
        for hix in 0..self.sched.hosts.len() {
            let host = crate::ids::HostId::from_raw(hix.try_into().expect("host index fits u16"));
            for cix in 0..self.sched.hosts[hix].cores.len() {
                self.charge_core(host, cix, now);
            }
        }
    }

    /// Charges a preempted thread and returns it to the run queue.
    fn preempt(&mut self, host: HostId, cix: usize) {
        if self.tracer.is_enabled() {
            if let Some(r) = self.sched.hosts[host.index()].cores[cix].running {
                let now = self.now();
                self.tracer.record(
                    now,
                    crate::trace::TraceKind::Preempt,
                    TraceRef::Thread(ThreadId::from_raw(r.thread)),
                    TraceDetail::Core {
                        core: cix.try_into().expect("core index fits u32"),
                        migrated: false,
                    },
                );
            }
        }
        self.charge_core(host, cix, self.now());
        let hix = host.index();
        let r = self.sched.hosts[hix].cores[cix]
            .running
            .take()
            .expect("preempting an idle core");
        self.sched.hosts[hix].cores[cix].gen += 1;
        let now = self.now();
        let th = &mut self.sched.threads[r.thread as usize];
        th.state = TState::Queued;
        th.queued_at = now;
        let key = (th.vr, r.thread);
        self.sched.hosts[hix].runq.insert(key);
    }

    /// Installs the minimum-vruntime runnable thread on an idle core (or
    /// leaves the core idle if the run queue is empty).
    fn install(&mut self, host: HostId, cix: usize) {
        let hix = host.index();
        debug_assert!(self.sched.hosts[hix].cores[cix].running.is_none());
        let Some((vr, traw)) = self.sched.hosts[hix].runq.pop_first() else {
            self.sched.hosts[hix].cores[cix].gen += 1;
            return;
        };
        let now = self.now();
        let (quantum, ghz, switch_cycles, migration_cycles) = {
            let h = &mut self.sched.hosts[hix];
            h.min_vr = h.min_vr.max(vr);
            (
                h.quantum(),
                h.ghz,
                h.params.ctx_switch_cycles,
                h.params.migration_cycles,
            )
        };
        // Direct context-switch cost, plus the cache-refill cost when the
        // thread migrated off its previous core.
        let migrated = matches!(self.sched.threads[traw as usize].prev_core, Some(p) if p != cix);
        let total_cycles = switch_cycles + if migrated { migration_cycles } else { 0 };
        let switch_ns = cycles_to_ns(total_cycles as f64, ghz);
        {
            let th = &mut self.sched.threads[traw as usize];
            th.state = TState::Running { core: cix };
            th.prev_core = Some(cix);
            th.vr += switch_ns;
        }
        if migrated {
            self.metrics.incr_to(self.m_sched_migrations);
        }
        self.acct.add(
            traw as usize,
            CpuCategory::Other,
            total_cycles as f64,
            switch_ns,
        );
        if self.spans.is_enabled() {
            // Context-switch/migration overhead belongs to no read — it
            // lands in the recorder's unattributed pool so the cycle
            // conservation invariant still holds.
            self.spans
                .charge(SpanId::NONE, CpuCategory::Other, total_cycles as f64, now);
            // Attribute the time this thread spent waiting in the run
            // queue (and this dispatch) to the span of the work it is
            // about to execute.
            let th = &self.sched.threads[traw as usize];
            if let Some(w) = th.work.front() {
                let wait_ns = now.since(th.queued_at).as_nanos();
                self.spans.queue_wait(w.span, wait_ns);
            }
        }
        if self.tracer.is_enabled() {
            self.tracer.record(
                now,
                crate::trace::TraceKind::Dispatch,
                TraceRef::Thread(ThreadId::from_raw(traw)),
                TraceDetail::Core {
                    core: cix.try_into().expect("core index fits u32"),
                    migrated,
                },
            );
        }
        let start = now + SimDuration::from_nanos(switch_ns);
        self.sched.hosts[hix].cores[cix].running = Some(Running {
            thread: traw,
            slice_end: start + quantum,
            charged_until: start,
        });
        self.reprogram(host, cix);
    }

    /// Accounts executed time on `core` up to `upto`.
    fn charge_core(&mut self, host: HostId, cix: usize, upto: SimTime) {
        let hix = host.index();
        let ghz = self.sched.hosts[hix].ghz;
        let Some(r) = self.sched.hosts[hix].cores[cix].running.as_mut() else {
            return;
        };
        if upto <= r.charged_until {
            return;
        }
        let ns = upto.since(r.charged_until).as_nanos();
        r.charged_until = upto;
        let traw = r.thread;
        let cycles = ns as f64 * ghz;
        let th = &mut self.sched.threads[traw as usize];
        th.vr += ns;
        let (cat, span) = if let Some(w) = th.work.front_mut() {
            w.cycles_left = (w.cycles_left - cycles).max(0.0);
            (w.cat, w.span)
        } else {
            (CpuCategory::Other, SpanId::NONE)
        };
        self.acct.add(traw as usize, cat, cycles, ns);
        self.spans.charge(span, cat, cycles, upto);
    }

    /// Programs the core timer for the earlier of slice expiry and
    /// front-work completion.
    fn reprogram(&mut self, host: HostId, cix: usize) {
        let hix = host.index();
        let ghz = self.sched.hosts[hix].ghz;
        let r = self.sched.hosts[hix].cores[cix]
            .running
            .expect("reprogramming an idle core");
        let th = &self.sched.threads[r.thread as usize];
        let work_end = match th.work.front() {
            Some(w) => r.charged_until + SimDuration::from_nanos(cycles_to_ns(w.cycles_left, ghz)),
            // No work queued right now (mid-timer window); fire at the
            // slice end so the core gets re-evaluated.
            None => r.slice_end,
        };
        let t = work_end.min(r.slice_end).max(self.now());
        let gen = {
            let core = &mut self.sched.hosts[hix].cores[cix];
            core.gen += 1;
            core.gen
        };
        self.push_core_timer(t, host, cix, gen);
    }

    /// Handles a core timer: charge, complete finished work, then either
    /// continue, rotate, or idle the core.
    pub(crate) fn on_core_timer(&mut self, host: HostId, cix: usize, gen: u64) {
        let hix = host.index();
        if self.sched.hosts[hix].cores[cix].gen != gen {
            return; // stale timer
        }
        let now = self.now();
        self.charge_core(host, cix, now);
        let r = match self.sched.hosts[hix].cores[cix].running {
            Some(r) => r,
            None => return,
        };
        let tix = r.thread as usize;

        // Pop and complete the front work item if it is done.
        let completed = {
            let th = &mut self.sched.threads[tix];
            match th.work.front() {
                Some(w) if w.cycles_left < 0.5 => th.work.pop_front(),
                _ => None,
            }
        };
        if let Some(w) = completed {
            // May enqueue new work on this or other threads — and the
            // resulting wake-up may *preempt this very core*. Detect that
            // via the timer generation and stop: the preemption already
            // rescheduled everything.
            let gen_before = self.sched.hosts[hix].cores[cix].gen;
            self.advance_chain(w.chain);
            let core = &self.sched.hosts[hix].cores[cix];
            if core.gen != gen_before || core.running.map(|r2| r2.thread) != Some(r.thread) {
                // This thread was preempted mid-completion; if it has no
                // work left it must not linger in the run queue.
                let th = &mut self.sched.threads[tix];
                if th.work.is_empty() && th.state == TState::Queued {
                    let key = (th.vr, r.thread);
                    th.state = TState::Idle;
                    self.sched.hosts[hix].runq.remove(&key);
                }
                return;
            }
        }

        let has_work = !self.sched.threads[tix].work.is_empty();
        let slice_expired = now >= r.slice_end;
        let rq_waiting = !self.sched.hosts[hix].runq.is_empty();

        if !has_work {
            self.sched.threads[tix].state = TState::Idle;
            self.sched.hosts[hix].cores[cix].running = None;
            self.sched.hosts[hix].cores[cix].gen += 1;
            self.install(host, cix);
        } else if slice_expired && rq_waiting {
            // Rotate: requeue current, run the minimum-vruntime thread
            // (which may be the same thread if it still has the smallest
            // vruntime).
            let vr = self.sched.threads[tix].vr;
            self.sched.threads[tix].state = TState::Queued;
            self.sched.threads[tix].queued_at = now;
            self.sched.hosts[hix].runq.insert((vr, r.thread));
            self.sched.hosts[hix].cores[cix].running = None;
            self.sched.hosts[hix].cores[cix].gen += 1;
            self.install(host, cix);
        } else {
            if slice_expired {
                // Alone on the queue: grant a fresh slice.
                let q = self.sched.hosts[hix].quantum();
                if let Some(run) = self.sched.hosts[hix].cores[cix].running.as_mut() {
                    run.slice_end = now + q;
                }
            }
            self.reprogram(host, cix);
        }
    }

    /// Sets the shared-cache contention factor of `host` (see
    /// [`SchedParams`] docs; scenario builders set ≈1.12 per 85%-lookbusy
    /// background VM).
    pub fn set_cache_pressure(&mut self, host: HostId, factor: f64) {
        assert!(factor >= 1.0, "pressure factor below 1 is meaningless");
        self.sched.hosts[host.index()].cache_pressure = factor;
    }

    /// Number of runnable (queued + running) threads on a host. Exposed
    /// for tests and harness diagnostics.
    pub fn runnable_threads(&self, host: HostId) -> usize {
        self.sched.hosts[host.index()].nr_runnable()
    }

    /// The host a thread belongs to.
    pub fn thread_host(&self, thread: ThreadId) -> HostId {
        self.sched.threads[thread.index()].host
    }

    /// The clock frequency of a host in GHz (cycles per nanosecond).
    pub fn host_ghz(&self, host: HostId) -> f64 {
        self.sched.hosts[host.index()].ghz
    }

    /// Changes a host's clock frequency (the paper's `cpufreq-set`).
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not positive.
    pub fn set_host_ghz(&mut self, host: HostId, ghz: f64) {
        assert!(ghz > 0.0, "clock frequency must be positive");
        self.sched.hosts[host.index()].ghz = ghz;
    }

    /// Number of cores on a host.
    pub fn host_cores(&self, host: HostId) -> usize {
        self.sched.hosts[host.index()].cores.len()
    }

    /// The diagnostic name a thread was registered with.
    pub fn thread_name(&self, thread: ThreadId) -> &str {
        &self.sched.threads[thread.index()].name
    }

    /// The diagnostic name a host was registered with.
    pub fn host_name(&self, host: HostId) -> &str {
        &self.sched.hosts[host.index()].name
    }

    /// Number of registered hosts (host ids are `0..num_hosts`).
    pub fn num_hosts(&self) -> usize {
        self.sched.hosts.len()
    }

    /// Depth of a host's run queue: threads runnable but *not* on a core.
    /// This is the contention signal the timeline sampler tracks — it
    /// rises when vCPUs + I/O threads outnumber physical cores.
    pub fn host_runq_depth(&self, host: HostId) -> usize {
        self.sched.hosts[host.index()].runq.len()
    }

    /// Longest time any currently-queued thread on `host` has been
    /// waiting for a core (zero when the run queue is empty). This is the
    /// paper's I/O-thread scheduling delay, observed at one instant.
    pub fn host_max_queued_delay(&self, host: HostId) -> SimDuration {
        let now = self.now();
        self.sched
            .threads
            .iter()
            .filter(|th| th.host == host && th.state == TState::Queued)
            .map(|th| now.since(th.queued_at))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

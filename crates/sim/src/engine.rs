//! The discrete-event world: event heap, actors, chains, resources.
//!
//! [`World`] owns everything; actors are dispatched one at a time (their
//! slot is temporarily vacated so they can freely mutate the world through
//! [`Ctx`]). All actor-to-actor communication flows through the event
//! queue, so there is no reentrancy and event ordering is fully
//! deterministic (time, then insertion sequence).
//!
//! # Hot-path layout
//!
//! Three structures carry nearly all of the run-loop cost, and each is
//! shaped to avoid per-event work:
//!
//! * **Same-time fast lane** — events scheduled for the current instant
//!   (`send_now`, zero delays) go to a FIFO ring buffer instead of the
//!   time-ordered heap. Because the global sequence number is monotonic,
//!   anything pushed "at now" sorts after every pending same-time heap
//!   entry, so FIFO order *is* `(time, seq)` order; RPC-style message
//!   ping-pong never touches the `BinaryHeap` at all.
//! * **Chain slab** — in-flight chains live in a free-list slab indexed
//!   directly by [`ChainId`] (generation-tagged against stale resumes)
//!   rather than a hash map; see [`crate::slab`].
//! * **Unboxed internal events** — engine-internal events (core timers,
//!   chain resumes) are plain enum variants, and a boxed zero-sized
//!   completion message does not allocate, so steady-state event traffic
//!   is allocation-free.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::chain::{Chain, Stage, StageList};
use crate::cpu::{CpuAccounting, CpuCategory};
use crate::ext::Extensions;
use crate::ids::{ActorId, BlockDevId, ChainId, HostId, LinkId, ShardId, ThreadId};
use crate::job::{JobHandle, Jobs};
use crate::metrics::Metrics;
use crate::msg::BoxMsg;
use crate::resources::{BlockDev, Link};
use crate::rng::SimRng;
use crate::sched::{Sched, SchedParams};
use crate::slab::ChainSlab;
use crate::span::{SpanId, SpanRecorder};
use crate::time::{SimDuration, SimTime};
use crate::timeline::Timeline;
use crate::trace::{TraceDetail, TraceKind, TraceRef, Tracer};

/// A component that receives messages and reacts by scheduling work,
/// sending messages, and mutating shared state.
///
/// Actors are registered with [`World::add_actor`] and addressed by
/// [`ActorId`]. They are `'static` because the world owns them.
pub trait Actor: 'static {
    /// Handles one message. `msg` is type-erased; use
    /// [`crate::msg::downcast`] or `msg.is::<T>()` to interpret it.
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>);
}

enum EvKind {
    Deliver {
        to: ActorId,
        msg: BoxMsg,
    },
    CoreTimer {
        host: HostId,
        core: usize,
        gen: u64,
    },
    ChainResume {
        chain: ChainId,
    },
    /// Timeline sampler tick (see [`crate::timeline`]). An ordinary
    /// `(time, seq)`-keyed event, so sampling instants replay
    /// identically at any `--engine-threads N`.
    TimelineTick,
}

struct HeapEv {
    t: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

struct ActorSlot {
    actor: Option<Box<dyn Actor>>,
    name: String,
}

/// A cross-shard message posted with [`World::post_remote`], waiting in
/// the source world's outbox until the engine exchanges it at the next
/// lookahead boundary (see [`crate::par`]).
pub(crate) struct Outbound {
    /// Arrival time at the target shard (source `now` + delay).
    pub(crate) at: SimTime,
    /// Source-shard sequence number — with the source shard id this is
    /// the canonical exchange-order key that keeps delivery order (and
    /// therefore target-side `(time, seq)` tie-breaks) independent of
    /// the worker-thread count.
    pub(crate) seq: u64,
    /// Target shard.
    pub(crate) shard: ShardId,
    /// Target actor, addressed in the target shard's id space.
    pub(crate) to: ActorId,
    pub(crate) msg: BoxMsg,
}

/// Armed-timer slot of one core. Each core has at most one *valid*
/// pending [`EvKind::CoreTimer`] at any time (re-arming always bumps the
/// core's generation, invalidating the previous timer), so core timers
/// live in a flat per-core table instead of the heap: arming is a slot
/// overwrite and stale timers vanish instead of firing as no-ops.
struct CoreTimerSlot {
    host: HostId,
    core: u32,
    /// `(fire_time, seq, gen)` when armed.
    armed: Option<(SimTime, u64, u64)>,
}

/// The simulation world. See the crate docs for an end-to-end example.
pub struct World {
    now: SimTime,
    seq: u64,
    events_processed: u64,
    /// Single-event buffer in front of `fifo`: the earliest same-instant
    /// event. Serial request/response traffic (one event in flight) lives
    /// entirely in this slot and never touches the ring buffer.
    next_now: Option<(u64, EvKind)>,
    /// Fast lane for events scheduled at the current instant (their time
    /// is implicitly `now`). Invariant: entries are in ascending `seq`
    /// order, all larger than `next_now`'s seq and larger than any
    /// same-time heap entry pushed before time advanced to `now`.
    fifo: VecDeque<(u64, EvKind)>,
    heap: BinaryHeap<HeapEv>,
    /// One slot per core across all hosts (see [`CoreTimerSlot`]).
    core_timers: Vec<CoreTimerSlot>,
    /// Number of currently armed `core_timers` slots.
    armed_timers: usize,
    actors: Vec<ActorSlot>,
    pub(crate) sched: Sched,
    chains: ChainSlab,
    links: Vec<Link>,
    devs: Vec<BlockDev>,
    /// Per-thread, per-category CPU accounting.
    pub acct: CpuAccounting,
    /// Counters and sample distributions recorded by workloads.
    pub metrics: Metrics,
    /// Pre-interned id for the scheduler's migration counter (bumped on
    /// every cross-core install — far too hot for a string lookup).
    pub(crate) m_sched_migrations: crate::metrics::CounterId,
    /// The world's deterministic RNG.
    pub rng: SimRng,
    /// Typed blackboard for shared hardware/software state (page caches,
    /// filesystems, mount tables …).
    pub ext: Extensions,
    /// Optional bounded event trace (see [`crate::trace`]).
    pub tracer: Tracer,
    /// Optional causal span recorder — the flight recorder (see
    /// [`crate::span`]). Disabled by default; enabling it attributes
    /// every charged cycle and every [`Stage::Copy`] to a span.
    pub spans: SpanRecorder,
    /// Registered jobs and their completion state (see [`crate::job`]).
    pub jobs: Jobs,
    /// Optional telemetry timeline (see [`crate::timeline`]). Disabled
    /// by default; [`World::start_timeline`] turns sampling on.
    pub timeline: Timeline,
    /// Cross-shard messages awaiting exchange at the next lookahead
    /// boundary (see [`crate::par`]). Always empty outside sharded runs.
    outbox: Vec<Outbound>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("actors", &self.actors.len())
            .field(
                "pending_events",
                &(self.heap.len()
                    + self.fifo.len()
                    + usize::from(self.next_now.is_some())
                    + self.armed_timers),
            )
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl World {
    /// Creates an empty world seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        let mut metrics = Metrics::new();
        let m_sched_migrations = metrics.register_counter("sched_migrations");
        World {
            now: SimTime::ZERO,
            seq: 0,
            events_processed: 0,
            next_now: None,
            fifo: VecDeque::new(),
            heap: BinaryHeap::new(),
            core_timers: Vec::new(),
            armed_timers: 0,
            actors: Vec::new(),
            sched: Sched::default(),
            chains: ChainSlab::new(),
            links: Vec::new(),
            devs: Vec::new(),
            acct: CpuAccounting::new(),
            metrics,
            m_sched_migrations,
            rng: SimRng::new(seed),
            ext: Extensions::new(),
            tracer: Tracer::new(),
            spans: SpanRecorder::new(),
            jobs: Jobs::default(),
            timeline: Timeline::default(),
            outbox: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    // -- construction -------------------------------------------------------

    /// Adds a host with `cores` cores at `ghz` GHz and default scheduler
    /// parameters.
    pub fn add_host(&mut self, name: &str, cores: usize, ghz: f64) -> HostId {
        self.add_host_with_params(name, cores, ghz, SchedParams::default())
    }

    /// Adds a host with explicit scheduler parameters.
    pub fn add_host_with_params(
        &mut self,
        name: &str,
        cores: usize,
        ghz: f64,
        params: SchedParams,
    ) -> HostId {
        let core_base = self.core_timers.len();
        let id = self.sched.add_host(name, cores, ghz, params, core_base);
        for c in 0..cores {
            self.core_timers.push(CoreTimerSlot {
                host: id,
                core: c.try_into().expect("core count fits u32"),
                armed: None,
            });
        }
        id
    }

    /// Adds a schedulable thread to `host`.
    pub fn add_thread(&mut self, host: HostId, name: &str) -> ThreadId {
        let t = self.sched.add_thread(host, name);
        self.acct.ensure(t.index());
        t
    }

    /// Registers a network link.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        let id = LinkId::from_raw(self.links.len().try_into().expect("link table fits u32"));
        self.links.push(link);
        id
    }

    /// Registers a block device.
    pub fn add_blockdev(&mut self, dev: BlockDev) -> BlockDevId {
        let id = BlockDevId::from_raw(self.devs.len().try_into().expect("device table fits u32"));
        self.devs.push(dev);
        id
    }

    /// Registers an actor and returns its address.
    pub fn add_actor(&mut self, name: &str, actor: impl Actor) -> ActorId {
        let id = ActorId::from_raw(self.actors.len().try_into().expect("actor table fits u32"));
        self.actors.push(ActorSlot {
            actor: Some(Box::new(actor)),
            name: name.to_owned(),
        });
        id
    }

    /// The diagnostic name an actor was registered with.
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.actors[id.index()].name
    }

    /// Removes an actor (e.g. fault injection: crash a server). Messages
    /// already queued for it — and any sent later — are silently dropped,
    /// like packets to a dead process.
    pub fn remove_actor(&mut self, id: ActorId) -> Option<Box<dyn Actor>> {
        self.actors.get_mut(id.index()).and_then(|s| s.actor.take())
    }

    /// Number of registered links (link ids are `0..num_links`).
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Shared access to a registered link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable access to a registered link (fault injection: degrade or
    /// restore bandwidth/latency mid-run).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// Shared access to a registered block device.
    pub fn blockdev(&self, id: BlockDevId) -> &BlockDev {
        &self.devs[id.index()]
    }

    /// Mutable access to a registered block device (fault injection:
    /// slow a disk mid-run).
    pub fn blockdev_mut(&mut self, id: BlockDevId) -> &mut BlockDev {
        &mut self.devs[id.index()]
    }

    // -- messaging ----------------------------------------------------------

    /// Delivers `msg` to `to` at the current time (after already-queued
    /// same-time events).
    pub fn send_now<M: Send + 'static>(&mut self, to: ActorId, msg: M) {
        // Always the fast lane: `t == now` by definition.
        self.push_now(EvKind::Deliver {
            to,
            msg: Box::new(msg),
        });
    }

    #[inline]
    fn push_now(&mut self, kind: EvKind) {
        self.seq += 1;
        if self.next_now.is_none() && self.fifo.is_empty() {
            self.next_now = Some((self.seq, kind));
        } else {
            self.fifo.push_back((self.seq, kind));
        }
    }

    /// Delivers `msg` to `to` after `delay`.
    pub fn send_after<M: Send + 'static>(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        self.push_event(
            self.now + delay,
            EvKind::Deliver {
                to,
                msg: Box::new(msg),
            },
        );
    }

    fn push_event(&mut self, t: SimTime, kind: EvKind) {
        debug_assert!(t >= self.now, "event scheduled in the past");
        if t == self.now {
            // Same-instant events keep FIFO order by construction (seq is
            // monotonic), so they skip the heap entirely.
            self.push_now(kind);
        } else {
            self.seq += 1;
            self.heap.push(HeapEv {
                t,
                seq: self.seq,
                kind,
            });
        }
    }

    /// Posts `msg` to actor `to` **in another shard's world**, arriving
    /// after `delay`. Only meaningful under [`crate::par::run_sharded`]:
    /// the message waits in this world's outbox until the engine
    /// exchanges outboxes at the next lookahead boundary, so `delay`
    /// must be at least the engine's lookahead window (the worker
    /// asserts this). `to` is an actor id in the *target* shard's id
    /// space.
    pub fn post_remote<M: Send + 'static>(
        &mut self,
        shard: ShardId,
        to: ActorId,
        msg: M,
        delay: SimDuration,
    ) {
        self.seq += 1;
        self.outbox.push(Outbound {
            at: self.now + delay,
            seq: self.seq,
            shard,
            to,
            msg: Box::new(msg),
        });
    }

    /// Drains the cross-shard outbox (engine-side of the lookahead
    /// exchange).
    pub(crate) fn take_outbox(&mut self) -> Vec<Outbound> {
        std::mem::take(&mut self.outbox)
    }

    /// Injects a message exchanged from another shard. `at` must not be
    /// in this world's past — the conservative window guarantees it
    /// (arrivals land at or after the window end that capped execution).
    pub(crate) fn deliver_remote(&mut self, at: SimTime, to: ActorId, msg: BoxMsg) {
        assert!(
            at >= self.now,
            "cross-shard delivery at {at} is in the past (now {})",
            self.now
        );
        self.push_event(at, EvKind::Deliver { to, msg });
    }

    pub(crate) fn push_core_timer(&mut self, t: SimTime, host: HostId, core: usize, gen: u64) {
        let slot = self.sched.hosts[host.index()].core_base + core;
        self.seq += 1;
        let s = &mut self.core_timers[slot];
        if s.armed.is_none() {
            self.armed_timers += 1;
        }
        s.armed = Some((t, self.seq, gen));
    }

    /// Earliest armed core timer as `(time, seq, slot)`, if any.
    fn min_timer(&self) -> Option<(SimTime, u64, usize)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, s) in self.core_timers.iter().enumerate() {
            if let Some((t, seq, _)) = s.armed {
                if best.is_none_or(|(bt, bs, _)| (t, seq) < (bt, bs)) {
                    best = Some((t, seq, i));
                }
            }
        }
        best
    }

    // -- chains -------------------------------------------------------------

    /// Starts a chain of stages; when the last stage completes, `msg` is
    /// delivered to `to`. Returns the chain id (useful for tracing).
    ///
    /// Accepts anything convertible to a [`StageList`]: a single
    /// [`Stage`], a fixed-size array, a slice, or a `Vec<Stage>`.
    pub fn start_chain<M: Send + 'static>(
        &mut self,
        stages: impl Into<StageList>,
        to: ActorId,
        msg: M,
    ) -> ChainId {
        let id = self
            .chains
            .insert(Chain::new(stages.into(), to, Box::new(msg)));
        self.advance_chain(id);
        id
    }

    /// Like [`World::start_chain`], but attributes the chain's CPU work
    /// and data copies to `span` (pass [`SpanId::NONE`] for untraced).
    pub fn start_chain_on<M: Send + 'static>(
        &mut self,
        stages: impl Into<StageList>,
        to: ActorId,
        msg: M,
        span: SpanId,
    ) -> ChainId {
        let id = self
            .chains
            .insert(Chain::new_on(stages.into(), to, Box::new(msg), span));
        self.advance_chain(id);
        id
    }

    /// Advances a chain past its next stage (or completes it).
    pub(crate) fn advance_chain(&mut self, id: ChainId) {
        loop {
            let (stage, span) = {
                let Some(ch) = self.chains.get_mut(id) else {
                    return;
                };
                (ch.stages.pop_front(), ch.span)
            };
            match stage {
                None => {
                    let ch = self.chains.remove(id).expect("chain vanished");
                    if self.tracer.is_enabled() {
                        self.tracer.record(
                            self.now,
                            TraceKind::ChainDone,
                            TraceRef::Chain(id.raw()),
                            TraceDetail::None,
                        );
                    }
                    if let Some((to, msg)) = ch.then {
                        self.push_event(self.now, EvKind::Deliver { to, msg });
                    }
                    return;
                }
                Some(Stage::Cpu {
                    thread,
                    cycles,
                    cat,
                }) => {
                    if cycles == 0 {
                        continue;
                    }
                    self.sched_enqueue(thread, id, cycles, cat, span);
                    return;
                }
                Some(Stage::Copy {
                    thread,
                    cycles,
                    cat,
                    bytes,
                }) => {
                    // A copy is timed and accounted exactly like a Cpu
                    // stage; the only extra effect is the ledger entry.
                    self.spans.copy(span, bytes, self.now);
                    if cycles == 0 {
                        continue;
                    }
                    self.sched_enqueue(thread, id, cycles, cat, span);
                    return;
                }
                Some(Stage::Map {
                    thread,
                    cycles,
                    cat,
                    bytes,
                }) => {
                    // Timed like a Cpu stage; the payload is recorded as
                    // mapped, not copied, in the span ledger.
                    self.spans.mapped(span, bytes, self.now);
                    if cycles == 0 {
                        continue;
                    }
                    self.sched_enqueue(thread, id, cycles, cat, span);
                    return;
                }
                Some(Stage::Link { link, bytes }) => {
                    let t = self.links[link.index()].submit(self.now, bytes);
                    self.push_event(t, EvKind::ChainResume { chain: id });
                    return;
                }
                Some(Stage::Disk { dev, bytes }) => {
                    let t = self.devs[dev.index()].submit(self.now, bytes);
                    self.push_event(t, EvKind::ChainResume { chain: id });
                    return;
                }
                Some(Stage::Delay { dur }) => {
                    if dur == SimDuration::ZERO {
                        continue;
                    }
                    let t = self.now + dur;
                    self.push_event(t, EvKind::ChainResume { chain: id });
                    return;
                }
            }
        }
    }

    // -- run loop -----------------------------------------------------------

    /// Time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        // Fast-lane entries are always at `now`, earlier than (or tied
        // with) anything in the heap or the timer table.
        if self.next_now.is_some() {
            return Some(self.now);
        }
        let heap = self.heap.peek().map(|ev| ev.t);
        if self.armed_timers == 0 {
            return heap;
        }
        let timer = self.min_timer().map(|(t, _, _)| t);
        match (heap, timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pops the globally next event in `(time, seq)` order, returning its
    /// time and payload. Fast-lane entries are implicitly at `now`.
    fn pop_event(&mut self) -> Option<(SimTime, EvKind)> {
        // Candidate from each queue, all ordered by the same `(t, seq)`
        // key. The heap may still hold same-time events pushed before
        // time advanced to `now`, whose seq is necessarily smaller than
        // any fast-lane entry — they go first.
        let mut best = self.next_now.as_ref().map(|(fseq, _)| (self.now, *fseq));
        let mut src = u8::from(best.is_some()); // 0 = none, 1 = fast lane
        if let Some(h) = self.heap.peek() {
            if best.is_none_or(|b| (h.t, h.seq) < b) {
                best = Some((h.t, h.seq));
                src = 2;
            }
        }
        let mut slot = 0usize;
        if self.armed_timers > 0 {
            if let Some((t, seq, i)) = self.min_timer() {
                if best.is_none_or(|b| (t, seq) < b) {
                    src = 3;
                    slot = i;
                }
            }
        }
        match src {
            1 => {
                let (_, kind) = self.next_now.take().expect("fronted");
                // Promote the next fast-lane entry into the front slot.
                self.next_now = self.fifo.pop_front();
                Some((self.now, kind))
            }
            2 => {
                let ev = self.heap.pop().expect("peeked");
                Some((ev.t, ev.kind))
            }
            3 => {
                let s = &mut self.core_timers[slot];
                let (t, _, gen) = s.armed.take().expect("scanned");
                self.armed_timers -= 1;
                let (host, core) = (s.host, s.core as usize);
                Some((t, EvKind::CoreTimer { host, core, gen }))
            }
            _ => None,
        }
    }

    /// Processes a single event. Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        let Some((t, kind)) = self.pop_event() else {
            return false;
        };
        debug_assert!(t >= self.now);
        self.now = t;
        self.events_processed += 1;
        match kind {
            EvKind::Deliver { to, msg } => self.dispatch(to, msg),
            EvKind::CoreTimer { host, core, gen } => self.on_core_timer(host, core, gen),
            EvKind::ChainResume { chain } => self.advance_chain(chain),
            EvKind::TimelineTick => self.on_timeline_tick(),
        }
        true
    }

    /// Turns on timeline sampling with the given period and schedules
    /// the first tick at `now + sample`. Idempotent in effect (calling
    /// again reschedules an extra tick train — don't).
    ///
    /// # Panics
    ///
    /// Panics on a zero sample period.
    pub fn start_timeline(&mut self, sample: SimDuration) {
        self.timeline.enable(sample);
        self.push_event(self.now + sample, EvKind::TimelineTick);
    }

    /// One sampler tick: observe the world, then re-arm while there is
    /// still work (further events, or jobs that a cap fast-forward will
    /// finish). The stop condition makes `run()` terminate — a tick
    /// never re-arms into an otherwise-quiet world.
    fn on_timeline_tick(&mut self) {
        // The timeline steps out of the world so it can read `self`
        // without aliasing; it never touches `self.timeline` itself.
        let mut tl = std::mem::take(&mut self.timeline);
        tl.sample_now(self);
        self.timeline = tl;
        if self.next_event_time().is_some() || self.jobs.pending() > 0 {
            let at = self.now + self.timeline.sample_every();
            self.push_event(at, EvKind::TimelineTick);
        }
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until simulated time `t` (inclusive of events at `t`), then
    /// fast-forwards the clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(et) = self.next_event_time() {
            if et > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
        self.sync_accounting();
    }

    /// Runs for `dur` of simulated time from now.
    pub fn run_for(&mut self, dur: SimDuration) {
        let t = self.now + dur;
        self.run_until(t);
    }

    /// Registers a pending job and returns its completion token (see
    /// [`crate::job`]).
    pub fn register_job(&mut self, label: &str) -> JobHandle {
        self.jobs.register(label)
    }

    /// Runs until **every registered job has completed**, or until `cap`
    /// of simulated time elapses. Returns `true` when all jobs finished.
    ///
    /// On success the clock stops *exactly at the completing event* —
    /// unlike slice-based polling there is no trailing over-run, so
    /// measurements taken afterwards see the world precisely as of
    /// completion. On a cap miss the clock fast-forwards to the
    /// deadline. Either way accounting is synced, so between-run busy
    /// reads are exact.
    pub fn run_jobs_for(&mut self, cap: SimDuration) -> bool {
        let deadline = self.now + cap;
        while self.jobs.pending() > 0 {
            match self.next_event_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.jobs.pending() > 0 && self.now < deadline {
            self.now = deadline;
        }
        self.sync_accounting();
        self.jobs.pending() == 0
    }

    /// Runs every event strictly before `end` — one conservative window
    /// of a sharded run. Unlike [`World::run_until`] the clock is *not*
    /// fast-forwarded: between windows `now` stays at the last executed
    /// event so partial CPU charges materialize exactly as they would in
    /// an uninterrupted run (charging a running core in different chunks
    /// changes f64 rounding and cascades — see
    /// `vread_apps::driver::run_jobs_settled`).
    pub(crate) fn run_window(&mut self, end: SimTime) {
        while let Some(t) = self.next_event_time() {
            if t >= end {
                break;
            }
            self.step();
        }
    }

    /// Job-driven window: like [`World::run_window`], but stops at the
    /// event that completes the last registered job — the windowed
    /// equivalent of [`World::run_jobs_for`]'s exact stop.
    pub(crate) fn run_window_jobs(&mut self, end: SimTime) {
        while self.jobs.pending() > 0 {
            match self.next_event_time() {
                Some(t) if t < end => {
                    self.step();
                }
                _ => break,
            }
        }
    }

    /// Final barrier of a sharded run: replicate [`World::run_jobs_for`]'s
    /// tail so sharded and solo drives leave identical world state — on a
    /// cap miss the clock fast-forwards to the deadline, and accounting is
    /// synced either way.
    pub(crate) fn finalize_shard(&mut self, deadline: SimTime) {
        if !self.jobs.is_empty() && self.jobs.pending() > 0 && self.now < deadline {
            self.now = deadline;
        }
        self.sync_accounting();
    }

    /// Diagnostic dump of in-flight chains, per-thread work queues and
    /// run-queue depths (for debugging stuck protocols).
    pub fn dump_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "now={} pending_events={} chains={}",
            self.now,
            self.heap.len() + self.fifo.len() + usize::from(self.next_now.is_some()),
            self.chains.len()
        );
        for (id, ch) in self.chains.iter() {
            let _ = writeln!(
                out,
                "  chain {}: {} stages left, first={:?}",
                id.raw(),
                ch.stages.remaining(),
                ch.stages.peek()
            );
        }
        for (i, th) in self.sched.threads.iter().enumerate() {
            if !th.work.is_empty() || th.state != crate::sched::TState::Idle {
                let _ = writeln!(
                    out,
                    "  thread {i} ({}): state={:?} work={}",
                    th.name,
                    th.state,
                    th.work.len()
                );
            }
        }
        for (i, h) in self.sched.hosts.iter().enumerate() {
            let _ = writeln!(
                out,
                "  host {i}: runq={} cores_busy={}",
                h.runq.len(),
                h.cores.iter().filter(|c| c.running.is_some()).count()
            );
        }
        out
    }

    fn dispatch(&mut self, to: ActorId, msg: BoxMsg) {
        let idx = to.index();
        let Some(slot) = self.actors.get_mut(idx) else {
            return;
        };
        let Some(mut actor) = slot.actor.take() else {
            // Actor is gone (removed) — drop the message.
            return;
        };
        if self.tracer.is_enabled() {
            self.tracer.record(
                self.now,
                TraceKind::Deliver,
                TraceRef::Actor(to),
                TraceDetail::None,
            );
        }
        let mut ctx = Ctx {
            world: self,
            me: to,
        };
        actor.handle(msg, &mut ctx);
        self.actors[idx].actor = Some(actor);
    }
}

/// The interface an [`Actor`] uses to interact with the world while
/// handling a message.
pub struct Ctx<'a> {
    /// The world (the handling actor's own slot is vacant).
    pub world: &'a mut World,
    me: ActorId,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The address of the actor handling the current message.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Sends `msg` to `to` at the current time.
    pub fn send<M: Send + 'static>(&mut self, to: ActorId, msg: M) {
        self.world.send_now(to, msg);
    }

    /// Sends `msg` to `to` after `delay`.
    pub fn send_after<M: Send + 'static>(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        self.world.send_after(to, msg, delay);
    }

    /// Sends `msg` back to the current actor after `delay` (a timer).
    pub fn timer<M: Send + 'static>(&mut self, msg: M, delay: SimDuration) {
        let me = self.me;
        self.world.send_after(me, msg, delay);
    }

    /// Posts `msg` to an actor in another shard's world, arriving after
    /// `delay` (see [`World::post_remote`]; `delay` must cover the
    /// engine's lookahead window).
    pub fn post_remote<M: Send + 'static>(
        &mut self,
        shard: ShardId,
        to: ActorId,
        msg: M,
        delay: SimDuration,
    ) {
        self.world.post_remote(shard, to, msg, delay);
    }

    /// Starts a stage chain completing with `msg` to `to`.
    pub fn chain<M: Send + 'static>(
        &mut self,
        stages: impl Into<StageList>,
        to: ActorId,
        msg: M,
    ) -> ChainId {
        self.world.start_chain(stages, to, msg)
    }

    /// Starts a stage chain attributed to `span` (see [`crate::span`]).
    pub fn chain_on<M: Send + 'static>(
        &mut self,
        stages: impl Into<StageList>,
        to: ActorId,
        msg: M,
        span: SpanId,
    ) -> ChainId {
        self.world.start_chain_on(stages, to, msg, span)
    }

    /// Shorthand for a single-CPU-stage chain (allocation-free).
    pub fn cpu<M: Send + 'static>(
        &mut self,
        thread: ThreadId,
        cycles: u64,
        cat: CpuCategory,
        to: ActorId,
        msg: M,
    ) -> ChainId {
        self.chain(Stage::cpu(thread, cycles, cat), to, msg)
    }

    /// Registers a new actor (usable immediately).
    pub fn spawn(&mut self, name: &str, actor: impl Actor) -> ActorId {
        self.world.add_actor(name, actor)
    }

    /// The world RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.world.rng
    }

    /// The metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.world.metrics
    }

    /// Typed shared state, inserting a default if absent.
    pub fn ext<T: 'static + Default>(&mut self) -> &mut T {
        self.world.ext.get_or_default::<T>()
    }

    /// Marks `job` started now (see [`crate::job`]).
    pub fn job_started(&mut self, job: JobHandle) {
        let now = self.world.now;
        self.world.jobs.start(job, now);
    }

    /// Adds progress (`bytes`, `ops`) to `job`.
    pub fn job_progress(&mut self, job: JobHandle, bytes: u64, ops: u64) {
        self.world.jobs.progress(job, bytes, ops);
    }

    /// Marks `job` completed now; the engine's job-driven run loop stops
    /// once every registered job has completed.
    pub fn job_completed(&mut self, job: JobHandle) {
        let now = self.world.now;
        self.world.jobs.complete(job, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{downcast, Start};

    // -- plumbing tests ------------------------------------------------------

    struct Recorder {
        got: Vec<(SimTime, u32)>,
    }

    struct Tag(u32);

    impl Actor for Recorder {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if let Ok(t) = downcast::<Tag>(msg) {
                self.got.push((ctx.now(), t.0));
                ctx.metrics().incr("tags");
            }
        }
    }

    fn recorder_events(w: &World, _a: ActorId) -> f64 {
        w.metrics.counter("tags")
    }

    #[test]
    fn messages_deliver_in_time_order() {
        let mut w = World::new(1);
        let a = w.add_actor("rec", Recorder { got: vec![] });
        w.send_after(a, Tag(2), SimDuration::from_micros(20));
        w.send_after(a, Tag(1), SimDuration::from_micros(10));
        w.send_after(a, Tag(3), SimDuration::from_micros(20)); // ties break by insertion
        w.run();
        assert_eq!(recorder_events(&w, a), 3.0);
        assert_eq!(w.now(), SimTime::from_nanos(20_000));
    }

    #[test]
    fn run_until_advances_clock() {
        let mut w = World::new(1);
        let a = w.add_actor("rec", Recorder { got: vec![] });
        w.send_after(a, Tag(1), SimDuration::from_millis(5));
        w.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(w.now(), SimTime::from_nanos(1_000_000));
        assert_eq!(w.metrics.counter("tags"), 0.0);
        w.run();
        assert_eq!(w.metrics.counter("tags"), 1.0);
    }

    // -- chain + scheduler tests ---------------------------------------------

    struct Done;

    struct Waiter {
        done_at: Option<SimTime>,
    }
    impl Actor for Waiter {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Done>() {
                self.done_at = Some(ctx.now());
                let ms = ctx.now().as_secs_f64() * 1e3;
                ctx.metrics().sample("done_at_ms", ms);
            }
        }
    }

    #[test]
    fn cpu_chain_takes_cycles_over_frequency() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 2.0); // 2 GHz
        let t = w.add_thread(h, "t");
        let a = w.add_actor("waiter", Waiter { done_at: None });
        // 2M cycles at 2GHz = 1ms (+ context switch ~1.5us)
        w.start_chain(
            vec![Stage::cpu(t, 2_000_000, CpuCategory::ClientApp)],
            a,
            Done,
        );
        w.run();
        let ms = w.metrics.mean("done_at_ms");
        assert!(ms > 0.99 && ms < 1.05, "took {ms}ms, expected ~1ms");
        // accounting recorded the cycles
        let cyc = w.acct.cycles(t.index(), CpuCategory::ClientApp);
        assert!(
            (cyc - 2_000_000.0).abs() < 5_000.0,
            "accounted {cyc} cycles"
        );
    }

    #[test]
    fn chain_spans_threads_and_delay() {
        let mut w = World::new(1);
        let h = w.add_host("h", 2, 1.0);
        let t1 = w.add_thread(h, "t1");
        let t2 = w.add_thread(h, "t2");
        let a = w.add_actor("waiter", Waiter { done_at: None });
        w.start_chain(
            vec![
                Stage::cpu(t1, 1_000_000, CpuCategory::Other), // 1ms
                Stage::delay(SimDuration::from_millis(2)),
                Stage::cpu(t2, 3_000_000, CpuCategory::Other), // 3ms
            ],
            a,
            Done,
        );
        w.run();
        let ms = w.metrics.mean("done_at_ms");
        assert!(ms > 5.9 && ms < 6.2, "took {ms}ms, expected ~6ms");
        assert!(w.acct.cycles(t2.index(), CpuCategory::Other) >= 3_000_000.0);
    }

    #[test]
    fn link_stage_serializes() {
        let mut w = World::new(1);
        let l = w.add_link(Link::new(1e9, SimDuration::from_micros(5)));
        let a = w.add_actor("waiter", Waiter { done_at: None });
        let b = w.add_actor("waiter2", Waiter { done_at: None });
        // Two 1MB transfers share the link: second finishes ~2ms in.
        w.start_chain(vec![Stage::link(l, 1_000_000)], a, Done);
        w.start_chain(vec![Stage::link(l, 1_000_000)], b, Done);
        w.run();
        let s = w.metrics.samples("done_at_ms").unwrap();
        assert_eq!(s.count(), 2);
        assert!((s.values()[0] - 1.005).abs() < 0.01);
        assert!((s.values()[1] - 2.005).abs() < 0.01);
    }

    #[test]
    fn disk_stage_adds_latency() {
        let mut w = World::new(1);
        let d = w.add_blockdev(BlockDev::new(SimDuration::from_micros(80), 500e6));
        let a = w.add_actor("waiter", Waiter { done_at: None });
        w.start_chain(vec![Stage::disk(d, 500_000)], a, Done); // 1ms xfer + 80us
        w.run();
        let ms = w.metrics.mean("done_at_ms");
        assert!((ms - 1.08).abs() < 0.01, "took {ms}ms");
    }

    // -- fairness ------------------------------------------------------------

    struct Hog {
        thread: ThreadId,
        burst: u64,
        cat: CpuCategory,
    }
    impl Actor for Hog {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() || msg.is::<Done>() {
                let me = ctx.me();
                ctx.cpu(self.thread, self.burst, self.cat, me, Done);
            }
        }
    }

    #[test]
    fn two_hogs_share_one_core_fairly() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 1.0);
        let t1 = w.add_thread(h, "hog1");
        let t2 = w.add_thread(h, "hog2");
        let a1 = w.add_actor(
            "hog1",
            Hog {
                thread: t1,
                burst: 500_000,
                cat: CpuCategory::ClientApp,
            },
        );
        let a2 = w.add_actor(
            "hog2",
            Hog {
                thread: t2,
                burst: 500_000,
                cat: CpuCategory::Lookbusy,
            },
        );
        w.send_now(a1, Start);
        w.send_now(a2, Start);
        w.run_for(SimDuration::from_millis(200));
        let b1 = w.acct.busy_ns(t1.index()) as f64;
        let b2 = w.acct.busy_ns(t2.index()) as f64;
        let share = b1 / (b1 + b2);
        assert!(
            (share - 0.5).abs() < 0.05,
            "unfair split: {share} ({b1} vs {b2})"
        );
        // Both together roughly saturate one core for 200ms.
        assert!(
            b1 + b2 > 190e6 && b1 + b2 <= 201e6,
            "core busy {}ms",
            (b1 + b2) / 1e6
        );
    }

    #[test]
    fn hogs_spread_across_idle_cores() {
        let mut w = World::new(1);
        let h = w.add_host("h", 2, 1.0);
        let t1 = w.add_thread(h, "hog1");
        let t2 = w.add_thread(h, "hog2");
        for (name, t) in [("a1", t1), ("a2", t2)] {
            let a = w.add_actor(
                name,
                Hog {
                    thread: t,
                    burst: 100_000,
                    cat: CpuCategory::Other,
                },
            );
            w.send_now(a, Start);
        }
        w.run_for(SimDuration::from_millis(50));
        // both threads should be nearly fully busy (own core each)
        assert!(w.acct.busy_ns(t1.index()) > 45_000_000);
        assert!(w.acct.busy_ns(t2.index()) > 45_000_000);
    }

    #[test]
    fn set_host_ghz_scales_runtime() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 1.0);
        w.set_host_ghz(h, 4.0);
        let t = w.add_thread(h, "t");
        let a = w.add_actor("waiter", Waiter { done_at: None });
        w.start_chain(vec![Stage::cpu(t, 4_000_000, CpuCategory::Other)], a, Done);
        w.run();
        let ms = w.metrics.mean("done_at_ms");
        assert!(ms < 1.1, "4M cycles at 4GHz should be ~1ms, got {ms}");
    }

    #[test]
    fn tracer_captures_dispatches_and_deliveries() {
        let mut w = World::new(1);
        w.tracer.enable(256);
        let h = w.add_host("h", 1, 1.0);
        let t = w.add_thread(h, "worker");
        let a = w.add_actor("waiter", Waiter { done_at: None });
        w.start_chain(vec![Stage::cpu(t, 100_000, CpuCategory::Other)], a, Done);
        w.run();
        let rendered = w.tracer.render(&[]);
        assert!(
            rendered.contains("dispatch"),
            "no dispatch records:\n{rendered}"
        );
        assert!(
            rendered.contains("deliver"),
            "no delivery records:\n{rendered}"
        );
        assert!(rendered.contains("chain-done"));
        assert!(!w.tracer.is_empty(), "tracer recorded nothing");
    }

    #[test]
    fn wakeup_preempts_long_running_hog() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 1.0);
        let hog_t = w.add_thread(h, "hog");
        let io_t = w.add_thread(h, "io");
        let hog = w.add_actor(
            "hog",
            Hog {
                thread: hog_t,
                burst: 50_000_000, // 50ms bursts
                cat: CpuCategory::Lookbusy,
            },
        );
        w.send_now(hog, Start);
        // Let the hog accumulate vruntime.
        w.run_for(SimDuration::from_millis(20));
        let a = w.add_actor("waiter", Waiter { done_at: None });
        let t0 = w.now();
        w.start_chain(vec![Stage::cpu(io_t, 10_000, CpuCategory::Other)], a, Done);
        w.run_for(SimDuration::from_millis(10));
        let s = w.metrics.samples("done_at_ms").expect("io work finished");
        let done_ms = s.values()[0];
        let lat = done_ms - t0.as_secs_f64() * 1e3;
        // The freshly-woken IO thread preempts the hog well before the
        // hog's 50ms burst would end.
        assert!(lat < 1.0, "wakeup latency {lat}ms too high");
    }
}

//! The discrete-event world: event heap, actors, chains, resources.
//!
//! [`World`] owns everything; actors are dispatched one at a time (their
//! slot is temporarily vacated so they can freely mutate the world through
//! [`Ctx`]). All actor-to-actor communication flows through the event heap,
//! so there is no reentrancy and event ordering is fully deterministic
//! (time, then insertion sequence).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::chain::{Chain, Stage};
use crate::cpu::{CpuAccounting, CpuCategory};
use crate::ext::Extensions;
use crate::ids::{ActorId, BlockDevId, ChainId, HostId, LinkId, ThreadId};
use crate::metrics::Metrics;
use crate::msg::BoxMsg;
use crate::resources::{BlockDev, Link};
use crate::rng::SimRng;
use crate::sched::{Sched, SchedParams};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceKind, Tracer};

/// A component that receives messages and reacts by scheduling work,
/// sending messages, and mutating shared state.
///
/// Actors are registered with [`World::add_actor`] and addressed by
/// [`ActorId`]. They are `'static` because the world owns them.
pub trait Actor: 'static {
    /// Handles one message. `msg` is type-erased; use
    /// [`crate::msg::downcast`] or `msg.is::<T>()` to interpret it.
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>);
}

enum EvKind {
    Deliver { to: ActorId, msg: BoxMsg },
    CoreTimer { host: HostId, core: usize, gen: u64 },
    ChainResume { chain: ChainId },
}

struct HeapEv {
    t: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

struct ActorSlot {
    actor: Option<Box<dyn Actor>>,
    name: String,
}

/// The simulation world. See the crate docs for an end-to-end example.
pub struct World {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<HeapEv>,
    actors: Vec<ActorSlot>,
    pub(crate) sched: Sched,
    chains: HashMap<u64, Chain>,
    next_chain: u64,
    links: Vec<Link>,
    devs: Vec<BlockDev>,
    /// Per-thread, per-category CPU accounting.
    pub acct: CpuAccounting,
    /// Counters and sample distributions recorded by workloads.
    pub metrics: Metrics,
    /// The world's deterministic RNG.
    pub rng: SimRng,
    /// Typed blackboard for shared hardware/software state (page caches,
    /// filesystems, mount tables …).
    pub ext: Extensions,
    /// Optional bounded event trace (see [`crate::trace`]).
    pub tracer: Tracer,
    events_processed: u64,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("actors", &self.actors.len())
            .field("pending_events", &self.heap.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl World {
    /// Creates an empty world seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        World {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            actors: Vec::new(),
            sched: Sched::default(),
            chains: HashMap::new(),
            next_chain: 0,
            links: Vec::new(),
            devs: Vec::new(),
            acct: CpuAccounting::new(),
            metrics: Metrics::new(),
            rng: SimRng::new(seed),
            ext: Extensions::new(),
            tracer: Tracer::new(),
            events_processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    // -- construction -------------------------------------------------------

    /// Adds a host with `cores` cores at `ghz` GHz and default scheduler
    /// parameters.
    pub fn add_host(&mut self, name: &str, cores: usize, ghz: f64) -> HostId {
        self.sched.add_host(name, cores, ghz, SchedParams::default())
    }

    /// Adds a host with explicit scheduler parameters.
    pub fn add_host_with_params(
        &mut self,
        name: &str,
        cores: usize,
        ghz: f64,
        params: SchedParams,
    ) -> HostId {
        self.sched.add_host(name, cores, ghz, params)
    }

    /// Adds a schedulable thread to `host`.
    pub fn add_thread(&mut self, host: HostId, name: &str) -> ThreadId {
        let t = self.sched.add_thread(host, name);
        self.acct.ensure(t.index());
        t
    }

    /// Registers a network link.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        let id = LinkId::from_raw(self.links.len() as u32);
        self.links.push(link);
        id
    }

    /// Registers a block device.
    pub fn add_blockdev(&mut self, dev: BlockDev) -> BlockDevId {
        let id = BlockDevId::from_raw(self.devs.len() as u32);
        self.devs.push(dev);
        id
    }

    /// Registers an actor and returns its address.
    pub fn add_actor(&mut self, name: &str, actor: impl Actor) -> ActorId {
        let id = ActorId::from_raw(self.actors.len() as u32);
        self.actors.push(ActorSlot {
            actor: Some(Box::new(actor)),
            name: name.to_owned(),
        });
        id
    }

    /// The diagnostic name an actor was registered with.
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.actors[id.index()].name
    }

    /// Removes an actor (e.g. fault injection: crash a server). Messages
    /// already queued for it — and any sent later — are silently dropped,
    /// like packets to a dead process.
    pub fn remove_actor(&mut self, id: ActorId) -> Option<Box<dyn Actor>> {
        self.actors.get_mut(id.index()).and_then(|s| s.actor.take())
    }

    /// Shared access to a registered link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Shared access to a registered block device.
    pub fn blockdev(&self, id: BlockDevId) -> &BlockDev {
        &self.devs[id.index()]
    }

    // -- messaging ----------------------------------------------------------

    /// Delivers `msg` to `to` at the current time (after already-queued
    /// same-time events).
    pub fn send_now<M: Send + 'static>(&mut self, to: ActorId, msg: M) {
        self.push_event(
            self.now,
            EvKind::Deliver {
                to,
                msg: Box::new(msg),
            },
        );
    }

    /// Delivers `msg` to `to` after `delay`.
    pub fn send_after<M: Send + 'static>(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        self.push_event(
            self.now + delay,
            EvKind::Deliver {
                to,
                msg: Box::new(msg),
            },
        );
    }

    fn push_event(&mut self, t: SimTime, kind: EvKind) {
        debug_assert!(t >= self.now, "event scheduled in the past");
        self.seq += 1;
        self.heap.push(HeapEv {
            t,
            seq: self.seq,
            kind,
        });
    }

    pub(crate) fn push_core_timer(&mut self, t: SimTime, host: HostId, core: usize, gen: u64) {
        self.push_event(t, EvKind::CoreTimer { host, core, gen });
    }

    // -- chains -------------------------------------------------------------

    /// Starts a chain of stages; when the last stage completes, `msg` is
    /// delivered to `to`. Returns the chain id (useful for tracing).
    pub fn start_chain<M: Send + 'static>(
        &mut self,
        stages: Vec<Stage>,
        to: ActorId,
        msg: M,
    ) -> ChainId {
        self.next_chain += 1;
        let id = ChainId::from_raw(self.next_chain);
        self.chains
            .insert(id.raw(), Chain::new(stages, to, Box::new(msg)));
        self.advance_chain(id);
        id
    }

    /// Advances a chain past its next stage (or completes it).
    pub(crate) fn advance_chain(&mut self, id: ChainId) {
        loop {
            let stage = {
                let Some(ch) = self.chains.get_mut(&id.raw()) else {
                    return;
                };
                match ch.stages.pop_front() {
                    Some(s) => Some(s),
                    None => None,
                }
            };
            match stage {
                None => {
                    let ch = self.chains.remove(&id.raw()).expect("chain vanished");
                    if self.tracer.is_enabled() {
                        self.tracer.record(
                            self.now,
                            TraceKind::ChainDone,
                            &format!("chain{}", id.raw()),
                            String::new(),
                        );
                    }
                    if let Some((to, msg)) = ch.then {
                        self.push_event(self.now, EvKind::Deliver { to, msg });
                    }
                    return;
                }
                Some(Stage::Cpu {
                    thread,
                    cycles,
                    cat,
                }) => {
                    if cycles == 0 {
                        continue;
                    }
                    self.sched_enqueue(thread, id, cycles, cat);
                    return;
                }
                Some(Stage::Link { link, bytes }) => {
                    let t = self.links[link.index()].submit(self.now, bytes);
                    self.push_event(t, EvKind::ChainResume { chain: id });
                    return;
                }
                Some(Stage::Disk { dev, bytes }) => {
                    let t = self.devs[dev.index()].submit(self.now, bytes);
                    self.push_event(t, EvKind::ChainResume { chain: id });
                    return;
                }
                Some(Stage::Delay { dur }) => {
                    if dur == SimDuration::ZERO {
                        continue;
                    }
                    let t = self.now + dur;
                    self.push_event(t, EvKind::ChainResume { chain: id });
                    return;
                }
            }
        }
    }

    // -- run loop -----------------------------------------------------------

    /// Processes a single event. Returns `false` when the heap is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.heap.pop() else {
            return false;
        };
        debug_assert!(ev.t >= self.now);
        self.now = ev.t;
        self.events_processed += 1;
        match ev.kind {
            EvKind::Deliver { to, msg } => self.dispatch(to, msg),
            EvKind::CoreTimer { host, core, gen } => self.on_core_timer(host, core, gen),
            EvKind::ChainResume { chain } => self.advance_chain(chain),
        }
        true
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until simulated time `t` (inclusive of events at `t`), then
    /// fast-forwards the clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(ev) = self.heap.peek() {
            if ev.t > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
        self.sync_accounting();
    }

    /// Runs for `dur` of simulated time from now.
    pub fn run_for(&mut self, dur: SimDuration) {
        let t = self.now + dur;
        self.run_until(t);
    }

    /// Diagnostic dump of in-flight chains, per-thread work queues and
    /// run-queue depths (for debugging stuck protocols).
    pub fn dump_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "now={} pending_events={} chains={}", self.now, self.heap.len(), self.chains.len());
        for (id, ch) in &self.chains {
            let _ = writeln!(out, "  chain {id}: {} stages left, first={:?}", ch.stages.len(), ch.stages.front());
        }
        for (i, th) in self.sched.threads.iter().enumerate() {
            if !th.work.is_empty() || th.state != crate::sched::TState::Idle {
                let _ = writeln!(out, "  thread {i} ({}): state={:?} work={}", th.name, th.state, th.work.len());
            }
        }
        for (i, h) in self.sched.hosts.iter().enumerate() {
            let _ = writeln!(out, "  host {i}: runq={} cores_busy={}", h.runq.len(), h.cores.iter().filter(|c| c.running.is_some()).count());
        }
        out
    }

    fn dispatch(&mut self, to: ActorId, msg: BoxMsg) {
        let idx = to.index();
        if idx >= self.actors.len() {
            return;
        }
        if self.tracer.is_enabled() {
            let name = self.actors[idx].name.clone();
            self.tracer
                .record(self.now, TraceKind::Deliver, &name, String::new());
        }
        let Some(mut actor) = self.actors[idx].actor.take() else {
            // Actor is gone (removed) — drop the message.
            return;
        };
        let mut ctx = Ctx { world: self, me: to };
        actor.handle(msg, &mut ctx);
        self.actors[idx].actor = Some(actor);
    }
}

/// The interface an [`Actor`] uses to interact with the world while
/// handling a message.
pub struct Ctx<'a> {
    /// The world (the handling actor's own slot is vacant).
    pub world: &'a mut World,
    me: ActorId,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The address of the actor handling the current message.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Sends `msg` to `to` at the current time.
    pub fn send<M: Send + 'static>(&mut self, to: ActorId, msg: M) {
        self.world.send_now(to, msg);
    }

    /// Sends `msg` to `to` after `delay`.
    pub fn send_after<M: Send + 'static>(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        self.world.send_after(to, msg, delay);
    }

    /// Sends `msg` back to the current actor after `delay` (a timer).
    pub fn timer<M: Send + 'static>(&mut self, msg: M, delay: SimDuration) {
        let me = self.me;
        self.world.send_after(me, msg, delay);
    }

    /// Starts a stage chain completing with `msg` to `to`.
    pub fn chain<M: Send + 'static>(&mut self, stages: Vec<Stage>, to: ActorId, msg: M) -> ChainId {
        self.world.start_chain(stages, to, msg)
    }

    /// Shorthand for a single-CPU-stage chain.
    pub fn cpu<M: Send + 'static>(
        &mut self,
        thread: ThreadId,
        cycles: u64,
        cat: CpuCategory,
        to: ActorId,
        msg: M,
    ) -> ChainId {
        self.chain(vec![Stage::cpu(thread, cycles, cat)], to, msg)
    }

    /// Registers a new actor (usable immediately).
    pub fn spawn(&mut self, name: &str, actor: impl Actor) -> ActorId {
        self.world.add_actor(name, actor)
    }

    /// The world RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.world.rng
    }

    /// The metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.world.metrics
    }

    /// Typed shared state, inserting a default if absent.
    pub fn ext<T: 'static + Default>(&mut self) -> &mut T {
        self.world.ext.get_or_default::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{downcast, Start};

    // -- plumbing tests ------------------------------------------------------

    struct Recorder {
        got: Vec<(SimTime, u32)>,
    }

    struct Tag(u32);

    impl Actor for Recorder {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if let Ok(t) = downcast::<Tag>(msg) {
                self.got.push((ctx.now(), t.0));
                ctx.metrics().incr("tags");
            }
        }
    }

    fn recorder_events(w: &World, _a: ActorId) -> f64 {
        w.metrics.counter("tags")
    }

    #[test]
    fn messages_deliver_in_time_order() {
        let mut w = World::new(1);
        let a = w.add_actor("rec", Recorder { got: vec![] });
        w.send_after(a, Tag(2), SimDuration::from_micros(20));
        w.send_after(a, Tag(1), SimDuration::from_micros(10));
        w.send_after(a, Tag(3), SimDuration::from_micros(20)); // ties break by insertion
        w.run();
        assert_eq!(recorder_events(&w, a), 3.0);
        assert_eq!(w.now(), SimTime::from_nanos(20_000));
    }

    #[test]
    fn run_until_advances_clock() {
        let mut w = World::new(1);
        let a = w.add_actor("rec", Recorder { got: vec![] });
        w.send_after(a, Tag(1), SimDuration::from_millis(5));
        w.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(w.now(), SimTime::from_nanos(1_000_000));
        assert_eq!(w.metrics.counter("tags"), 0.0);
        w.run();
        assert_eq!(w.metrics.counter("tags"), 1.0);
    }

    // -- chain + scheduler tests ---------------------------------------------

    struct Done;

    struct Waiter {
        done_at: Option<SimTime>,
    }
    impl Actor for Waiter {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Done>() {
                self.done_at = Some(ctx.now());
                let ms = ctx.now().as_secs_f64() * 1e3;
                ctx.metrics().sample("done_at_ms", ms);
            }
        }
    }

    #[test]
    fn cpu_chain_takes_cycles_over_frequency() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 2.0); // 2 GHz
        let t = w.add_thread(h, "t");
        let a = w.add_actor("waiter", Waiter { done_at: None });
        // 2M cycles at 2GHz = 1ms (+ context switch ~1.5us)
        w.start_chain(
            vec![Stage::cpu(t, 2_000_000, CpuCategory::ClientApp)],
            a,
            Done,
        );
        w.run();
        let ms = w.metrics.mean("done_at_ms");
        assert!(ms > 0.99 && ms < 1.05, "took {ms}ms, expected ~1ms");
        // accounting recorded the cycles
        let cyc = w.acct.cycles(t.index(), CpuCategory::ClientApp);
        assert!(
            (cyc - 2_000_000.0).abs() < 5_000.0,
            "accounted {cyc} cycles"
        );
    }

    #[test]
    fn chain_spans_threads_and_delay() {
        let mut w = World::new(1);
        let h = w.add_host("h", 2, 1.0);
        let t1 = w.add_thread(h, "t1");
        let t2 = w.add_thread(h, "t2");
        let a = w.add_actor("waiter", Waiter { done_at: None });
        w.start_chain(
            vec![
                Stage::cpu(t1, 1_000_000, CpuCategory::Other), // 1ms
                Stage::delay(SimDuration::from_millis(2)),
                Stage::cpu(t2, 3_000_000, CpuCategory::Other), // 3ms
            ],
            a,
            Done,
        );
        w.run();
        let ms = w.metrics.mean("done_at_ms");
        assert!(ms > 5.9 && ms < 6.2, "took {ms}ms, expected ~6ms");
        assert!(w.acct.cycles(t2.index(), CpuCategory::Other) >= 3_000_000.0);
    }

    #[test]
    fn link_stage_serializes() {
        let mut w = World::new(1);
        let l = w.add_link(Link::new(1e9, SimDuration::from_micros(5)));
        let a = w.add_actor("waiter", Waiter { done_at: None });
        let b = w.add_actor("waiter2", Waiter { done_at: None });
        // Two 1MB transfers share the link: second finishes ~2ms in.
        w.start_chain(vec![Stage::link(l, 1_000_000)], a, Done);
        w.start_chain(vec![Stage::link(l, 1_000_000)], b, Done);
        w.run();
        let s = w.metrics.samples("done_at_ms").unwrap();
        assert_eq!(s.count(), 2);
        assert!((s.values()[0] - 1.005).abs() < 0.01);
        assert!((s.values()[1] - 2.005).abs() < 0.01);
    }

    #[test]
    fn disk_stage_adds_latency() {
        let mut w = World::new(1);
        let d = w.add_blockdev(BlockDev::new(SimDuration::from_micros(80), 500e6));
        let a = w.add_actor("waiter", Waiter { done_at: None });
        w.start_chain(vec![Stage::disk(d, 500_000)], a, Done); // 1ms xfer + 80us
        w.run();
        let ms = w.metrics.mean("done_at_ms");
        assert!((ms - 1.08).abs() < 0.01, "took {ms}ms");
    }

    // -- fairness ------------------------------------------------------------

    struct Hog {
        thread: ThreadId,
        burst: u64,
        cat: CpuCategory,
    }
    impl Actor for Hog {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() || msg.is::<Done>() {
                let me = ctx.me();
                ctx.cpu(self.thread, self.burst, self.cat, me, Done);
            }
        }
    }

    #[test]
    fn two_hogs_share_one_core_fairly() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 1.0);
        let t1 = w.add_thread(h, "hog1");
        let t2 = w.add_thread(h, "hog2");
        let a1 = w.add_actor(
            "hog1",
            Hog {
                thread: t1,
                burst: 500_000,
                cat: CpuCategory::ClientApp,
            },
        );
        let a2 = w.add_actor(
            "hog2",
            Hog {
                thread: t2,
                burst: 500_000,
                cat: CpuCategory::Lookbusy,
            },
        );
        w.send_now(a1, Start);
        w.send_now(a2, Start);
        w.run_for(SimDuration::from_millis(200));
        let b1 = w.acct.busy_ns(t1.index()) as f64;
        let b2 = w.acct.busy_ns(t2.index()) as f64;
        let share = b1 / (b1 + b2);
        assert!(
            (share - 0.5).abs() < 0.05,
            "unfair split: {share} ({b1} vs {b2})"
        );
        // Both together roughly saturate one core for 200ms.
        assert!(
            b1 + b2 > 190e6 && b1 + b2 <= 201e6,
            "core busy {}ms",
            (b1 + b2) / 1e6
        );
    }

    #[test]
    fn hogs_spread_across_idle_cores() {
        let mut w = World::new(1);
        let h = w.add_host("h", 2, 1.0);
        let t1 = w.add_thread(h, "hog1");
        let t2 = w.add_thread(h, "hog2");
        for (name, t) in [("a1", t1), ("a2", t2)] {
            let a = w.add_actor(
                name,
                Hog {
                    thread: t,
                    burst: 100_000,
                    cat: CpuCategory::Other,
                },
            );
            w.send_now(a, Start);
        }
        w.run_for(SimDuration::from_millis(50));
        // both threads should be nearly fully busy (own core each)
        assert!(w.acct.busy_ns(t1.index()) > 45_000_000);
        assert!(w.acct.busy_ns(t2.index()) > 45_000_000);
    }

    #[test]
    fn set_host_ghz_scales_runtime() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 1.0);
        w.set_host_ghz(h, 4.0);
        let t = w.add_thread(h, "t");
        let a = w.add_actor("waiter", Waiter { done_at: None });
        w.start_chain(vec![Stage::cpu(t, 4_000_000, CpuCategory::Other)], a, Done);
        w.run();
        let ms = w.metrics.mean("done_at_ms");
        assert!(ms < 1.1, "4M cycles at 4GHz should be ~1ms, got {ms}");
    }

    #[test]
    fn tracer_captures_dispatches_and_deliveries() {
        let mut w = World::new(1);
        w.tracer.enable(256);
        let h = w.add_host("h", 1, 1.0);
        let t = w.add_thread(h, "worker");
        let a = w.add_actor("waiter", Waiter { done_at: None });
        w.start_chain(vec![Stage::cpu(t, 100_000, CpuCategory::Other)], a, Done);
        w.run();
        let rendered = w.tracer.render(&[]);
        assert!(rendered.contains("dispatch"), "no dispatch records:\n{rendered}");
        assert!(rendered.contains("deliver"), "no delivery records:\n{rendered}");
        assert!(rendered.contains("chain-done"));
        assert!(w.tracer.len() > 0);
    }

    #[test]
    fn wakeup_preempts_long_running_hog() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 1.0);
        let hog_t = w.add_thread(h, "hog");
        let io_t = w.add_thread(h, "io");
        let hog = w.add_actor(
            "hog",
            Hog {
                thread: hog_t,
                burst: 50_000_000, // 50ms bursts
                cat: CpuCategory::Lookbusy,
            },
        );
        w.send_now(hog, Start);
        // Let the hog accumulate vruntime.
        w.run_for(SimDuration::from_millis(20));
        let a = w.add_actor("waiter", Waiter { done_at: None });
        let t0 = w.now();
        w.start_chain(vec![Stage::cpu(io_t, 10_000, CpuCategory::Other)], a, Done);
        w.run_for(SimDuration::from_millis(10));
        let s = w.metrics.samples("done_at_ms").expect("io work finished");
        let done_ms = s.values()[0];
        let lat = done_ms - t0.as_secs_f64() * 1e3;
        // The freshly-woken IO thread preempts the hog well before the
        // hog's 50ms burst would end.
        assert!(lat < 1.0, "wakeup latency {lat}ms too high");
    }
}

//! Conservative parallel execution: host-sharded worlds on a worker pool.
//!
//! This module is the **one sanctioned site** for OS threading in the
//! workspace (the `threading` vread-lint rule flags `std::thread`,
//! channels, locks and atomics everywhere else). It provides two
//! facilities:
//!
//! * [`run_sharded`] — run a set of [`Shard`]s (each an independent
//!   [`World`] owning one host subtree) under conservative synchronization.
//!   Cross-shard messages travel only via [`Ctx::post_remote`] /
//!   [`World::post_remote`] with a delay no smaller than the configured
//!   lookahead, so every shard may safely execute all events strictly
//!   before the global window end `min(next_event) + lookahead` between
//!   barriers.
//! * [`run_indexed`] / [`run_indexed_streamed`] — deterministic fan-out of
//!   `n` independent tasks over a thread pool, with results surfaced in
//!   index order (used by `repro --jobs N`).
//!
//! # Determinism
//!
//! Byte-identical output at any thread count is a property of the
//! *protocol*, not of scheduling luck:
//!
//! * Every shard is built **and** driven on exactly one worker thread; no
//!   simulation state is shared. Only boxed messages and final results
//!   cross threads.
//! * The coordinator's decisions (window ends, termination) depend only on
//!   the *merged* per-shard reports — a fold over data that is itself a
//!   deterministic function of each shard's event history.
//! * At each barrier, pending cross-shard deliveries are applied to their
//!   target shard in the canonical `(arrival time, source shard id, source
//!   seq)` order before any window event runs. The target stamps fresh
//!   local `seq` numbers in that order, so the existing `(time, seq)`
//!   tie-break yields one global order that does not depend on how shards
//!   were assigned to OS threads.
//!
//! `EngineOpts { threads: 1 }` runs the *same* window algorithm on a
//! single worker; thread count changes wall-clock time only.
//!
//! [`Ctx::post_remote`]: crate::Ctx::post_remote

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering}; // vread-lint: allow(threading, "sanctioned worker pool")
use std::sync::mpsc; // vread-lint: allow(threading, "sanctioned worker pool")
use std::thread;

use crate::engine::World;
use crate::ids::ActorId;
use crate::msg::BoxMsg;
use crate::time::{SimDuration, SimTime};

/// Finish closure: runs on the owning worker thread, so it need not be
/// `Send` — it may capture deployment sidecar state built alongside the
/// world.
type FinishFn<R> = Box<dyn FnOnce(World) -> R>;
type BuildFn<R> = Box<dyn FnOnce() -> (World, FinishFn<R>) + Send>;

/// One shard of a sharded run: a closure that builds a [`World`] (on the
/// worker thread that will own it) and returns it together with a finish
/// closure that extracts the result once the run completes. Worlds never
/// cross threads, so actors need not be `Send`; the finish closure runs on
/// the same worker and need not be `Send` either.
pub struct Shard<R> {
    /// Human-readable label, used in panic messages.
    pub label: String,
    build: BuildFn<R>,
}

impl<R> Shard<R> {
    /// Creates a shard from separate build and finish closures.
    pub fn new(
        label: impl Into<String>,
        build: impl FnOnce() -> World + Send + 'static,
        finish: impl FnOnce(World) -> R + Send + 'static,
    ) -> Self {
        Self::staged(label, move || {
            let w = build();
            (w, finish)
        })
    }

    /// Creates a shard whose build closure also produces the finish
    /// closure, letting the latter capture worker-local sidecar state
    /// (actor handles, deployment tables) that is not `Send`.
    pub fn staged<F>(
        label: impl Into<String>,
        build: impl FnOnce() -> (World, F) + Send + 'static,
    ) -> Self
    where
        F: FnOnce(World) -> R + 'static,
    {
        Shard {
            label: label.into(),
            build: Box::new(move || {
                let (w, f) = build();
                (w, Box::new(f) as FinishFn<R>)
            }),
        }
    }
}

/// Options for [`run_sharded`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOpts {
    /// Worker threads; clamped to `[1, shards]`. `1` runs the identical
    /// protocol on a single worker.
    pub threads: usize,
    /// Conservative lookahead window. `None` means the shards are fully
    /// isolated (no cross-shard messages allowed) and each runs to the cap
    /// in a single window. `Some(d)` requires `d > 0`; every
    /// `post_remote` delay must be `>= d`.
    pub lookahead: Option<SimDuration>,
    /// Job deadline, measured from `SimTime::ZERO` (mirrors
    /// [`World::run_jobs_for`]). Shards with registered jobs that miss the
    /// cap are fast-forwarded to it, exactly like the sequential runner.
    pub cap: SimDuration,
}

impl EngineOpts {
    /// Defaults: isolated shards, one-hour cap.
    pub fn new(threads: usize) -> Self {
        EngineOpts {
            threads,
            lookahead: None,
            cap: SimDuration::from_secs(3_600),
        }
    }

    /// Sets the conservative lookahead window (must be positive).
    pub fn with_lookahead(mut self, d: SimDuration) -> Self {
        self.lookahead = Some(d);
        self
    }

    /// Sets the job deadline.
    pub fn with_cap(mut self, cap: SimDuration) -> Self {
        self.cap = cap;
        self
    }
}

/// A cross-shard message in flight, keyed for canonical delivery order.
struct Delivery {
    at: SimTime,
    src_shard: u16,
    src_seq: u64,
    to: ActorId,
    msg: BoxMsg,
}

/// Per-shard state snapshot sent to the coordinator at each barrier.
struct ShardStatus {
    /// Earliest pending event, or `None` when the shard is done (job
    /// shards stop reporting events once all jobs completed, mirroring
    /// [`World::run_jobs_for`]).
    next_event: Option<SimTime>,
    done: bool,
}

struct Report {
    shard: usize,
    status: ShardStatus,
    /// `(target shard index, delivery)` pairs harvested from the world's
    /// outbox this window.
    outbox: Vec<(usize, Delivery)>,
}

enum Cmd {
    /// Run one window: apply the inboxes, execute events strictly before
    /// `end`, report back.
    Window {
        end: SimTime,
        inboxes: Vec<(usize, Vec<Delivery>)>,
    },
    /// Finalize all owned shards and send their results.
    Finish,
}

enum WorkerEvent {
    Report(Report),
    /// The worker panicked; the coordinator must stop waiting for its
    /// shards (the panic payload is re-raised on join).
    Down,
}

struct OwnedShard<R> {
    ix: usize,
    label: String,
    world: World,
    finish: FinishFn<R>,
}

/// Runs `shards` to completion under conservative synchronization and
/// returns their results in shard-index order.
///
/// Termination mirrors the sequential runners: a shard with registered
/// jobs is done when all its jobs completed; a pure-event shard is done
/// when its queue drains. The run ends when every shard is done and no
/// cross-shard delivery is in flight, or when the earliest remaining event
/// lies beyond the cap (job shards are then fast-forwarded to the cap).
///
/// # Panics
///
/// Panics if `lookahead` is `Some(0)`, if a shard posts a cross-shard
/// message arriving inside the current window (delay below the lookahead),
/// if a message targets an unknown shard, or if shards message each other
/// with no lookahead configured. Worker panics are propagated with their
/// original payload.
// vread-lint: allow(threading, "sanctioned worker pool")
pub fn run_sharded<R: Send>(opts: EngineOpts, shards: Vec<Shard<R>>) -> Vec<R> {
    let n = shards.len();
    if n == 0 {
        return Vec::new();
    }
    if let Some(la) = opts.lookahead {
        assert!(
            la > SimDuration::ZERO,
            "EngineOpts::lookahead must be positive (zero lookahead cannot make progress)"
        );
    }
    let threads = opts.threads.clamp(1, n);
    let deadline = SimTime::ZERO + opts.cap;

    // Round-robin shard ownership: worker k owns shards {i : i % threads == k},
    // each driven in ascending index order within its worker.
    let mut buckets: Vec<Vec<(usize, Shard<R>)>> = (0..threads).map(|_| Vec::new()).collect();
    for (ix, sh) in shards.into_iter().enumerate() {
        buckets[ix % threads].push((ix, sh));
    }

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    thread::scope(|s| {
        let (report_tx, report_rx) = mpsc::channel::<WorkerEvent>();
        let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();
        let mut cmd_txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for bucket in buckets {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            cmd_txs.push(cmd_tx);
            let report_tx = report_tx.clone();
            let result_tx = result_tx.clone();
            let lookahead = opts.lookahead;
            handles.push(s.spawn(move || {
                let body = AssertUnwindSafe(|| {
                    worker_loop(bucket, &cmd_rx, &report_tx, &result_tx, deadline, lookahead);
                });
                if let Err(payload) = catch_unwind(body) {
                    // Unblock the coordinator before re-raising: without
                    // this, it would wait forever for this worker's
                    // reports while other workers keep the channel open.
                    let _ = report_tx.send(WorkerEvent::Down);
                    resume_unwind(payload);
                }
            }));
        }
        drop(report_tx);
        drop(result_tx);

        let finished = coordinate(n, threads, deadline, opts.lookahead, &cmd_txs, &report_rx);
        if finished {
            for tx in &cmd_txs {
                let _ = tx.send(Cmd::Finish);
            }
        }
        drop(cmd_txs);
        while let Ok((ix, r)) = result_rx.recv() {
            out[ix] = Some(r);
        }
        for h in handles {
            if let Err(payload) = h.join() {
                resume_unwind(payload);
            }
        }
    });
    out.into_iter()
        .enumerate()
        .map(|(ix, r)| r.unwrap_or_else(|| panic!("shard {ix} produced no result")))
        .collect()
}

/// Coordinator: merges per-shard reports, routes cross-shard deliveries in
/// canonical order, and picks each window end. Returns `true` when the run
/// completed (workers should finalize), `false` when a worker hung up
/// (its panic will be propagated by the caller's join).
// vread-lint: allow(threading, "sanctioned worker pool")
fn coordinate(
    n: usize,
    threads: usize,
    deadline: SimTime,
    lookahead: Option<SimDuration>,
    cmd_txs: &[mpsc::Sender<Cmd>],
    report_rx: &mpsc::Receiver<WorkerEvent>,
) -> bool {
    let ns = SimDuration::from_nanos(1);
    let mut statuses: Vec<ShardStatus> = (0..n)
        .map(|_| ShardStatus {
            next_event: None,
            done: false,
        })
        .collect();
    // Pending cross-shard deliveries, keyed by target shard.
    let mut pending: Vec<Vec<Delivery>> = (0..n).map(|_| Vec::new()).collect();

    loop {
        // One report per shard per round (workers send the initial round
        // unprompted after building their worlds).
        for _ in 0..n {
            let report = match report_rx.recv() {
                Ok(WorkerEvent::Report(r)) => r,
                Ok(WorkerEvent::Down) | Err(_) => return false,
            };
            for (target, d) in report.outbox {
                assert!(
                    target < n,
                    "shard {} posted a message for unknown shard {target} ({n} shards)",
                    report.shard
                );
                pending[target].push(d);
            }
            statuses[report.shard] = report.status;
        }

        let mut t_min: Option<SimTime> = None;
        for t in statuses
            .iter()
            .filter_map(|st| st.next_event)
            .chain(pending.iter().flatten().map(|d| d.at))
        {
            t_min = Some(t_min.map_or(t, |m| m.min(t)));
        }
        let all_done = statuses.iter().all(|st| st.done);
        let in_flight = pending.iter().any(|q| !q.is_empty());
        if all_done && !in_flight {
            return true;
        }
        // Nothing runnable but not all done (a job shard stalled), or the
        // earliest remaining event lies beyond the cap: stop, mirroring
        // `run_jobs_for` (finalize fast-forwards capped job shards).
        let Some(t_min) = t_min else {
            return true;
        };
        if t_min > deadline {
            return true;
        }

        let end = match lookahead {
            // Isolated shards: one window covering the whole run (events at
            // the deadline itself still execute, like `run_jobs_for`).
            None => deadline + ns,
            Some(la) => (t_min + la).min(deadline + ns),
        };

        // Route pending deliveries, canonically ordered per target.
        let mut inboxes: Vec<Vec<(usize, Vec<Delivery>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (target, q) in pending.iter_mut().enumerate() {
            if q.is_empty() {
                continue;
            }
            let mut q = std::mem::take(q);
            q.sort_by_key(|d| (d.at, d.src_shard, d.src_seq));
            inboxes[target % threads].push((target, q));
        }
        for (k, tx) in cmd_txs.iter().enumerate() {
            let inboxes = std::mem::take(&mut inboxes[k]);
            if tx.send(Cmd::Window { end, inboxes }).is_err() {
                return false;
            }
        }
    }
}

/// Worker: builds its owned worlds, then repeatedly applies inboxes, runs
/// one window, and reports. On `Finish`, finalizes each world and sends
/// its result.
// vread-lint: allow(threading, "sanctioned worker pool")
fn worker_loop<R: Send>(
    bucket: Vec<(usize, Shard<R>)>,
    cmd_rx: &mpsc::Receiver<Cmd>,
    report_tx: &mpsc::Sender<WorkerEvent>,
    result_tx: &mpsc::Sender<(usize, R)>,
    deadline: SimTime,
    lookahead: Option<SimDuration>,
) {
    let mut owned: Vec<OwnedShard<R>> = Vec::with_capacity(bucket.len());
    for (ix, sh) in bucket {
        let (world, finish) = (sh.build)();
        owned.push(OwnedShard {
            ix,
            label: sh.label,
            world,
            finish,
        });
    }
    // Initial round: report build-time state (including any outbox filled
    // during construction) so the coordinator can pick the first window.
    for o in &mut owned {
        let report = harvest(o, SimTime::ZERO, lookahead);
        if report_tx.send(WorkerEvent::Report(report)).is_err() {
            return;
        }
    }
    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            Cmd::Window { end, inboxes } => {
                let mut inboxes = inboxes.into_iter().peekable();
                for o in &mut owned {
                    if let Some(&(target, _)) = inboxes.peek() {
                        if target == o.ix {
                            let (_, q) = inboxes.next().expect("peeked");
                            for d in q {
                                o.world.deliver_remote(d.at, d.to, d.msg);
                            }
                        }
                    }
                    if o.world.jobs.is_empty() {
                        o.world.run_window(end);
                    } else {
                        o.world.run_window_jobs(end);
                    }
                    let report = harvest(o, end, lookahead);
                    if report_tx.send(WorkerEvent::Report(report)).is_err() {
                        return;
                    }
                }
            }
            Cmd::Finish => {
                for o in owned {
                    let mut w = o.world;
                    w.finalize_shard(deadline);
                    if result_tx.send((o.ix, (o.finish)(w))).is_err() {
                        return;
                    }
                }
                return;
            }
        }
    }
}

/// Snapshots a shard's status and drains its outbox, enforcing the
/// conservative contract: every outgoing message must arrive at or after
/// the window end the shard just executed up to.
fn harvest<R>(
    o: &mut OwnedShard<R>,
    window_end: SimTime,
    lookahead: Option<SimDuration>,
) -> Report {
    let w = &mut o.world;
    let done = if w.jobs.is_empty() {
        w.next_event_time().is_none()
    } else {
        w.jobs.pending() == 0
    };
    let next_event = if done { None } else { w.next_event_time() };
    let raw = w.take_outbox();
    if !raw.is_empty() {
        assert!(
            lookahead.is_some(),
            "shard {} ('{}') posted cross-shard messages but EngineOpts::lookahead is None \
             (isolated shards cannot communicate)",
            o.ix,
            o.label
        );
    }
    let outbox = raw
        .into_iter()
        .map(|ob| {
            assert!(
                ob.at >= window_end,
                "shard {} ('{}') posted a cross-shard message arriving at {} inside the \
                 current window (end {window_end}); post_remote delay must be >= the lookahead",
                o.ix,
                o.label,
                ob.at
            );
            (
                ob.shard.index(),
                Delivery {
                    at: ob.at,
                    src_shard: u16::try_from(o.ix).expect("shard index fits u16"),
                    src_seq: ob.seq,
                    to: ob.to,
                    msg: ob.msg,
                },
            )
        })
        .collect();
    Report {
        shard: o.ix,
        status: ShardStatus { next_event, done },
        outbox,
    }
}

/// Runs `n` independent tasks on `threads` workers, invoking `on_ready`
/// for every result **in index order** (streaming: a result is surfaced as
/// soon as it and all lower-index results are available).
///
/// `threads <= 1` degenerates to a plain sequential loop. Worker panics
/// are propagated after in-flight results have been flushed.
pub fn run_indexed_streamed<R, F, G>(n: usize, threads: usize, f: F, mut on_ready: G)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    G: FnMut(usize, R),
{
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        for i in 0..n {
            let r = f(i);
            on_ready(i, r);
        }
        return;
    }
    let next = AtomicUsize::new(0); // vread-lint: allow(threading, "sanctioned worker pool")
    let mut buf: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // vread-lint: allow(threading, "sanctioned worker pool")
    thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let tx = tx.clone();
            let f = &f;
            let next = &next;
            handles.push(s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                if tx.send((i, f(i))).is_err() {
                    return;
                }
            }));
        }
        drop(tx);
        let mut flushed = 0;
        while let Ok((i, r)) = rx.recv() {
            buf[i] = Some(r);
            while flushed < n {
                let Some(r) = buf[flushed].take() else { break };
                on_ready(flushed, r);
                flushed += 1;
            }
        }
        for h in handles {
            if let Err(payload) = h.join() {
                resume_unwind(payload);
            }
        }
    });
}

/// Like [`run_indexed_streamed`] but collects the results into a `Vec`
/// ordered by index.
pub fn run_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out = Vec::with_capacity(n);
    run_indexed_streamed(n, threads, f, |_, r| out.push(r));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuCategory;
    use crate::engine::{Actor, Ctx};
    use crate::ids::{ShardId, ThreadId};
    use crate::msg::Start;

    /// Local ping-pong within one shard: burns CPU, bounces a counter.
    struct Ping {
        thread: ThreadId,
        left: u32,
    }
    impl Actor for Ping {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if (msg.is::<Start>() || msg.is::<u32>()) && self.left > 0 {
                self.left -= 1;
                let me = ctx.me();
                ctx.cpu(self.thread, 10_000, CpuCategory::Other, me, self.left);
            }
        }
    }

    fn ping_world(seed: u64, rounds: u32) -> World {
        let mut w = World::new(seed);
        let h = w.add_host("h", 2, 3.0);
        let t = w.add_thread(h, "ping");
        let a = w.add_actor(
            "ping",
            Ping {
                thread: t,
                left: rounds,
            },
        );
        w.send_now(a, Start);
        w
    }

    fn run_ping_fleet(threads: usize, shards: usize) -> Vec<(SimTime, u64)> {
        let specs = (0..shards)
            .map(|i| {
                Shard::new(
                    format!("s{i}"),
                    move || {
                        ping_world(
                            7 + i as u64,
                            40 + u32::try_from(i).expect("shard ix fits u32"),
                        )
                    },
                    |w: World| (w.now(), w.events_processed()),
                )
            })
            .collect();
        run_sharded(EngineOpts::new(threads), specs)
    }

    #[test]
    fn isolated_shards_match_any_thread_count() {
        let seq = run_ping_fleet(1, 5);
        for threads in [2, 3, 5, 8] {
            assert_eq!(run_ping_fleet(threads, 5), seq, "threads={threads}");
        }
        // And each shard matches a plain sequential run of the same world.
        for (i, (now, events)) in seq.iter().enumerate() {
            let mut w = ping_world(
                7 + i as u64,
                40 + u32::try_from(i).expect("shard ix fits u32"),
            );
            w.run();
            assert_eq!((*now, w.events_processed()), (*now, *events));
            assert_eq!(*now, w.now());
        }
    }

    /// Cross-shard relay: forwards `left` hops to the peer shard, each hop
    /// travelling one full lookahead.
    struct Relay {
        peer_shard: ShardId,
        peer: ActorId,
        hop: SimDuration,
        left: u32,
    }
    impl Actor for Relay {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if (msg.is::<Start>() || msg.is::<u32>()) && self.left > 0 {
                self.left -= 1;
                ctx.post_remote(self.peer_shard, self.peer, self.left, self.hop);
            }
        }
    }

    fn relay_world(kick: bool, peer_shard: usize, hop: SimDuration, left: u32) -> World {
        let mut w = World::new(1);
        w.add_host("h", 1, 3.0);
        let a = w.add_actor(
            "relay",
            Relay {
                peer_shard: ShardId::from_raw(
                    u16::try_from(peer_shard).expect("peer shard fits u16"),
                ),
                peer: ActorId::from_raw(0),
                hop,
                left,
            },
        );
        assert_eq!(a, ActorId::from_raw(0));
        if kick {
            w.send_now(a, Start);
        }
        w
    }

    fn run_relay(threads: usize) -> Vec<(SimTime, u64)> {
        let hop = SimDuration::from_micros(30);
        let opts = EngineOpts::new(threads).with_lookahead(hop);
        let shards = vec![
            Shard::new(
                "a",
                move || relay_world(true, 1, hop, 6),
                |w: World| (w.now(), w.events_processed()),
            ),
            Shard::new(
                "b",
                move || relay_world(false, 0, hop, 6),
                |w: World| (w.now(), w.events_processed()),
            ),
        ];
        run_sharded(opts, shards)
    }

    #[test]
    fn windowed_cross_shard_relay_is_thread_invariant() {
        let seq = run_relay(1);
        assert_eq!(seq, run_relay(2));
        assert_eq!(seq, run_relay(4));
        // 12 hops total (6 initiated per side, alternating): the last
        // delivery lands at 12 * 30us on shard A... actually hop 12 lands
        // on shard A at 360us only if both sides forward. Just pin the
        // observable: deterministic, non-zero progress on both shards.
        assert!(
            seq[0].1 > 1 && seq[1].1 > 1,
            "both shards ran events: {seq:?}"
        );
        assert!(seq[1].0 >= SimTime::ZERO + SimDuration::from_micros(30));
    }

    #[test]
    #[should_panic(expected = "inside the current window")]
    fn lookahead_violation_panics() {
        let hop = SimDuration::from_micros(30);
        let opts = EngineOpts::new(2).with_lookahead(hop);
        let shards = vec![
            Shard::new(
                "a",
                move || relay_world(true, 1, SimDuration::from_nanos(1), 2),
                |_| (),
            ),
            Shard::new("b", move || relay_world(false, 0, hop, 2), |_| ()),
        ];
        run_sharded(opts, shards);
    }

    #[test]
    #[should_panic(expected = "isolated shards cannot communicate")]
    fn cross_shard_send_without_lookahead_panics() {
        let hop = SimDuration::from_micros(30);
        let shards = vec![
            Shard::new("a", move || relay_world(true, 1, hop, 2), |_| ()),
            Shard::new("b", move || relay_world(false, 0, hop, 2), |_| ()),
        ];
        run_sharded(EngineOpts::new(2), shards);
    }

    #[test]
    fn job_shards_respect_cap() {
        // A world whose only job never completes: the shard must be
        // fast-forwarded to the cap, exactly like run_jobs_for.
        let cap = SimDuration::from_millis(5);
        let build = move || {
            let mut w = World::new(3);
            w.add_host("h", 1, 3.0);
            w.register_job("stuck");
            w
        };
        let out = run_sharded(
            EngineOpts::new(1).with_cap(cap),
            vec![Shard::new("stuck", build, |w: World| w.now())],
        );
        assert_eq!(out, vec![SimTime::ZERO + cap]);
    }

    #[test]
    fn run_indexed_preserves_order_and_streams_in_order() {
        for threads in [1, 2, 4, 9] {
            let squares = run_indexed(10, threads, |i| i * i);
            assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
            let mut seen = Vec::new();
            run_indexed_streamed(10, threads, |i| i + 1, |ix, r| seen.push((ix, r)));
            assert_eq!(seen, (0..10).map(|i| (i, i + 1)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let out: Vec<()> = run_sharded(EngineOpts::new(4), Vec::new());
        assert!(out.is_empty());
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }
}

//! CPU-cycle accounting.
//!
//! Every unit of CPU work executed by the scheduler is tagged with a
//! [`CpuCategory`]. The categories mirror the stacked-bar legends of the
//! paper's Figures 6–8 ("client-application", "loop device", "data
//! copy(virtio-vqueue)", "data copy(vRead-buffer)", "vhost-net", "rdma",
//! "vRead-net", "disk read", "others") plus a few internal ones that the
//! reporting layer folds into *others*.

use std::fmt;

/// What a burst of CPU cycles was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum CpuCategory {
    /// User-level work in the HDFS client application (incl. the final
    /// kernel→application buffer copy, as in the paper's accounting).
    ClientApp,
    /// User-level work in the HDFS datanode process.
    DatanodeApp,
    /// Guest kernel TCP/IP processing (either VM).
    GuestTcp,
    /// Data copies through virtio vqueues (virtio-blk and virtio-net).
    CopyVirtioVqueue,
    /// Data copies through the vRead shared-memory ring buffer.
    CopyVreadBuffer,
    /// Host-side vhost-net thread work (kick handling, skb moves).
    VhostNet,
    /// Host loop-device / mounted-image block translation work.
    LoopDevice,
    /// Time attributable to issuing & completing physical disk reads.
    DiskRead,
    /// RDMA verbs processing (WR post, CQE handling).
    Rdma,
    /// The user-space TCP fallback of the vRead daemon ("vRead-net").
    VreadNet,
    /// Host kernel TCP/IP processing (physical NIC path).
    HostTcp,
    /// The lookbusy background load generator.
    Lookbusy,
    /// Namenode metadata handling.
    Namenode,
    /// vRead hypervisor daemon bookkeeping (hash lookups, mount refresh).
    Daemon,
    /// MapReduce framework overhead (task setup, record handling).
    MapReduce,
    /// MySQL server work (Sqoop export target).
    Mysql,
    /// Everything else (context switches, interrupts, misc kernel).
    Other,
}

impl CpuCategory {
    /// Number of categories (size of accounting tables).
    pub const COUNT: usize = 17;

    /// All categories, in declaration order.
    pub const ALL: [CpuCategory; Self::COUNT] = [
        CpuCategory::ClientApp,
        CpuCategory::DatanodeApp,
        CpuCategory::GuestTcp,
        CpuCategory::CopyVirtioVqueue,
        CpuCategory::CopyVreadBuffer,
        CpuCategory::VhostNet,
        CpuCategory::LoopDevice,
        CpuCategory::DiskRead,
        CpuCategory::Rdma,
        CpuCategory::VreadNet,
        CpuCategory::HostTcp,
        CpuCategory::Lookbusy,
        CpuCategory::Namenode,
        CpuCategory::Daemon,
        CpuCategory::MapReduce,
        CpuCategory::Mysql,
        CpuCategory::Other,
    ];

    /// Stable snake-case name (used in reports and JSON output).
    pub fn name(self) -> &'static str {
        match self {
            CpuCategory::ClientApp => "client_application",
            CpuCategory::DatanodeApp => "datanode_application",
            CpuCategory::GuestTcp => "guest_tcp",
            CpuCategory::CopyVirtioVqueue => "copy_virtio_vqueue",
            CpuCategory::CopyVreadBuffer => "copy_vread_buffer",
            CpuCategory::VhostNet => "vhost_net",
            CpuCategory::LoopDevice => "loop_device",
            CpuCategory::DiskRead => "disk_read",
            CpuCategory::Rdma => "rdma",
            CpuCategory::VreadNet => "vread_net",
            CpuCategory::HostTcp => "host_tcp",
            CpuCategory::Lookbusy => "lookbusy",
            CpuCategory::Namenode => "namenode",
            CpuCategory::Daemon => "daemon",
            CpuCategory::MapReduce => "map_reduce",
            CpuCategory::Mysql => "mysql",
            CpuCategory::Other => "others",
        }
    }

    /// The paper's Figure 6–8 legend bucket this category is reported
    /// under. Internal categories (including the datanode's user-level
    /// Java work, which the paper does not label separately) collapse
    /// into `"others"`.
    pub fn figure_bucket(self) -> &'static str {
        match self {
            CpuCategory::ClientApp => "client-application",
            CpuCategory::CopyVirtioVqueue => "data copy(virtio-vqueue)",
            CpuCategory::CopyVreadBuffer => "data copy(vRead-buffer)",
            CpuCategory::VhostNet => "vhost-net",
            CpuCategory::LoopDevice => "loop device",
            CpuCategory::DiskRead => "disk read",
            CpuCategory::Rdma => "rdma",
            CpuCategory::VreadNet => "vRead-net",
            _ => "others",
        }
    }
}

impl fmt::Display for CpuCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-thread, per-category cycle and busy-time accounting.
///
/// The scheduler calls [`CpuAccounting::add`] whenever it charges executed
/// time to a thread. Harnesses snapshot the table before and after a
/// measurement window and diff.
#[derive(Debug, Clone, Default)]
pub struct CpuAccounting {
    threads: Vec<ThreadAcct>,
}

/// Accounting row for one thread.
#[derive(Debug, Clone)]
pub struct ThreadAcct {
    /// Cycles burned per category.
    pub cycles: [f64; CpuCategory::COUNT],
    /// Wall nanoseconds this thread occupied a core.
    pub busy_ns: u64,
}

impl Default for ThreadAcct {
    fn default() -> Self {
        ThreadAcct {
            cycles: [0.0; CpuCategory::COUNT],
            busy_ns: 0,
        }
    }
}

impl CpuAccounting {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures row `thread` exists.
    pub(crate) fn ensure(&mut self, thread: usize) {
        if self.threads.len() <= thread {
            self.threads.resize_with(thread + 1, ThreadAcct::default);
        }
    }

    /// Records `cycles` of work in `cat` occupying a core for `ns`
    /// nanoseconds on `thread`.
    pub fn add(&mut self, thread: usize, cat: CpuCategory, cycles: f64, ns: u64) {
        self.ensure(thread);
        let row = &mut self.threads[thread];
        row.cycles[cat as usize] += cycles;
        row.busy_ns += ns;
    }

    /// Total busy nanoseconds of one thread.
    pub fn busy_ns(&self, thread: usize) -> u64 {
        self.threads.get(thread).map_or(0, |t| t.busy_ns)
    }

    /// Cycles one thread spent in one category.
    pub fn cycles(&self, thread: usize, cat: CpuCategory) -> f64 {
        self.threads
            .get(thread)
            .map_or(0.0, |t| t.cycles[cat as usize])
    }

    /// Total cycles across all categories for one thread.
    pub fn total_cycles(&self, thread: usize) -> f64 {
        self.threads
            .get(thread)
            .map_or(0.0, |t| t.cycles.iter().sum())
    }

    /// A deep copy of the current state (cheap; tables are small).
    pub fn snapshot(&self) -> CpuAccounting {
        self.clone()
    }

    /// `self - earlier`, per thread and category. Threads present only in
    /// `self` are kept as-is.
    pub fn diff(&self, earlier: &CpuAccounting) -> CpuAccounting {
        let mut out = self.clone();
        for (i, row) in out.threads.iter_mut().enumerate() {
            if let Some(old) = earlier.threads.get(i) {
                for c in 0..CpuCategory::COUNT {
                    row.cycles[c] -= old.cycles[c];
                }
                row.busy_ns = row.busy_ns.saturating_sub(old.busy_ns);
            }
        }
        out
    }

    /// Iterate `(thread_index, row)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ThreadAcct)> {
        self.threads.iter().enumerate()
    }

    /// Number of thread rows.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// True when no thread has been charged yet.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut a = CpuAccounting::new();
        a.add(3, CpuCategory::VhostNet, 1000.0, 500);
        a.add(3, CpuCategory::VhostNet, 500.0, 250);
        a.add(3, CpuCategory::ClientApp, 10.0, 5);
        assert_eq!(a.cycles(3, CpuCategory::VhostNet), 1500.0);
        assert_eq!(a.busy_ns(3), 755);
        assert_eq!(a.total_cycles(3), 1510.0);
        assert_eq!(a.cycles(0, CpuCategory::VhostNet), 0.0);
    }

    #[test]
    fn diff_subtracts() {
        let mut a = CpuAccounting::new();
        a.add(0, CpuCategory::Rdma, 100.0, 50);
        let snap = a.snapshot();
        a.add(0, CpuCategory::Rdma, 40.0, 20);
        a.add(1, CpuCategory::Other, 7.0, 3);
        let d = a.diff(&snap);
        assert_eq!(d.cycles(0, CpuCategory::Rdma), 40.0);
        assert_eq!(d.busy_ns(0), 20);
        assert_eq!(d.cycles(1, CpuCategory::Other), 7.0);
    }

    #[test]
    fn all_categories_have_unique_names() {
        let mut names: Vec<_> = CpuCategory::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CpuCategory::COUNT);
    }

    #[test]
    fn figure_buckets_cover_legend() {
        // every paper legend label appears at least once
        for label in [
            "client-application",
            "loop device",
            "data copy(virtio-vqueue)",
            "data copy(vRead-buffer)",
            "vhost-net",
            "rdma",
            "vRead-net",
            "disk read",
            "others",
        ] {
            assert!(
                CpuCategory::ALL.iter().any(|c| c.figure_bucket() == label),
                "no category maps to {label}"
            );
        }
    }
}

//! Typed identifiers for simulation entities.
//!
//! Every entity class gets its own newtype ([`HostId`], [`ThreadId`], …) so
//! that, e.g., a thread id can never be passed where an actor id is
//! expected (C-NEWTYPE).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) $inner);

        impl $name {
            /// Constructs an id from a raw index. Intended for tests and
            /// serialization; ids are normally minted by [`crate::World`].
            pub const fn from_raw(raw: $inner) -> Self {
                $name(raw)
            }

            /// The raw index backing this id.
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// The raw index as a `usize`, for table lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A simulated physical host (a machine with cores, RAM, disks, NICs).
    HostId,
    u16
);
id_type!(
    /// A core index *within* a host.
    CoreId,
    u16
);
id_type!(
    /// A host-schedulable thread: a vCPU, a vhost I/O thread, a hypervisor
    /// daemon thread, a kernel worker. Globally unique across hosts.
    ThreadId,
    u32
);
id_type!(
    /// An actor: a protocol state machine that receives messages.
    ActorId,
    u32
);
id_type!(
    /// A serialized network link (physical NIC / LAN segment).
    LinkId,
    u32
);
id_type!(
    /// A queued block device (SSD backing a host's disk-image storage).
    BlockDevId,
    u32
);
id_type!(
    /// An in-flight CPU chain (see [`crate::Stage`]).
    ChainId,
    u64
);
id_type!(
    /// One shard of a sharded run: a [`crate::World`] owning one host
    /// subtree under the conservative parallel engine (see
    /// [`crate::par`]).
    ShardId,
    u16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let t = ThreadId::from_raw(7);
        assert_eq!(t.raw(), 7);
        assert_eq!(t.index(), 7);
        assert_eq!(format!("{t}"), "ThreadId(7)");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(HostId::from_raw(1) < HostId::from_raw(2));
        assert_eq!(ActorId::from_raw(3), ActorId::from_raw(3));
    }
}

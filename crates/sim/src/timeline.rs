//! Deterministic time-series telemetry: sampled gauges and log-bucket
//! latency histograms.
//!
//! The span flight recorder ([`crate::span`]) answers *where one read's
//! cycles went*; this module answers *how the system evolved over
//! simulated time* — run-queue depths, scheduling delay, ring and link
//! occupancy, cache levels, and read-latency quantiles per window. That
//! is the view the paper's saturation argument needs: tail latency
//! (p99/p999) as concurrency rises, not just end-of-run means.
//!
//! # How sampling stays deterministic
//!
//! The sampler is driven by **ordinary engine events**: enabling the
//! timeline ([`World::start_timeline`](crate::World::start_timeline))
//! schedules a tick at `now + sample_every`, and each tick re-schedules
//! the next while the world still has work. Ticks therefore carry
//! `(time, seq)` keys like every other event and replay identically at
//! any `--engine-threads N` — the sharded engine (see [`crate::par`])
//! runs the same protocol at every thread count, so each tick observes
//! the same world state. There is no wall-clock, no background thread,
//! and no sampling skew: a tick at `t` sees the world exactly as of the
//! last event executed at or before `t`.
//!
//! # Histograms vs [`Samples`](crate::metrics::Samples)
//!
//! Per-window latency lives in [`Hist`], a fixed log-bucket (HDR-style)
//! histogram with **integer bucket counts**. Unlike a sorted `Vec<f64>`,
//! element-wise `u64` addition is associative and commutative, so
//! merging shard histograms in any grouping is bit-exact — the property
//! the `--engine-threads` byte-identity gate rests on.
//!
//! # Mutation discipline
//!
//! All raw mutation — `Timeline::push` for series points and
//! [`Hist::record_raw`] for bucket increments — is confined to this
//! module (enforced by the `timeline-confine` vread-lint rule).
//! Components feed the timeline indirectly: level gauges go through
//! [`Metrics`](crate::metrics::Metrics) gauges (sampled on every tick),
//! richer sources register a provider closure, and read completions call
//! the [`Timeline::observe_read`] charge wrapper.

use std::collections::BTreeMap;
use std::fmt;

use crate::engine::World;
use crate::ids::{HostId, LinkId};
use crate::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------------
// Hist — fixed log-bucket histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per power of two,
/// bounding the relative quantile error at 1/32 ≈ 3.1%.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count: one linear region below 2^SUB_BITS plus
/// `64 - SUB_BITS` log octaves of `SUB_COUNT` sub-buckets each.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_COUNT as usize;

/// Bucket index of value `v` (monotone in `v`).
fn bucket_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize; // exact linear region
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS + 1) as u64;
    let sub = (v >> (msb - SUB_BITS)) & (SUB_COUNT - 1);
    (octave * SUB_COUNT + sub) as usize
}

/// Highest value mapping to bucket `idx` (the quantile representative,
/// like HDR's `highestEquivalentValue`).
fn bucket_high(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_COUNT {
        return idx;
    }
    let octave = idx >> SUB_BITS;
    let sub = idx & (SUB_COUNT - 1);
    let msb = octave + u64::from(SUB_BITS) - 1;
    let unit = 1u64 << (msb - u64::from(SUB_BITS));
    // base - 1 + span, ordered so the top bucket lands exactly on
    // u64::MAX without intermediate overflow.
    (1u64 << msb) - 1 + (sub + 1) * unit
}

/// A fixed log-bucket latency histogram over `u64` nanoseconds.
///
/// Integer bucket counts make [`Hist::merge`] element-wise `u64`
/// addition: associative, commutative, and therefore bit-exact however
/// shard results are grouped (property-tested in `timeline_props`).
/// Quantiles are nearest-rank over the cumulative counts and return the
/// bucket's highest contained value, so the reported p99 never
/// under-states the true p99 and is off by at most 1/32 relative.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Hist {
    /// Lazily allocated (`BUCKETS` entries once the first value lands)
    /// so empty windows and disabled timelines cost nothing.
    counts: Vec<u64>,
    total: u64,
}

impl fmt::Debug for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hist")
            .field("total", &self.total)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl Hist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Records one raw value. This is the raw mutation sink the
    /// `timeline-confine` lint rule restricts to this module — external
    /// observations arrive via [`Timeline::observe_read`].
    pub fn record_raw(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Adds every bucket of `other` into `self`. Element-wise integer
    /// addition — associative and commutative, so shard merge order
    /// cannot change the result.
    pub fn merge(&mut self, other: &Hist) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        // Nearest-rank: the smallest value with cumulative count >= rank.
        let rank = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i);
            }
        }
        bucket_high(BUCKETS - 1)
    }

    /// Highest recorded value's bucket representative, or 0 when empty.
    pub fn max(&self) -> u64 {
        match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => bucket_high(i),
            None => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

/// A named series of `(time, value)` points, appended in tick order.
#[derive(Debug, Clone)]
struct Series {
    name: String,
    points: Vec<(SimTime, f64)>,
}

/// A registered gauge provider: polled on every tick, in registration
/// order, with shared access to the world.
type Provider = Box<dyn Fn(&World) -> f64>;

/// The world's telemetry timeline. Disabled by default — a disabled
/// timeline schedules no ticks, records nothing, and keeps every
/// existing report byte-identical.
#[derive(Default)]
pub struct Timeline {
    enabled: bool,
    sample: SimDuration,
    series_index: BTreeMap<String, usize>,
    series: Vec<Series>,
    providers: Vec<(String, Provider)>,
    /// Per-window read-latency histograms, keyed by window index
    /// (`end_of_read / sample`).
    windows: BTreeMap<u64, Hist>,
    /// Whole-run read-latency histogram.
    run_hist: Hist,
    /// Last observed `bytes_total` per link, for per-window throughput.
    last_link_bytes: Vec<u64>,
    ticks: u64,
}

impl fmt::Debug for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Timeline")
            .field("enabled", &self.enabled)
            .field("sample", &self.sample)
            .field("series", &self.series.len())
            .field("providers", &self.providers.len())
            .field("ticks", &self.ticks)
            .finish()
    }
}

impl Timeline {
    /// Turns sampling on with the given period. The engine schedules the
    /// first tick; prefer [`World::start_timeline`](crate::World::start_timeline).
    ///
    /// # Panics
    ///
    /// Panics on a zero sample period.
    pub(crate) fn enable(&mut self, sample: SimDuration) {
        assert!(sample > SimDuration::ZERO, "sample period must be positive");
        self.enabled = true;
        self.sample = sample;
    }

    /// Whether sampling is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The sampling period (also the latency-window length).
    pub fn sample_every(&self) -> SimDuration {
        self.sample
    }

    /// Number of ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Registers a named gauge provider, polled on every tick. Providers
    /// run in registration order (deterministic as long as registration
    /// itself is); they get shared world access and must not rely on
    /// `world.timeline` (vacated during sampling).
    pub fn register_provider(&mut self, name: &str, f: Provider) {
        self.providers.push((name.to_owned(), f));
    }

    /// Appends one point to a named series (creating it). Raw mutation
    /// sink — confined to this module by the `timeline-confine` lint
    /// rule; everything external flows in via gauges, providers or
    /// [`Timeline::observe_read`].
    fn push(&mut self, name: &str, t: SimTime, v: f64) {
        let ix = match self.series_index.get(name) {
            Some(&ix) => ix,
            None => {
                let ix = self.series.len();
                self.series_index.insert(name.to_owned(), ix);
                self.series.push(Series {
                    name: name.to_owned(),
                    points: Vec::new(),
                });
                ix
            }
        };
        self.series[ix].points.push((t, v));
    }

    /// Charge wrapper for read latency: records `end - start` into the
    /// window containing `end` and into the whole-run histogram. No-op
    /// while disabled.
    pub fn observe_read(&mut self, start: SimTime, end: SimTime) {
        if !self.enabled {
            return;
        }
        let lat = end.since(start).as_nanos();
        let win = end.as_nanos() / self.sample.as_nanos();
        self.windows.entry(win).or_default().record_raw(lat);
        self.run_hist.record_raw(lat);
    }

    /// One sampler tick: polls built-in sources (per-host run-queue
    /// depth and scheduling delay, per-link backlog and window
    /// throughput), every touched [`Metrics`](crate::metrics::Metrics)
    /// gauge, and every registered provider. Called by the engine with
    /// the timeline taken out of the world (`mem::take`), so `w` is
    /// read-only here.
    pub(crate) fn sample_now(&mut self, w: &World) {
        let t = w.now();
        // Per-host scheduler pressure: the paper's two contention
        // signals (Fig. 5) — how many threads wait for a core, and how
        // long the longest-waiting one has been waiting.
        for h in 0..w.num_hosts() {
            let host = HostId::from_raw(u16::try_from(h).expect("host id fits u16"));
            let name = w.host_name(host).to_owned();
            let depth = w.host_runq_depth(host) as f64;
            let delay = w.host_max_queued_delay(host).as_millis_f64();
            self.push(&format!("sched.{name}.runq"), t, depth);
            self.push(&format!("sched.{name}.delay_ms"), t, delay);
        }
        // Per-link occupancy and window throughput.
        self.last_link_bytes.resize(w.num_links(), 0);
        let secs = self.sample.as_secs_f64();
        for i in 0..w.num_links() {
            let link = w.link(LinkId::from_raw(
                u32::try_from(i).expect("link id fits u32"),
            ));
            let backlog = link.backlog_bytes(t);
            let delta = link.bytes_total - self.last_link_bytes[i];
            self.last_link_bytes[i] = link.bytes_total;
            self.push(&format!("link.{i}.backlog_bytes"), t, backlog);
            let mbps = delta as f64 / secs / 1e6;
            self.push(&format!("link.{i}.mbps"), t, mbps);
        }
        // Every touched metrics gauge (BTreeMap order: deterministic).
        let gauges: Vec<(String, f64)> =
            w.metrics.gauges().map(|(k, v)| (k.to_owned(), v)).collect();
        for (k, v) in gauges {
            self.push(&format!("gauge.{k}"), t, v);
        }
        // Registered providers, in registration order.
        let provided: Vec<(String, f64)> = self
            .providers
            .iter()
            .map(|(name, f)| (name.clone(), f(w)))
            .collect();
        for (name, v) in provided {
            self.push(&name, t, v);
        }
        self.ticks += 1;
    }

    /// Iterates series as `(name, points)`, in first-push order.
    pub fn series(&self) -> impl Iterator<Item = (&str, &[(SimTime, f64)])> {
        self.series
            .iter()
            .map(|s| (s.name.as_str(), s.points.as_slice()))
    }

    /// Iterates per-window latency histograms as `(window_start, hist)`,
    /// in time order.
    pub fn windows(&self) -> impl Iterator<Item = (SimTime, &Hist)> {
        let sample_ns = self.sample.as_nanos();
        self.windows
            .iter()
            .map(move |(&w, h)| (SimTime::from_nanos(w * sample_ns), h))
    }

    /// The whole-run read-latency histogram.
    pub fn run_hist(&self) -> &Hist {
        &self.run_hist
    }

    /// Merges another shard's timeline into this one (barrier-side of a
    /// partitioned run). Histograms add bucket-wise (order-independent);
    /// series points interleave by time with ties keeping `self` first,
    /// so merging shards in canonical shard order is deterministic.
    pub fn merge(&mut self, other: &Timeline) {
        for (win, h) in &other.windows {
            self.windows.entry(*win).or_default().merge(h);
        }
        self.run_hist.merge(&other.run_hist);
        for s in &other.series {
            match self.series_index.get(&s.name) {
                Some(&ix) => {
                    let mine = &mut self.series[ix].points;
                    let mut merged = Vec::with_capacity(mine.len() + s.points.len());
                    let mut a = mine.drain(..).peekable();
                    let mut b = s.points.iter().copied().peekable();
                    loop {
                        match (a.peek(), b.peek()) {
                            (Some(&(ta, _)), Some(&(tb, _))) => {
                                if ta <= tb {
                                    merged.push(a.next().expect("peeked"));
                                } else {
                                    merged.push(b.next().expect("peeked"));
                                }
                            }
                            (Some(_), None) => merged.push(a.next().expect("peeked")),
                            (None, Some(_)) => merged.push(b.next().expect("peeked")),
                            (None, None) => break,
                        }
                    }
                    drop(a);
                    self.series[ix].points = merged;
                }
                None => {
                    let ix = self.series.len();
                    self.series_index.insert(s.name.clone(), ix);
                    self.series.push(s.clone());
                }
            }
        }
        self.ticks += other.ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_exact_below_32() {
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
        let mut prev = 0;
        for shift in 0..60 {
            let v = 3u64 << shift;
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of not monotone at {v}");
            prev = b;
            assert!(bucket_high(b) >= v, "representative below value at {v}");
            // relative error of the representative is bounded by 1/32
            assert!((bucket_high(b) - v) as f64 <= v as f64 / 16.0 + 1.0);
        }
    }

    #[test]
    fn extreme_values_fit() {
        let mut h = Hist::new();
        h.record_raw(0);
        h.record_raw(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record_raw(v);
        }
        // exact below 32; log-bucketed above with ≤ 1/32 relative error
        assert_eq!(h.quantile(0.001), 1);
        let p50 = h.quantile(0.5);
        assert!((468..=532).contains(&p50), "p50 {p50}");
        let p999 = h.quantile(0.999);
        assert!((999..=1030).contains(&p999), "p999 {p999}");
        assert!(h.max() >= 1000);
    }

    #[test]
    fn single_value_hist() {
        let mut h = Hist::new();
        h.record_raw(500);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), bucket_high(bucket_of(500)));
        }
    }

    #[test]
    fn merge_adds_buckets() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in [5u64, 100, 1_000_000] {
            a.record_raw(v);
        }
        for v in [7u64, 100, 40] {
            b.record_raw(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.count(), 6);
        // merging an empty hist is the identity
        let mut c = ab.clone();
        c.merge(&Hist::new());
        assert_eq!(c, ab);
    }

    #[test]
    fn observe_read_windows_by_completion_time() {
        let mut tl = Timeline::default();
        tl.enable(SimDuration::from_millis(10));
        let t0 = SimTime::ZERO;
        tl.observe_read(t0, t0 + SimDuration::from_millis(4)); // window 0
        tl.observe_read(t0, t0 + SimDuration::from_millis(25)); // window 2
        let wins: Vec<_> = tl
            .windows()
            .map(|(t, h)| (t.as_nanos(), h.count()))
            .collect();
        assert_eq!(wins, vec![(0, 1), (20_000_000, 1)]);
        assert_eq!(tl.run_hist().count(), 2);
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let mut tl = Timeline::default();
        tl.observe_read(SimTime::ZERO, SimTime::from_nanos(100));
        assert!(tl.run_hist().is_empty());
        assert_eq!(tl.windows().count(), 0);
    }

    #[test]
    fn merge_interleaves_series_by_time() {
        let mut a = Timeline::default();
        a.enable(SimDuration::from_millis(1));
        let mut b = Timeline::default();
        b.enable(SimDuration::from_millis(1));
        a.push("s", SimTime::from_nanos(10), 1.0);
        a.push("s", SimTime::from_nanos(30), 3.0);
        b.push("s", SimTime::from_nanos(20), 2.0);
        b.push("other", SimTime::from_nanos(5), 9.0);
        a.merge(&b);
        let all: BTreeMap<&str, &[(SimTime, f64)]> = a.series().collect();
        let s: Vec<f64> = all["s"].iter().map(|&(_, v)| v).collect();
        assert_eq!(s, vec![1.0, 2.0, 3.0]);
        assert_eq!(all["other"].len(), 1);
    }
}

/// Property tests of the histogram's merge algebra: element-wise
/// integer addition must be associative and commutative, and recording
/// a value stream split across any shard boundaries then merging must
/// reproduce the single-shard histogram bit-exactly. This is the
/// invariant that makes timeline reports independent of
/// `--engine-threads`.
#[cfg(test)]
mod timeline_props {
    use super::Hist;
    use proptest::prelude::*;

    /// Values spanning the linear region, the log octaves, and the
    /// extremes of the `u64` range.
    fn values() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(
            prop_oneof![0u64..64, 1u64..1_000_000_000, 0u64..u64::MAX],
            0..64,
        )
    }

    fn hist(vals: &[u64]) -> Hist {
        let mut h = Hist::new();
        for &v in vals {
            h.record_raw(v);
        }
        h
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn merge_is_commutative(a in values(), b in values()) {
            let (ha, hb) = (hist(&a), hist(&b));
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merge_is_associative(a in values(), b in values(), c in values()) {
            let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn sharded_merge_equals_single_shard(vals in values(), cut in 0usize..64) {
            let at = if vals.is_empty() { 0 } else { cut % vals.len() };
            let whole = hist(&vals);
            let mut sharded = hist(&vals[..at]);
            sharded.merge(&hist(&vals[at..]));
            prop_assert_eq!(&whole, &sharded);
            prop_assert_eq!(whole.count(), vals.len() as u64);
            for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
                prop_assert_eq!(whole.quantile(q), sharded.quantile(q));
            }
        }
    }
}
